//! Compiled predicates — flat, typed, interpretation-free programs.
//!
//! [`Expr::eval`] walks a boxed tree and re-matches on `DataType`/`Value`
//! enum tags for every (tuple × predicate-node) pair. That per-tuple
//! interpretation overhead is exactly what the CJOIN prototype avoids and
//! what dominates a GQP serving many concurrent queries. [`CompiledPred`]
//! lowers an `Expr` once, at admission/plan time, into a flat postfix
//! program of *typed* operations: every comparison op carries its column
//! index and a pre-typed constant (`i64`/`f64`/`u32`/`str`), so evaluation
//! never touches a `Value` and never branches on a type tag.
//!
//! Two evaluation modes share the program:
//!
//! * [`CompiledPred::eval_row`] — per-row stack machine over a
//!   [`RowRef`], a strictly cheaper drop-in for `Expr::eval`;
//! * [`CompiledPred::eval_batch`] — column-wise over a
//!   [`ColumnBatch`]: each leaf fills a `u64` selection mask for the whole
//!   batch in a tight auto-vectorizable loop, and the boolean combinators
//!   become word-wise AND/OR/NOT over masks. One batch decode is shared
//!   by every concurrent predicate evaluated over the page.
//!
//! Compilation performs and/or/between fusion (nested conjunctions and
//! disjunctions are flattened into n-ary ops; `BETWEEN` stays one fused
//! range check) and folds mistyped literals to constants — a comparison
//! between a column and a literal of another type is row-independent
//! under [`Value::total_cmp`]'s type-rank ordering, which keeps
//! `CompiledPred` exactly equivalent to `Expr::eval` on *every* input,
//! well-typed or not (the equivalence proptests rely on this).

use crate::expr::{CmpOp, Expr};
use qs_storage::{ColumnBatch, ColumnData, DataType, RowRef, Schema, Value};
use std::cmp::Ordering;

/// One instruction of a compiled predicate program (postfix order).
#[derive(Debug, Clone, PartialEq)]
enum PredOp {
    /// Push a constant (folded subtree).
    Const(bool),
    /// `col <op> lit` over an `Int` column.
    CmpI { col: u32, op: CmpOp, lit: i64 },
    /// `col <op> lit` over a `Float` column (total order, NaN-safe).
    CmpF { col: u32, op: CmpOp, lit: f64 },
    /// `col <op> lit` over a `Date` column.
    CmpD { col: u32, op: CmpOp, lit: u32 },
    /// `col <op> lit` over a `Char` column.
    CmpS { col: u32, op: CmpOp, lit: Box<str> },
    /// Fused inclusive range over an `Int` column.
    BetweenI { col: u32, lo: i64, hi: i64 },
    /// Fused inclusive range over a `Float` column.
    BetweenF { col: u32, lo: f64, hi: f64 },
    /// Fused inclusive range over a `Date` column.
    BetweenD { col: u32, lo: u32, hi: u32 },
    /// Fused inclusive range over a `Char` column.
    BetweenS { col: u32, lo: Box<str>, hi: Box<str> },
    /// Membership in a sorted list over an `Int` column.
    InI { col: u32, items: Box<[i64]> },
    /// Membership in a sorted (total order) list over a `Float` column.
    InF { col: u32, items: Box<[f64]> },
    /// Membership in a sorted list over a `Date` column.
    InD { col: u32, items: Box<[u32]> },
    /// Membership in a sorted list over a `Char` column.
    InS { col: u32, items: Box<[Box<str>]> },
    /// Pop `n` operands, push their conjunction.
    And(u32),
    /// Pop `n` operands, push their disjunction.
    Or(u32),
    /// Negate the top operand.
    Not,
}

/// A predicate lowered into a flat typed program.
///
/// Construction is infallible: subtrees whose literals cannot be typed
/// against the schema fold to constants with semantics identical to the
/// interpreter's deterministic fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPred {
    ops: Vec<PredOp>,
    /// Referenced columns, sorted and deduplicated — the set a
    /// [`ColumnBatch`] must decode for [`Self::eval_batch`].
    cols: Vec<usize>,
    /// Peak operand-stack depth of the program.
    max_stack: usize,
}

/// Reusable buffers for [`CompiledPred::eval_batch`]: one mask per live
/// stack slot, recycled across pages so steady-state batch evaluation
/// performs no heap allocation.
#[derive(Debug, Default)]
pub struct PredScratch {
    stack: Vec<Vec<u64>>,
    pool: Vec<Vec<u64>>,
}

impl PredScratch {
    /// Fresh scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    fn take(&mut self, words: usize) -> Vec<u64> {
        let mut m = self.pool.pop().unwrap_or_default();
        m.clear();
        m.resize(words, 0);
        m
    }
}

// Selection-mask helpers live in `qs_storage::bitmap` since FactBatch
// made masks a storage-level currency; re-exported here because every
// consumer of `eval_batch` needs them alongside `CompiledPred`.
pub use qs_storage::bitmap::{iter_ones, mask_words};

/// Mask → selection handoff: fill `out` with the page row indices whose
/// mask bit is set, translated through `base` — the selection of the
/// batch the mask was evaluated over. Bit `i` of `mask` refers to batch
/// tuple `i`, i.e. page row `base[i]`, so the result composes a filter's
/// mask with its input batch's selection in one pass. `out` is cleared
/// first and stays ascending when `base` is.
#[inline]
pub fn refine_selection(mask: &[u64], base: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.extend(iter_ones(mask).map(|i| base[i]));
}

/// Mask → selection handoff over an identity base: fill `out` with the
/// indices of set mask bits — the selection vector of a predicate
/// evaluated over a whole page.
#[inline]
pub fn selection_from_mask(mask: &[u64], out: &mut Vec<u32>) {
    out.clear();
    out.extend(iter_ones(mask).map(|i| i as u32));
}

/// Fill a selection mask from a typed column slice: bit `i` of `out` is
/// `pred(data[i])`.
///
/// The body is hand-unrolled into 8×64-lane blocks: eight mask words are
/// accumulated in independent registers per pass, mirroring a `u64x8`
/// (`std::simd`) layout so the port is mechanical once `std::simd`
/// lands in-tree — and sized to the contiguous lanes columnar pages now
/// feed this loop. Lane loops have a compile-time-known trip count of
/// 64, which LLVM unrolls and vectorizes without bounds checks; the
/// scalar remainder path below the blocks is kept bit-identical.
#[inline]
fn fill_mask<T: Copy>(data: &[T], out: &mut [u64], pred: impl Fn(T) -> bool) {
    let mut blocks = data.chunks_exact(512);
    let mut w = 0usize;
    for block in &mut blocks {
        let (b0, rest) = block.split_at(64);
        let (b1, rest) = rest.split_at(64);
        let (b2, rest) = rest.split_at(64);
        let (b3, rest) = rest.split_at(64);
        let (b4, rest) = rest.split_at(64);
        let (b5, rest) = rest.split_at(64);
        let (b6, b7) = rest.split_at(64);
        let (mut w0, mut w1, mut w2, mut w3) = (0u64, 0u64, 0u64, 0u64);
        let (mut w4, mut w5, mut w6, mut w7) = (0u64, 0u64, 0u64, 0u64);
        for b in 0..64 {
            w0 |= (pred(b0[b]) as u64) << b;
            w1 |= (pred(b1[b]) as u64) << b;
            w2 |= (pred(b2[b]) as u64) << b;
            w3 |= (pred(b3[b]) as u64) << b;
            w4 |= (pred(b4[b]) as u64) << b;
            w5 |= (pred(b5[b]) as u64) << b;
            w6 |= (pred(b6[b]) as u64) << b;
            w7 |= (pred(b7[b]) as u64) << b;
        }
        out[w..w + 8].copy_from_slice(&[w0, w1, w2, w3, w4, w5, w6, w7]);
        w += 8;
    }
    for chunk in blocks.remainder().chunks(64) {
        let mut word = 0u64;
        for (b, &v) in chunk.iter().enumerate() {
            word |= (pred(v) as u64) << b;
        }
        out[w] = word;
        w += 1;
    }
}

/// Dispatch a comparison op once, then run the tight loop.
#[inline]
fn cmp_mask<T: Copy>(
    data: &[T],
    op: CmpOp,
    out: &mut [u64],
    cmp: impl Fn(T) -> Ordering,
) {
    match op {
        CmpOp::Eq => fill_mask(data, out, |v| cmp(v) == Ordering::Equal),
        CmpOp::Ne => fill_mask(data, out, |v| cmp(v) != Ordering::Equal),
        CmpOp::Lt => fill_mask(data, out, |v| cmp(v) == Ordering::Less),
        CmpOp::Le => fill_mask(data, out, |v| cmp(v) != Ordering::Greater),
        CmpOp::Gt => fill_mask(data, out, |v| cmp(v) == Ordering::Greater),
        CmpOp::Ge => fill_mask(data, out, |v| cmp(v) != Ordering::Less),
    }
}

fn i64_data<'a>(batch: &'a ColumnBatch<'_>, col: u32) -> &'a [i64] {
    batch.col(col as usize).i64s()
}

fn f64_data<'a>(batch: &'a ColumnBatch<'_>, col: u32) -> &'a [f64] {
    batch.col(col as usize).f64s()
}

fn date_data<'a>(batch: &'a ColumnBatch<'_>, col: u32) -> &'a [u32] {
    batch.col(col as usize).dates()
}

/// Fill a mask from a `Char` column. Decoded columns run `pred` per row;
/// dictionary-coded columns (columnar pages via the `for_predicate`
/// batch constructors) run `pred` once per *dictionary entry* into a
/// pass-bit table, then map the per-row codes through it — O(dict + n)
/// instead of O(n) string comparisons.
fn str_mask(batch: &ColumnBatch<'_>, col: u32, out: &mut [u64], pred: impl Fn(&str) -> bool) {
    match batch.col(col as usize) {
        ColumnData::Str(v) => fill_mask(v, out, &pred),
        ColumnData::DictStr { dict, codes } => {
            let mut pass = [0u64; 4]; // dict is capped at 256 entries
            debug_assert!(dict.len() <= 256);
            for (c, s) in dict.iter().enumerate() {
                pass[c / 64] |= (pred(s) as u64) << (c % 64);
            }
            fill_mask(&codes[..], out, |c| {
                pass[(c / 64) as usize] >> (c % 64) & 1 != 0
            });
        }
        other => panic!("Char column view over {other:?}"),
    }
}

/// Type-rank of a [`Value`], mirroring `Value::total_cmp`'s cross-type
/// ordering (Int < Float < Date < Str).
fn value_rank(v: &Value) -> u8 {
    match v {
        Value::Int(_) => 0,
        Value::Float(_) => 1,
        Value::Date(_) => 2,
        Value::Str(_) => 3,
    }
}

/// Type-rank of the [`Value`] a column of type `dt` decodes to.
fn dtype_rank(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Date => 2,
        DataType::Char(_) => 3,
    }
}

impl CompiledPred {
    /// Lower `expr` against `schema`. Column indices out of range panic
    /// (callers validate plans before execution, as `Expr::eval` itself
    /// would panic on an out-of-range column).
    pub fn compile(expr: &Expr, schema: &Schema) -> CompiledPred {
        let mut ops = Vec::new();
        emit(expr, schema, &mut ops);
        // Peak stack depth by abstract execution.
        let mut depth = 0usize;
        let mut max_stack = 0usize;
        for op in &ops {
            match op {
                PredOp::And(n) | PredOp::Or(n) => depth = depth - *n as usize + 1,
                PredOp::Not => {}
                _ => depth += 1,
            }
            max_stack = max_stack.max(depth);
        }
        let cols = expr.referenced_columns();
        CompiledPred {
            ops,
            cols,
            max_stack,
        }
    }

    /// Columns the program reads — the set to decode into a
    /// [`ColumnBatch`] before calling [`Self::eval_batch`].
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// Number of instructions (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty (never: `compile` always emits at
    /// least one op).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Evaluate against one row. Exactly equivalent to `Expr::eval` on
    /// the source expression, without per-node type dispatch.
    pub fn eval_row(&self, row: &RowRef<'_>) -> bool {
        let mut inline = [false; 32];
        if self.max_stack <= inline.len() {
            self.eval_row_on(row, &mut inline)
        } else {
            let mut spill = vec![false; self.max_stack];
            self.eval_row_on(row, &mut spill)
        }
    }

    fn eval_row_on(&self, row: &RowRef<'_>, stack: &mut [bool]) -> bool {
        let mut sp = 0usize;
        for op in &self.ops {
            match op {
                PredOp::Const(b) => {
                    stack[sp] = *b;
                    sp += 1;
                }
                PredOp::CmpI { col, op, lit } => {
                    stack[sp] = op.matches(row.i64_col(*col as usize).cmp(lit));
                    sp += 1;
                }
                PredOp::CmpF { col, op, lit } => {
                    stack[sp] = op.matches(row.f64_col(*col as usize).total_cmp(lit));
                    sp += 1;
                }
                PredOp::CmpD { col, op, lit } => {
                    stack[sp] = op.matches(row.date_col(*col as usize).cmp(lit));
                    sp += 1;
                }
                PredOp::CmpS { col, op, lit } => {
                    stack[sp] = op.matches(row.str_col(*col as usize).cmp(lit));
                    sp += 1;
                }
                PredOp::BetweenI { col, lo, hi } => {
                    let v = row.i64_col(*col as usize);
                    stack[sp] = v >= *lo && v <= *hi;
                    sp += 1;
                }
                PredOp::BetweenF { col, lo, hi } => {
                    let v = row.f64_col(*col as usize);
                    stack[sp] = v.total_cmp(lo) != Ordering::Less
                        && v.total_cmp(hi) != Ordering::Greater;
                    sp += 1;
                }
                PredOp::BetweenD { col, lo, hi } => {
                    let v = row.date_col(*col as usize);
                    stack[sp] = v >= *lo && v <= *hi;
                    sp += 1;
                }
                PredOp::BetweenS { col, lo, hi } => {
                    let v = row.str_col(*col as usize);
                    stack[sp] = v >= &**lo && v <= &**hi;
                    sp += 1;
                }
                PredOp::InI { col, items } => {
                    let v = row.i64_col(*col as usize);
                    stack[sp] = items.binary_search(&v).is_ok();
                    sp += 1;
                }
                PredOp::InF { col, items } => {
                    let v = row.f64_col(*col as usize);
                    stack[sp] = items.binary_search_by(|it| it.total_cmp(&v)).is_ok();
                    sp += 1;
                }
                PredOp::InD { col, items } => {
                    let v = row.date_col(*col as usize);
                    stack[sp] = items.binary_search(&v).is_ok();
                    sp += 1;
                }
                PredOp::InS { col, items } => {
                    let v = row.str_col(*col as usize);
                    stack[sp] = items.binary_search_by(|it| (**it).cmp(v)).is_ok();
                    sp += 1;
                }
                PredOp::And(n) => {
                    let base = sp - *n as usize;
                    let mut acc = true;
                    for b in &stack[base..sp] {
                        acc &= *b;
                    }
                    stack[base] = acc;
                    sp = base + 1;
                }
                PredOp::Or(n) => {
                    let base = sp - *n as usize;
                    let mut acc = false;
                    for b in &stack[base..sp] {
                        acc |= *b;
                    }
                    stack[base] = acc;
                    sp = base + 1;
                }
                PredOp::Not => stack[sp - 1] = !stack[sp - 1],
            }
        }
        debug_assert_eq!(sp, 1);
        stack[0]
    }

    /// Evaluate over a whole batch: `out` is resized to
    /// `mask_words(batch.rows())` and bit `i` is set iff the predicate
    /// holds on row `i`. `batch` must have every column in
    /// [`Self::columns`] decoded. `scratch` buffers are reused across
    /// calls, so steady state allocates nothing.
    pub fn eval_batch(
        &self,
        batch: &ColumnBatch<'_>,
        scratch: &mut PredScratch,
        out: &mut Vec<u64>,
    ) {
        let rows = batch.rows();
        let words = mask_words(rows);
        debug_assert!(scratch.stack.is_empty());
        for op in &self.ops {
            match op {
                PredOp::Const(b) => {
                    let mut m = scratch.take(words);
                    if *b {
                        set_all(&mut m, rows);
                    }
                    scratch.stack.push(m);
                }
                PredOp::CmpI { col, op, lit } => {
                    let mut m = scratch.take(words);
                    let lit = *lit;
                    cmp_mask(i64_data(batch, *col), *op, &mut m, move |v| v.cmp(&lit));
                    scratch.stack.push(m);
                }
                PredOp::CmpF { col, op, lit } => {
                    let mut m = scratch.take(words);
                    let lit = *lit;
                    cmp_mask(f64_data(batch, *col), *op, &mut m, move |v| {
                        v.total_cmp(&lit)
                    });
                    scratch.stack.push(m);
                }
                PredOp::CmpD { col, op, lit } => {
                    let mut m = scratch.take(words);
                    let lit = *lit;
                    cmp_mask(date_data(batch, *col), *op, &mut m, move |v| v.cmp(&lit));
                    scratch.stack.push(m);
                }
                PredOp::CmpS { col, op, lit } => {
                    let mut m = scratch.take(words);
                    let op = *op;
                    str_mask(batch, *col, &mut m, |v| op.matches(v.cmp(lit)));
                    scratch.stack.push(m);
                }
                PredOp::BetweenI { col, lo, hi } => {
                    let mut m = scratch.take(words);
                    let (lo, hi) = (*lo, *hi);
                    fill_mask(i64_data(batch, *col), &mut m, move |v| v >= lo && v <= hi);
                    scratch.stack.push(m);
                }
                PredOp::BetweenF { col, lo, hi } => {
                    let mut m = scratch.take(words);
                    let (lo, hi) = (*lo, *hi);
                    fill_mask(f64_data(batch, *col), &mut m, move |v| {
                        v.total_cmp(&lo) != Ordering::Less && v.total_cmp(&hi) != Ordering::Greater
                    });
                    scratch.stack.push(m);
                }
                PredOp::BetweenD { col, lo, hi } => {
                    let mut m = scratch.take(words);
                    let (lo, hi) = (*lo, *hi);
                    fill_mask(date_data(batch, *col), &mut m, move |v| v >= lo && v <= hi);
                    scratch.stack.push(m);
                }
                PredOp::BetweenS { col, lo, hi } => {
                    let mut m = scratch.take(words);
                    str_mask(batch, *col, &mut m, |v| v >= &**lo && v <= &**hi);
                    scratch.stack.push(m);
                }
                PredOp::InI { col, items } => {
                    let mut m = scratch.take(words);
                    fill_mask(i64_data(batch, *col), &mut m, |v| {
                        items.binary_search(&v).is_ok()
                    });
                    scratch.stack.push(m);
                }
                PredOp::InF { col, items } => {
                    let mut m = scratch.take(words);
                    fill_mask(f64_data(batch, *col), &mut m, |v| {
                        items.binary_search_by(|it| it.total_cmp(&v)).is_ok()
                    });
                    scratch.stack.push(m);
                }
                PredOp::InD { col, items } => {
                    let mut m = scratch.take(words);
                    fill_mask(date_data(batch, *col), &mut m, |v| {
                        items.binary_search(&v).is_ok()
                    });
                    scratch.stack.push(m);
                }
                PredOp::InS { col, items } => {
                    let mut m = scratch.take(words);
                    str_mask(batch, *col, &mut m, |v| {
                        items.binary_search_by(|it| (**it).cmp(v)).is_ok()
                    });
                    scratch.stack.push(m);
                }
                PredOp::And(n) => {
                    let base = scratch.stack.len() - *n as usize;
                    let mut acc = scratch.stack.swap_remove(base);
                    while scratch.stack.len() > base {
                        let m = scratch.stack.pop().expect("operand");
                        for (a, b) in acc.iter_mut().zip(&m) {
                            *a &= *b;
                        }
                        scratch.pool.push(m);
                    }
                    scratch.stack.push(acc);
                }
                PredOp::Or(n) => {
                    let base = scratch.stack.len() - *n as usize;
                    let mut acc = scratch.stack.swap_remove(base);
                    while scratch.stack.len() > base {
                        let m = scratch.stack.pop().expect("operand");
                        for (a, b) in acc.iter_mut().zip(&m) {
                            *a |= *b;
                        }
                        scratch.pool.push(m);
                    }
                    scratch.stack.push(acc);
                }
                PredOp::Not => {
                    let m = scratch.stack.last_mut().expect("operand");
                    for w in m.iter_mut() {
                        *w = !*w;
                    }
                    mask_tail(m, rows);
                }
            }
        }
        let result = scratch.stack.pop().expect("program leaves one operand");
        debug_assert!(scratch.stack.is_empty());
        out.clear();
        out.extend_from_slice(&result);
        scratch.pool.push(result);
    }
}

/// Process-wide compiled-program cache, keyed by (expression signature,
/// schema fingerprint).
///
/// `run_filter`/`run_scan` used to lower the same predicate once per
/// packet: 32 concurrent identical scans each paid a full compile. The
/// cache shares one `Arc<CompiledPred>` across them, mirroring the CJOIN
/// admission predicate-sharing cache at the engine layer. Entries are
/// verified by full expression *and* schema equality on hit, so a
/// collision in either hash degrades to an uncached compile, never a
/// wrong program.
mod pred_cache {
    use super::CompiledPred;
    use crate::expr::Expr;
    use crate::signature::expr_signature;
    use qs_storage::Schema;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    type Cache = Mutex<HashMap<(u64, u64), (Expr, Schema, Arc<CompiledPred>)>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);

    /// Bound on resident programs; the map is cleared wholesale beyond it
    /// (compiles are cheap — the cache exists to dedupe *concurrent*
    /// identical work, not to persist history).
    const CAP: usize = 1024;

    pub(super) fn get_or_compile(expr: &Expr, schema: &Schema) -> Arc<CompiledPred> {
        let key = (expr_signature(expr), schema.fingerprint());
        let cache = CACHE.get_or_init(Default::default);
        if let Some((resident_expr, resident_schema, program)) =
            cache.lock().expect("pred cache").get(&key)
        {
            // Both halves are verified structurally: a collision in
            // either 64-bit hash serves a one-off compile, never a
            // program lowered against a different row layout.
            if resident_expr == expr && resident_schema == schema {
                HITS.fetch_add(1, Ordering::Relaxed);
                return program.clone();
            }
            MISSES.fetch_add(1, Ordering::Relaxed);
            return Arc::new(CompiledPred::compile(expr, schema));
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        let program = Arc::new(CompiledPred::compile(expr, schema));
        let mut guard = cache.lock().expect("pred cache");
        if guard.len() >= CAP {
            guard.clear();
        }
        guard.insert(key, (expr.clone(), schema.clone(), program.clone()));
        program
    }

    pub(super) fn stats() -> (u64, u64) {
        (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
    }
}

impl CompiledPred {
    /// [`Self::compile`] through the process-wide program cache:
    /// concurrent packets carrying the identical predicate over the same
    /// schema share one compiled program instead of each lowering their
    /// own.
    pub fn cached(expr: &Expr, schema: &Schema) -> std::sync::Arc<CompiledPred> {
        pred_cache::get_or_compile(expr, schema)
    }

    /// Lifetime (hits, misses) of the shared program cache.
    pub fn cache_stats() -> (u64, u64) {
        pred_cache::stats()
    }
}

/// Set bits `0..rows` of the mask.
fn set_all(m: &mut [u64], rows: usize) {
    for w in m.iter_mut() {
        *w = u64::MAX;
    }
    mask_tail(m, rows);
}

/// Clear bits `rows..` of the final word so combinators never see ghost
/// rows.
#[inline]
fn mask_tail(m: &mut [u64], rows: usize) {
    if !rows.is_multiple_of(64) {
        if let Some(last) = m.last_mut() {
            *last &= (1u64 << (rows % 64)) - 1;
        }
    }
}

/// Compile one comparison leaf, folding mistyped literals: under
/// `Value::total_cmp` a column/literal type mismatch orders purely by
/// type rank, independent of the row.
fn emit_cmp(col: usize, op: CmpOp, lit: &Value, schema: &Schema, ops: &mut Vec<PredOp>) {
    let dt = schema.dtype(col);
    let col32 = col as u32;
    match (dt, lit) {
        (DataType::Int, Value::Int(x)) => ops.push(PredOp::CmpI {
            col: col32,
            op,
            lit: *x,
        }),
        (DataType::Float, Value::Float(x)) => ops.push(PredOp::CmpF {
            col: col32,
            op,
            lit: *x,
        }),
        (DataType::Date, Value::Date(x)) => ops.push(PredOp::CmpD {
            col: col32,
            op,
            lit: *x,
        }),
        (DataType::Char(_), Value::Str(x)) => ops.push(PredOp::CmpS {
            col: col32,
            op,
            lit: x.as_str().into(),
        }),
        _ => ops.push(PredOp::Const(
            op.matches(dtype_rank(dt).cmp(&value_rank(lit))),
        )),
    }
}

fn emit(expr: &Expr, schema: &Schema, ops: &mut Vec<PredOp>) {
    match expr {
        Expr::Const(b) => ops.push(PredOp::Const(*b)),
        Expr::Cmp { col, op, lit } => emit_cmp(*col, *op, lit, schema, ops),
        Expr::Between { col, lo, hi } => {
            let dt = schema.dtype(*col);
            let col32 = *col as u32;
            match (dt, lo, hi) {
                (DataType::Int, Value::Int(lo), Value::Int(hi)) => ops.push(PredOp::BetweenI {
                    col: col32,
                    lo: *lo,
                    hi: *hi,
                }),
                (DataType::Float, Value::Float(lo), Value::Float(hi)) => {
                    ops.push(PredOp::BetweenF {
                        col: col32,
                        lo: *lo,
                        hi: *hi,
                    })
                }
                (DataType::Date, Value::Date(lo), Value::Date(hi)) => ops.push(PredOp::BetweenD {
                    col: col32,
                    lo: *lo,
                    hi: *hi,
                }),
                (DataType::Char(_), Value::Str(lo), Value::Str(hi)) => ops.push(PredOp::BetweenS {
                    col: col32,
                    lo: lo.as_str().into(),
                    hi: hi.as_str().into(),
                }),
                // Mixed/mistyped bounds: decompose into the two half-open
                // comparisons, each folding independently.
                _ => {
                    let parts = [
                        Expr::Cmp {
                            col: *col,
                            op: CmpOp::Ge,
                            lit: lo.clone(),
                        },
                        Expr::Cmp {
                            col: *col,
                            op: CmpOp::Le,
                            lit: hi.clone(),
                        },
                    ];
                    emit_nary(&parts, schema, ops, true);
                }
            }
        }
        Expr::InList { col, items } => {
            let dt = schema.dtype(*col);
            let col32 = *col as u32;
            // Mistyped items can never compare Equal; drop them.
            match dt {
                DataType::Int => {
                    let mut xs: Vec<i64> =
                        items.iter().filter_map(|v| v.as_int()).collect();
                    xs.sort_unstable();
                    if xs.is_empty() {
                        ops.push(PredOp::Const(false));
                    } else {
                        ops.push(PredOp::InI {
                            col: col32,
                            items: xs.into_boxed_slice(),
                        });
                    }
                }
                DataType::Float => {
                    let mut xs: Vec<f64> =
                        items.iter().filter_map(|v| v.as_float()).collect();
                    xs.sort_unstable_by(|a, b| a.total_cmp(b));
                    if xs.is_empty() {
                        ops.push(PredOp::Const(false));
                    } else {
                        ops.push(PredOp::InF {
                            col: col32,
                            items: xs.into_boxed_slice(),
                        });
                    }
                }
                DataType::Date => {
                    let mut xs: Vec<u32> =
                        items.iter().filter_map(|v| v.as_date()).collect();
                    xs.sort_unstable();
                    if xs.is_empty() {
                        ops.push(PredOp::Const(false));
                    } else {
                        ops.push(PredOp::InD {
                            col: col32,
                            items: xs.into_boxed_slice(),
                        });
                    }
                }
                DataType::Char(_) => {
                    let mut xs: Vec<Box<str>> = items
                        .iter()
                        .filter_map(|v| v.as_str().map(Into::into))
                        .collect();
                    xs.sort_unstable();
                    if xs.is_empty() {
                        ops.push(PredOp::Const(false));
                    } else {
                        ops.push(PredOp::InS {
                            col: col32,
                            items: xs.into_boxed_slice(),
                        });
                    }
                }
            }
        }
        Expr::And(parts) => emit_nary(parts, schema, ops, true),
        Expr::Or(parts) => emit_nary(parts, schema, ops, false),
        Expr::Not(inner) => {
            let start = ops.len();
            emit(inner, schema, ops);
            // A valid postfix program ending in `Const` must be exactly
            // that one op (a trailing push would otherwise leave two
            // operands), so folding on the tail is safe.
            if ops.len() == start + 1 {
                if let Some(PredOp::Const(b)) = ops.last_mut() {
                    *b = !*b;
                    return;
                }
            }
            ops.push(PredOp::Not);
        }
    }
}

/// Emit an n-ary And/Or: each operand is compiled into its own segment,
/// neutral constants are dropped, absorbing constants (false in And, true
/// in Or) fold the whole combinator, and directly nested combinators of
/// the same kind are flattened into the parent (and/or fusion).
fn emit_nary(parts: &[Expr], schema: &Schema, ops: &mut Vec<PredOp>, is_and: bool) {
    let start = ops.len();
    let mut operands: u32 = 0;
    for p in parts {
        let mut seg = Vec::new();
        emit(p, schema, &mut seg);
        if seg.len() == 1 {
            if let PredOp::Const(b) = seg[0] {
                if b == is_and {
                    continue; // neutral element
                }
                ops.truncate(start);
                ops.push(PredOp::Const(!is_and));
                return; // absorbing element
            }
        }
        match seg.last() {
            // `And(a, And(b, c))` fuses to `And(a, b, c)` (same for Or):
            // the nested close is dropped and its operands join ours.
            Some(PredOp::And(m)) if is_and => {
                operands += *m;
                seg.pop();
            }
            Some(PredOp::Or(m)) if !is_and => {
                operands += *m;
                seg.pop();
            }
            _ => operands += 1,
        }
        ops.extend(seg);
    }
    match operands {
        0 => ops.push(PredOp::Const(is_and)),
        1 => {}
        n => ops.push(if is_and { PredOp::And(n) } else { PredOp::Or(n) }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_storage::Page;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("k", DataType::Int),
            ("p", DataType::Float),
            ("d", DataType::Date),
            ("s", DataType::Char(4)),
        ])
    }

    fn page() -> Page {
        Page::from_values(
            &schema(),
            &(0..100)
                .map(|i| {
                    vec![
                        Value::Int(i - 50),
                        Value::Float((i as f64) * 0.25 - 10.0),
                        Value::Date(19970000 + (i as u32 % 28) + 1),
                        Value::Str(format!("s{:02}", i % 50)),
                    ]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    /// Assert compiled row and batch evaluation both agree with the
    /// interpreter on every row of the test page.
    fn assert_equiv(e: &Expr) {
        let s = schema();
        let p = page();
        let c = CompiledPred::compile(e, &s);
        let batch = ColumnBatch::from_page(&p, c.columns());
        let mut scratch = PredScratch::new();
        let mut mask = Vec::new();
        c.eval_batch(&batch, &mut scratch, &mut mask);
        for (i, row) in p.iter().enumerate() {
            let want = e.eval(&row);
            assert_eq!(c.eval_row(&row), want, "row {i}: eval_row vs interpreter");
            let got = mask[i / 64] & (1 << (i % 64)) != 0;
            assert_eq!(got, want, "row {i}: eval_batch vs interpreter");
        }
    }

    #[test]
    fn leaves_all_types() {
        assert_equiv(&Expr::eq(0, 7i64));
        assert_equiv(&Expr::lt(0, -10i64));
        assert_equiv(&Expr::ge(1, 0.0));
        assert_equiv(&Expr::Cmp {
            col: 2,
            op: CmpOp::Ne,
            lit: Value::Date(19970005),
        });
        assert_equiv(&Expr::Cmp {
            col: 3,
            op: CmpOp::Gt,
            lit: Value::Str("s25".into()),
        });
    }

    #[test]
    fn between_and_inlist() {
        assert_equiv(&Expr::between(0, -5i64, 20i64));
        assert_equiv(&Expr::between(2, Value::Date(19970003), Value::Date(19970010)));
        assert_equiv(&Expr::Between {
            col: 3,
            lo: Value::Str("s10".into()),
            hi: Value::Str("s30".into()),
        });
        assert_equiv(&Expr::InList {
            col: 0,
            items: vec![Value::Int(-3), Value::Int(14), Value::Int(9999)],
        });
        assert_equiv(&Expr::InList {
            col: 3,
            items: vec![Value::Str("s07".into()), Value::Str("zz".into())],
        });
        assert_equiv(&Expr::InList { col: 1, items: vec![] });
    }

    #[test]
    fn combinators_and_fusion() {
        let e = Expr::And(vec![
            Expr::ge(0, -20i64),
            Expr::Or(vec![
                Expr::lt(1, 0.0),
                Expr::Not(Box::new(Expr::eq(0, 3i64))),
            ]),
            Expr::between(2, Value::Date(19970001), Value::Date(19970020)),
        ]);
        assert_equiv(&e);
        assert_equiv(&Expr::And(vec![]));
        assert_equiv(&Expr::Or(vec![]));
        assert_equiv(&Expr::Not(Box::new(Expr::Const(false))));
    }

    #[test]
    fn constant_folding() {
        // Neutral / absorbing constants fold away.
        let c = CompiledPred::compile(
            &Expr::And(vec![Expr::Const(true), Expr::eq(0, 1i64)]),
            &schema(),
        );
        assert_eq!(c.len(), 1);
        let c = CompiledPred::compile(
            &Expr::And(vec![Expr::Const(false), Expr::eq(0, 1i64)]),
            &schema(),
        );
        assert_eq!(c.len(), 1);
        assert_equiv(&Expr::And(vec![Expr::Const(false), Expr::eq(0, 1i64)]));
        assert_equiv(&Expr::Or(vec![Expr::Const(true), Expr::eq(0, 1i64)]));
    }

    #[test]
    fn mistyped_literals_match_interpreter_fallback() {
        // Int column vs Float literal: constant by type rank.
        assert_equiv(&Expr::Cmp {
            col: 0,
            op: CmpOp::Lt,
            lit: Value::Float(0.0),
        });
        assert_equiv(&Expr::Cmp {
            col: 3,
            op: CmpOp::Le,
            lit: Value::Int(5),
        });
        // Mixed-typed BETWEEN bounds.
        assert_equiv(&Expr::Between {
            col: 0,
            lo: Value::Int(-10),
            hi: Value::Float(10.0),
        });
        // Mistyped IN items are unreachable.
        assert_equiv(&Expr::InList {
            col: 0,
            items: vec![Value::Float(1.0), Value::Int(0)],
        });
    }

    #[test]
    fn referenced_columns_drive_batch_decode() {
        let e = Expr::And(vec![Expr::eq(0, 1i64), Expr::lt(2, Value::Date(19970009))]);
        let c = CompiledPred::compile(&e, &schema());
        assert_eq!(c.columns(), &[0, 2]);
    }

    #[test]
    fn scratch_reuse_allocates_once() {
        let s = schema();
        let p = page();
        let e = Expr::And(vec![Expr::ge(0, 0i64), Expr::lt(1, 5.0)]);
        let c = CompiledPred::compile(&e, &s);
        let batch = ColumnBatch::from_page(&p, c.columns());
        let mut scratch = PredScratch::new();
        let mut mask = Vec::new();
        for _ in 0..3 {
            c.eval_batch(&batch, &mut scratch, &mut mask);
        }
        assert!(scratch.stack.is_empty());
        // Pool retains the two operand masks for reuse.
        assert!(!scratch.pool.is_empty());
    }

    #[test]
    fn cached_compile_shares_programs() {
        let s = schema();
        let e = Expr::And(vec![Expr::ge(0, -3i64), Expr::lt(1, 2.5)]);
        let a = CompiledPred::cached(&e, &s);
        let (h0, _) = CompiledPred::cache_stats();
        let b = CompiledPred::cached(&e, &s);
        let (h1, _) = CompiledPred::cache_stats();
        assert!(Arc::ptr_eq(&a, &b), "identical predicate must share one program");
        assert!(h1 > h0, "second lookup is a hit");
        assert_eq!(*a, CompiledPred::compile(&e, &s));
        // Same expression over a structurally different schema is a
        // different program identity.
        let other = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("p", DataType::Int), // column 1 retyped
            ("d", DataType::Date),
            ("s", DataType::Char(4)),
        ]);
        let c = CompiledPred::cached(&e, &other);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(*c, CompiledPred::compile(&e, &other));
    }

    #[test]
    fn fill_mask_unrolled_block_boundaries() {
        // Exercise the 256-lane unrolled path plus the scalar remainder:
        // lengths straddling block and word boundaries must agree with a
        // bit-by-bit oracle.
        let s = Schema::from_pairs(&[("k", DataType::Int)]);
        let e = Expr::eq(0, 1i64);
        let c = CompiledPred::compile(&e, &s);
        for rows in [0usize, 1, 63, 64, 65, 255, 256, 257, 511, 512, 513, 700, 1024, 1100] {
            let vals: Vec<Vec<Value>> = (0..rows)
                .map(|i| vec![Value::Int((i % 3 == 0) as i64)])
                .collect();
            let p = crate::compiled::tests::page_from(&s, &vals);
            let batch = ColumnBatch::from_page(&p, c.columns());
            let mut scratch = PredScratch::new();
            let mut mask = Vec::new();
            c.eval_batch(&batch, &mut scratch, &mut mask);
            assert_eq!(mask.len(), mask_words(rows));
            for i in 0..rows {
                let want = i % 3 == 0;
                let got = mask[i / 64] & (1 << (i % 64)) != 0;
                assert_eq!(got, want, "rows={rows} i={i}");
            }
            // No ghost bits above `rows`.
            assert_eq!(iter_ones(&mask).count(), rows.div_ceil(3));
        }
    }

    fn page_from(s: &Arc<Schema>, vals: &[Vec<Value>]) -> Page {
        let mut b = qs_storage::PageBuilder::with_bytes(
            s.clone(),
            (vals.len().max(1)) * s.row_size() + 64,
        );
        for r in vals {
            assert!(b.push_values(r).unwrap());
        }
        b.finish()
    }

    #[test]
    fn dict_coded_masks_are_bit_identical() {
        // The test page's Char column has 50 distinct values over 100
        // rows, so its columnar form dictionary-codes it. Every string
        // op must produce the same mask over codes as over decoded
        // strings — and as the interpreter on the row-major original.
        let s = schema();
        let row_page = page();
        let col_page = row_page.to_columnar();
        let exprs = [
            Expr::Cmp {
                col: 3,
                op: CmpOp::Eq,
                lit: Value::Str("s07".into()),
            },
            Expr::Cmp {
                col: 3,
                op: CmpOp::Gt,
                lit: Value::Str("s25".into()),
            },
            Expr::Between {
                col: 3,
                lo: Value::Str("s10".into()),
                hi: Value::Str("s30".into()),
            },
            Expr::InList {
                col: 3,
                items: vec![Value::Str("s03".into()), Value::Str("s44".into())],
            },
        ];
        for e in exprs {
            let c = CompiledPred::compile(&e, &s);
            let coded = ColumnBatch::for_predicate(&col_page, c.columns());
            assert!(
                matches!(coded.col(3), ColumnData::DictStr { .. }),
                "predicate batch must keep the dictionary codes"
            );
            let decoded = ColumnBatch::from_page(&col_page, c.columns());
            let mut scratch = PredScratch::new();
            let (mut m_coded, mut m_decoded) = (Vec::new(), Vec::new());
            c.eval_batch(&coded, &mut scratch, &mut m_coded);
            c.eval_batch(&decoded, &mut scratch, &mut m_decoded);
            assert_eq!(m_coded, m_decoded, "expr {e:?}");
            for (i, row) in row_page.iter().enumerate() {
                let got = m_coded[i / 64] & (1 << (i % 64)) != 0;
                assert_eq!(got, e.eval(&row), "expr {e:?} row {i}");
            }
        }
    }

    #[test]
    fn tail_rows_are_masked() {
        // 100 rows -> the last word has ghost bits; Not must not set them.
        let e = Expr::Not(Box::new(Expr::eq(0, 12345i64)));
        let s = schema();
        let p = page();
        let c = CompiledPred::compile(&e, &s);
        let batch = ColumnBatch::from_page(&p, c.columns());
        let mut scratch = PredScratch::new();
        let mut mask = Vec::new();
        c.eval_batch(&batch, &mut scratch, &mut mask);
        assert_eq!(iter_ones(&mask).count(), 100);
        assert!(iter_ones(&mask).all(|i| i < 100));
    }
}
