//! # qs-plan — logical plans, expressions, signatures
//!
//! The demo compares three execution strategies over the *same* logical
//! plans: query-centric QPipe operators, QPipe with Simultaneous
//! Pipelining (SP), and the CJOIN global query plan. This crate is the
//! shared plan vocabulary:
//!
//! * [`expr`]: predicate/scalar expressions evaluated against encoded rows,
//! * [`compiled`]: predicates lowered into flat typed programs
//!   ([`CompiledPred`]) evaluated row-wise or column-wise over
//!   `qs_storage::ColumnBatch` — the vectorized hot path shared by the
//!   CJOIN preprocessor, admissions and the engine's scan/filter,
//! * [`plan`]: the logical operator tree (`Scan`, `HashJoin`, `Aggregate`,
//!   `Sort`, `Project`, `Limit`) with schema derivation,
//! * [`signature`]: stable structural hashes of sub-plans — the key SP uses
//!   at run time to detect that two in-flight packets compute the same
//!   thing,
//! * [`star`]: recognition of star-shaped join plans (fact table joined
//!   with dimension chains), the class of plans CJOIN can evaluate,
//! * [`optimize`]: the query-centric optimizer — predicate pushdown,
//!   projection pruning and sampled star-join reordering, turning naive
//!   front-end plans into the per-table-predicate shape SP signatures and
//!   CJOIN admission work on.

pub mod builder;
pub mod compiled;
pub mod expr;
pub mod optimize;
pub mod plan;
pub mod signature;
pub mod star;

pub use builder::PlanBuilder;
pub use compiled::{CompiledPred, PredScratch};
pub use expr::{CmpOp, Expr};
pub use optimize::{
    estimate_selectivity, optimize, optimize_with, simplify_expr, OptimizerOptions,
};
pub use plan::{AggFunc, AggSpec, LogicalPlan, PlanError};
pub use signature::{signature, SigHasher};
pub use star::{DimJoin, StarQuery};

/// Result alias for plan operations.
pub type Result<T> = std::result::Result<T, PlanError>;
