//! Fluent plan builder with name-based column resolution.
//!
//! The workload templates and examples build plans by column *name*; the
//! builder tracks the evolving output schema so names resolve correctly
//! through joins and aggregates.

use crate::expr::Expr;
use crate::plan::{AggSpec, LogicalPlan, PlanError};
use crate::Result;
use qs_storage::{Catalog, Schema};
use std::sync::Arc;

/// Builds a [`LogicalPlan`] bottom-up while tracking the current schema.
pub struct PlanBuilder<'c> {
    catalog: &'c Catalog,
    plan: LogicalPlan,
    schema: Arc<Schema>,
}

impl<'c> PlanBuilder<'c> {
    /// Start from a full scan of `table`.
    pub fn scan(catalog: &'c Catalog, table: &str) -> Result<Self> {
        let t = catalog.get(table)?;
        Ok(PlanBuilder {
            catalog,
            plan: LogicalPlan::Scan {
                table: table.to_string(),
                predicate: None,
                projection: None,
            },
            schema: t.schema().clone(),
        })
    }

    /// Current output schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Resolve a column name in the current schema.
    pub fn col(&self, name: &str) -> Result<usize> {
        Ok(self.schema.index_of(name)?)
    }

    /// Apply a predicate. If the current node is a `Scan`, the predicate is
    /// pushed into it (merged with any existing one); otherwise a `Filter`
    /// node is added.
    pub fn filter(mut self, pred: Expr) -> Result<Self> {
        pred.validate(&self.schema).map_err(PlanError::Invalid)?;
        match &mut self.plan {
            LogicalPlan::Scan { predicate, .. } => {
                *predicate = Some(match predicate.take() {
                    Some(existing) => Expr::and(vec![existing, pred]),
                    None => pred,
                });
            }
            _ => {
                self.plan = LogicalPlan::Filter {
                    input: Box::new(self.plan),
                    predicate: pred,
                };
            }
        }
        Ok(self)
    }

    /// Join the current plan (as probe side) with a scan of `dim_table`
    /// (as build side): `current.probe_key = dim.dim_key`, with an optional
    /// predicate on the dimension.
    pub fn join_dim(
        mut self,
        dim_table: &str,
        probe_key: &str,
        dim_key: &str,
        dim_predicate: Option<Expr>,
    ) -> Result<Self> {
        let dim = self.catalog.get(dim_table)?;
        let probe_key_idx = self.schema.index_of(probe_key)?;
        let dim_key_idx = dim.schema().index_of(dim_key)?;
        if let Some(p) = &dim_predicate {
            p.validate(dim.schema()).map_err(PlanError::Invalid)?;
        }
        let dim_schema = dim.schema().clone();
        self.schema = self.schema.join(&dim_schema);
        self.plan = LogicalPlan::HashJoin {
            build: Box::new(LogicalPlan::Scan {
                table: dim_table.to_string(),
                predicate: dim_predicate,
                projection: None,
            }),
            probe: Box::new(self.plan),
            build_key: dim_key_idx,
            probe_key: probe_key_idx,
        };
        Ok(self)
    }

    /// Aggregate with named group-by columns.
    pub fn aggregate(mut self, group_by: &[&str], aggs: Vec<AggSpec>) -> Result<Self> {
        let group_idx: Vec<usize> = group_by
            .iter()
            .map(|n| self.schema.index_of(n).map_err(PlanError::from))
            .collect::<Result<_>>()?;
        self.plan = LogicalPlan::Aggregate {
            input: Box::new(self.plan),
            group_by: group_idx,
            aggs,
        };
        self.schema = self.plan.output_schema(self.catalog)?;
        Ok(self)
    }

    /// Sort by named keys.
    pub fn sort(mut self, keys: &[(&str, bool)]) -> Result<Self> {
        let key_idx: Vec<(usize, bool)> = keys
            .iter()
            .map(|(n, asc)| {
                self.schema
                    .index_of(n)
                    .map(|i| (i, *asc))
                    .map_err(PlanError::from)
            })
            .collect::<Result<_>>()?;
        self.plan = LogicalPlan::Sort {
            input: Box::new(self.plan),
            keys: key_idx,
        };
        Ok(self)
    }

    /// Keep only the named columns.
    pub fn project(mut self, columns: &[&str]) -> Result<Self> {
        let idx: Vec<usize> = columns
            .iter()
            .map(|n| self.schema.index_of(n).map_err(PlanError::from))
            .collect::<Result<_>>()?;
        self.schema = self.schema.project(&idx);
        self.plan = LogicalPlan::Project {
            input: Box::new(self.plan),
            columns: idx,
        };
        Ok(self)
    }

    /// Keep at most `n` rows.
    pub fn limit(mut self, n: usize) -> Self {
        self.plan = LogicalPlan::Limit {
            input: Box::new(self.plan),
            n,
        };
        self
    }

    /// Finish, validating the complete plan.
    pub fn build(self) -> Result<LogicalPlan> {
        self.plan.validate(self.catalog)?;
        Ok(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggFunc;
    use crate::StarQuery;
    use qs_storage::{DataType, TableBuilder, Value};

    fn catalog() -> Arc<Catalog> {
        let cat = Catalog::new();
        let fact = Schema::from_pairs(&[
            ("f_dk", DataType::Int),
            ("rev", DataType::Int),
        ]);
        let mut b = TableBuilder::new("fact", fact);
        b.push_values(&[Value::Int(1), Value::Int(5)]).unwrap();
        cat.register(b);
        let dim = Schema::from_pairs(&[("k", DataType::Int), ("year", DataType::Int)]);
        let mut b = TableBuilder::new("dim", dim);
        b.push_values(&[Value::Int(1), Value::Int(1997)]).unwrap();
        cat.register(b);
        cat
    }

    #[test]
    fn builds_star_plan_with_names() {
        let cat = catalog();
        let b = PlanBuilder::scan(&cat, "fact").unwrap();
        let year_pred = Expr::eq(1, 1997i64);
        let plan = b
            .join_dim("dim", "f_dk", "k", Some(year_pred))
            .unwrap()
            .aggregate(&["year"], vec![AggSpec::new(AggFunc::Sum(1), "sum_rev")])
            .unwrap()
            .build()
            .unwrap();
        let sq = StarQuery::detect(&plan, &cat).expect("is star");
        assert_eq!(sq.dims[0].table, "dim");
        let out = plan.output_schema(&cat).unwrap();
        assert_eq!(out.column(0).name, "year");
        assert_eq!(out.column(1).name, "sum_rev");
    }

    #[test]
    fn filter_pushes_into_scan_and_merges() {
        let cat = catalog();
        let plan = PlanBuilder::scan(&cat, "fact")
            .unwrap()
            .filter(Expr::ge(1, 0i64))
            .unwrap()
            .filter(Expr::lt(1, 100i64))
            .unwrap()
            .build()
            .unwrap();
        match &plan {
            LogicalPlan::Scan { predicate, .. } => {
                assert!(matches!(predicate, Some(Expr::And(parts)) if parts.len() == 2));
            }
            other => panic!("expected scan, got {other:?}"),
        }
    }

    #[test]
    fn filter_above_join_becomes_filter_node() {
        let cat = catalog();
        let b = PlanBuilder::scan(&cat, "fact").unwrap();
        let plan = b
            .join_dim("dim", "f_dk", "k", None)
            .unwrap()
            .filter(Expr::eq(3, 1997i64)) // dim.year in joined schema
            .unwrap()
            .build()
            .unwrap();
        assert!(matches!(plan, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn name_resolution_errors() {
        let cat = catalog();
        let b = PlanBuilder::scan(&cat, "fact").unwrap();
        assert!(b.col("nope").is_err());
        assert!(PlanBuilder::scan(&cat, "missing").is_err());
    }

    #[test]
    fn sort_project_limit_chain() {
        let cat = catalog();
        let plan = PlanBuilder::scan(&cat, "fact")
            .unwrap()
            .sort(&[("rev", false)])
            .unwrap()
            .project(&["rev"])
            .unwrap()
            .limit(10)
            .build()
            .unwrap();
        assert!(matches!(plan, LogicalPlan::Limit { .. }));
        let s = plan.output_schema(&cat).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.column(0).name, "rev");
    }

    #[test]
    fn invalid_predicate_rejected_at_filter() {
        let cat = catalog();
        let b = PlanBuilder::scan(&cat, "fact").unwrap();
        assert!(b.filter(Expr::eq(9, 1i64)).is_err());
    }
}
