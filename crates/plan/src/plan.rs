//! The logical operator tree.
//!
//! Operator semantics (shared by all three execution strategies):
//!
//! * `Scan` — full scan of a catalog table with an optional pushed-down
//!   predicate and projection.
//! * `Filter` — standalone selection (used when a predicate cannot be
//!   pushed into the scan).
//! * `HashJoin` — equi-join; the **build** side (dimension) is hashed, the
//!   **probe** side (fact) streams. Output rows are `probe ++ build`
//!   columns, so star-join chains keep fact columns at fixed offsets — the
//!   property CJOIN exploits.
//! * `Aggregate` — hash aggregation with `COUNT/SUM/AVG/MIN/MAX`.
//! * `Sort`, `Project`, `Limit` — the usual.

use crate::expr::Expr;
use qs_storage::{Catalog, Column, DataType, Schema, StorageError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Errors raised while building or validating plans.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Underlying catalog/schema error.
    Storage(StorageError),
    /// Semantic problem in the plan (description).
    Invalid(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Storage(e) => write!(f, "storage: {e}"),
            PlanError::Invalid(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<StorageError> for PlanError {
    fn from(e: StorageError) -> Self {
        PlanError::Storage(e)
    }
}

/// Aggregate functions. Column indices refer to the aggregate's input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)`
    Count,
    /// `SUM(col)` — `Int` input sums to `Int`, `Float` to `Float`.
    Sum(usize),
    /// `AVG(col)` — always `Float`.
    Avg(usize),
    /// `MIN(col)` — same type as the column.
    Min(usize),
    /// `MAX(col)` — same type as the column.
    Max(usize),
    /// `SUM(a * b)` — SSB Q1.x revenue (`extendedprice * discount`).
    /// `Int` when both inputs are `Int`, else `Float`.
    SumProd(usize, usize),
    /// `SUM(a - b)` — SSB Q4.x profit (`revenue - supplycost`).
    /// `Int` when both inputs are `Int`, else `Float`.
    SumDiff(usize, usize),
}

impl AggFunc {
    /// Column this aggregate reads, if any (first input for the two-column
    /// forms; see [`AggFunc::input_cols`]).
    pub fn input_col(&self) -> Option<usize> {
        match self {
            AggFunc::Count => None,
            AggFunc::Sum(c) | AggFunc::Avg(c) | AggFunc::Min(c) | AggFunc::Max(c) => Some(*c),
            AggFunc::SumProd(a, _) | AggFunc::SumDiff(a, _) => Some(*a),
        }
    }

    /// All columns this aggregate reads.
    pub fn input_cols(&self) -> Vec<usize> {
        match self {
            AggFunc::Count => vec![],
            AggFunc::Sum(c) | AggFunc::Avg(c) | AggFunc::Min(c) | AggFunc::Max(c) => vec![*c],
            AggFunc::SumProd(a, b) | AggFunc::SumDiff(a, b) => vec![*a, *b],
        }
    }

    /// Output type given the input schema.
    pub fn output_type(&self, input: &Schema) -> DataType {
        let int_or_float = |c: usize| match input.dtype(c) {
            DataType::Int => DataType::Int,
            _ => DataType::Float,
        };
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Sum(c) => int_or_float(*c),
            AggFunc::Avg(_) => DataType::Float,
            AggFunc::Min(c) | AggFunc::Max(c) => input.dtype(*c),
            AggFunc::SumProd(a, b) | AggFunc::SumDiff(a, b) => {
                if input.dtype(*a) == DataType::Int && input.dtype(*b) == DataType::Int {
                    DataType::Int
                } else {
                    DataType::Float
                }
            }
        }
    }
}

/// A named aggregate output column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Output column name.
    pub name: String,
}

impl AggSpec {
    /// Construct an aggregate output column.
    pub fn new(func: AggFunc, name: impl Into<String>) -> Self {
        AggSpec {
            func,
            name: name.into(),
        }
    }
}

/// The logical plan tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogicalPlan {
    /// Scan a base table with optional selection and projection pushdown.
    Scan {
        /// Catalog table name.
        table: String,
        /// Predicate over the *table* schema (pre-projection).
        predicate: Option<Expr>,
        /// Columns to emit (post-predicate); `None` = all.
        projection: Option<Vec<usize>>,
    },
    /// Standalone selection.
    Filter {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// Hash equi-join. Output schema = probe columns ++ build columns.
    HashJoin {
        /// Build side (hashed, typically a dimension).
        build: Box<LogicalPlan>,
        /// Probe side (streamed, typically the fact or a prior join).
        probe: Box<LogicalPlan>,
        /// Key column in the build schema (must be `Int`).
        build_key: usize,
        /// Key column in the probe schema (must be `Int`).
        probe_key: usize,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Group-by columns (input schema indices).
        group_by: Vec<usize>,
        /// Aggregate outputs.
        aggs: Vec<AggSpec>,
    },
    /// Full sort.
    Sort {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// `(column, ascending)` sort keys, most significant first.
        keys: Vec<(usize, bool)>,
    },
    /// Column projection.
    Project {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Columns to keep, in output order.
        columns: Vec<usize>,
    },
    /// First-`n` rows.
    Limit {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Maximum rows to emit.
        n: usize,
    },
    /// Duplicate elimination over whole rows (first occurrence wins, so
    /// output order is deterministic given input order).
    Distinct {
        /// Input operator.
        input: Box<LogicalPlan>,
    },
    /// Heap-based top-`n`: equivalent to `Limit(n) ∘ Sort(keys)` but holds
    /// only `n` rows at a time. Output is emitted in key order.
    TopK {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// `(column, ascending)` sort keys, most significant first.
        keys: Vec<(usize, bool)>,
        /// Rows to keep.
        n: usize,
    },
}

impl LogicalPlan {
    /// Children of this node (0, 1 or 2).
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::TopK { input, .. } => vec![input],
            LogicalPlan::HashJoin { build, probe, .. } => vec![build, probe],
        }
    }

    /// Operator name (for EXPLAIN output and metrics labels).
    pub fn op_name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::HashJoin { .. } => "HashJoin",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Limit { .. } => "Limit",
            LogicalPlan::Distinct { .. } => "Distinct",
            LogicalPlan::TopK { .. } => "TopK",
        }
    }

    /// Derive the output schema against a catalog.
    pub fn output_schema(&self, catalog: &Catalog) -> crate::Result<Arc<Schema>> {
        match self {
            LogicalPlan::Scan {
                table, projection, ..
            } => {
                let t = catalog.get(table)?;
                Ok(match projection {
                    Some(cols) => {
                        for &c in cols {
                            if c >= t.schema().len() {
                                return Err(PlanError::Invalid(format!(
                                    "projection column {c} out of range for `{table}`"
                                )));
                            }
                        }
                        t.schema().project(cols)
                    }
                    None => t.schema().clone(),
                })
            }
            LogicalPlan::Filter { input, .. } => input.output_schema(catalog),
            LogicalPlan::HashJoin { build, probe, .. } => {
                let b = build.output_schema(catalog)?;
                let p = probe.output_schema(catalog)?;
                Ok(p.join(&b))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.output_schema(catalog)?;
                let mut cols = Vec::with_capacity(group_by.len() + aggs.len());
                for &g in group_by {
                    if g >= in_schema.len() {
                        return Err(PlanError::Invalid(format!(
                            "group-by column {g} out of range"
                        )));
                    }
                    cols.push(in_schema.column(g).clone());
                }
                for a in aggs {
                    for c in a.func.input_cols() {
                        if c >= in_schema.len() {
                            return Err(PlanError::Invalid(format!(
                                "aggregate column {c} out of range"
                            )));
                        }
                    }
                    cols.push(Column::new(a.name.clone(), a.func.output_type(&in_schema)));
                }
                Ok(Schema::new(cols))
            }
            LogicalPlan::Sort { input, keys } => {
                let s = input.output_schema(catalog)?;
                for (k, _) in keys {
                    if *k >= s.len() {
                        return Err(PlanError::Invalid(format!("sort column {k} out of range")));
                    }
                }
                Ok(s)
            }
            LogicalPlan::Project { input, columns } => {
                let s = input.output_schema(catalog)?;
                for &c in columns {
                    if c >= s.len() {
                        return Err(PlanError::Invalid(format!(
                            "project column {c} out of range"
                        )));
                    }
                }
                Ok(s.project(columns))
            }
            LogicalPlan::Limit { input, .. } | LogicalPlan::Distinct { input } => {
                input.output_schema(catalog)
            }
            LogicalPlan::TopK { input, keys, .. } => {
                let s = input.output_schema(catalog)?;
                for (k, _) in keys {
                    if *k >= s.len() {
                        return Err(PlanError::Invalid(format!(
                            "top-k column {k} out of range"
                        )));
                    }
                }
                Ok(s)
            }
        }
    }

    /// Validate the whole tree against a catalog: column references in
    /// range, predicate literal types compatible, join keys `Int`,
    /// aggregates over numeric columns.
    pub fn validate(&self, catalog: &Catalog) -> crate::Result<()> {
        match self {
            LogicalPlan::Scan {
                table, predicate, ..
            } => {
                let t = catalog.get(table)?;
                if let Some(p) = predicate {
                    p.validate(t.schema()).map_err(PlanError::Invalid)?;
                }
                // projection checked by output_schema
                self.output_schema(catalog)?;
                Ok(())
            }
            LogicalPlan::Filter { input, predicate } => {
                input.validate(catalog)?;
                let s = input.output_schema(catalog)?;
                predicate.validate(&s).map_err(PlanError::Invalid)
            }
            LogicalPlan::HashJoin {
                build,
                probe,
                build_key,
                probe_key,
            } => {
                build.validate(catalog)?;
                probe.validate(catalog)?;
                let bs = build.output_schema(catalog)?;
                let ps = probe.output_schema(catalog)?;
                for (side, key, schema) in
                    [("build", build_key, &bs), ("probe", probe_key, &ps)]
                {
                    if *key >= schema.len() {
                        return Err(PlanError::Invalid(format!(
                            "{side} key {key} out of range"
                        )));
                    }
                    if schema.dtype(*key) != DataType::Int {
                        return Err(PlanError::Invalid(format!(
                            "{side} key `{}` must be Int, found {}",
                            schema.column(*key).name,
                            schema.dtype(*key).name()
                        )));
                    }
                }
                Ok(())
            }
            LogicalPlan::Aggregate { input, aggs, .. } => {
                input.validate(catalog)?;
                let s = input.output_schema(catalog)?;
                for a in aggs {
                    let arithmetic = matches!(
                        a.func,
                        AggFunc::Sum(_)
                            | AggFunc::Avg(_)
                            | AggFunc::SumProd(_, _)
                            | AggFunc::SumDiff(_, _)
                    );
                    for c in a.func.input_cols() {
                        if arithmetic && matches!(s.dtype(c), DataType::Char(_)) {
                            return Err(PlanError::Invalid(format!(
                                "arithmetic aggregate over Char column `{}`",
                                s.column(c).name
                            )));
                        }
                    }
                }
                self.output_schema(catalog)?;
                Ok(())
            }
            LogicalPlan::Sort { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::TopK { input, .. } => {
                input.validate(catalog)?;
                self.output_schema(catalog)?;
                Ok(())
            }
        }
    }

    /// Single-line EXPLAIN-style rendering (indented tree).
    pub fn explain(&self) -> String {
        fn go(p: &LogicalPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            match p {
                LogicalPlan::Scan {
                    table,
                    predicate,
                    projection,
                } => {
                    out.push_str(&format!(
                        "Scan {table}{}{}",
                        if predicate.is_some() { " [filtered]" } else { "" },
                        match projection {
                            Some(c) => format!(" proj={c:?}"),
                            None => String::new(),
                        }
                    ));
                }
                LogicalPlan::Filter { .. } => out.push_str("Filter"),
                LogicalPlan::HashJoin {
                    build_key,
                    probe_key,
                    ..
                } => out.push_str(&format!("HashJoin probe.{probe_key} = build.{build_key}")),
                LogicalPlan::Aggregate { group_by, aggs, .. } => out.push_str(&format!(
                    "Aggregate group={group_by:?} aggs={}",
                    aggs.len()
                )),
                LogicalPlan::Sort { keys, .. } => out.push_str(&format!("Sort keys={keys:?}")),
                LogicalPlan::Project { columns, .. } => {
                    out.push_str(&format!("Project {columns:?}"))
                }
                LogicalPlan::Limit { n, .. } => out.push_str(&format!("Limit {n}")),
                LogicalPlan::Distinct { .. } => out.push_str("Distinct"),
                LogicalPlan::TopK { keys, n, .. } => {
                    out.push_str(&format!("TopK n={n} keys={keys:?}"))
                }
            }
            out.push('\n');
            for c in p.children() {
                go(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_storage::{TableBuilder, Value};

    fn catalog() -> Arc<Catalog> {
        let cat = Catalog::new();
        let fact = Schema::from_pairs(&[
            ("fk", DataType::Int),
            ("rev", DataType::Int),
            ("price", DataType::Float),
        ]);
        let mut b = TableBuilder::new("fact", fact);
        b.push_values(&[Value::Int(1), Value::Int(10), Value::Float(0.5)])
            .unwrap();
        cat.register(b);
        let dim = Schema::from_pairs(&[("dk", DataType::Int), ("name", DataType::Char(8))]);
        let mut b = TableBuilder::new("dim", dim);
        b.push_values(&[Value::Int(1), Value::Str("x".into())]).unwrap();
        cat.register(b);
        cat
    }

    fn star_plan() -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::HashJoin {
                build: Box::new(LogicalPlan::Scan {
                    table: "dim".into(),
                    predicate: None,
                    projection: None,
                }),
                probe: Box::new(LogicalPlan::Scan {
                    table: "fact".into(),
                    predicate: None,
                    projection: None,
                }),
                build_key: 0,
                probe_key: 0,
            }),
            group_by: vec![4], // dim.name in joined schema (fact 3 cols + dim.dk)
            aggs: vec![AggSpec::new(AggFunc::Sum(1), "sum_rev")],
        }
    }

    #[test]
    fn scan_schema_and_projection() {
        let cat = catalog();
        let scan = LogicalPlan::Scan {
            table: "fact".into(),
            predicate: None,
            projection: Some(vec![2, 0]),
        };
        let s = scan.output_schema(&cat).unwrap();
        assert_eq!(s.column(0).name, "price");
        assert_eq!(s.column(1).name, "fk");
        let bad = LogicalPlan::Scan {
            table: "fact".into(),
            predicate: None,
            projection: Some(vec![9]),
        };
        assert!(bad.output_schema(&cat).is_err());
    }

    #[test]
    fn join_schema_probe_then_build() {
        let cat = catalog();
        let plan = star_plan();
        if let LogicalPlan::Aggregate { input, .. } = &plan {
            let s = input.output_schema(&cat).unwrap();
            assert_eq!(s.len(), 5);
            assert_eq!(s.column(0).name, "fk"); // probe (fact) first
            assert_eq!(s.column(3).name, "dk"); // build (dim) appended
        } else {
            panic!()
        }
    }

    #[test]
    fn aggregate_schema_types() {
        let cat = catalog();
        let s = star_plan().output_schema(&cat).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(0).name, "name");
        assert_eq!(s.column(1).name, "sum_rev");
        assert_eq!(s.dtype(1), DataType::Int); // SUM(Int) stays Int
    }

    #[test]
    fn validate_accepts_good_rejects_bad() {
        let cat = catalog();
        assert!(star_plan().validate(&cat).is_ok());

        // join key on a Float column is rejected
        let bad = LogicalPlan::HashJoin {
            build: Box::new(LogicalPlan::Scan {
                table: "dim".into(),
                predicate: None,
                projection: None,
            }),
            probe: Box::new(LogicalPlan::Scan {
                table: "fact".into(),
                predicate: None,
                projection: None,
            }),
            build_key: 0,
            probe_key: 2,
        };
        assert!(matches!(bad.validate(&cat), Err(PlanError::Invalid(_))));

        // SUM over Char is rejected
        let bad = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Scan {
                table: "dim".into(),
                predicate: None,
                projection: None,
            }),
            group_by: vec![],
            aggs: vec![AggSpec::new(AggFunc::Sum(1), "s")],
        };
        assert!(bad.validate(&cat).is_err());

        // unknown table
        let bad = LogicalPlan::Scan {
            table: "nope".into(),
            predicate: None,
            projection: None,
        };
        assert!(matches!(bad.validate(&cat), Err(PlanError::Storage(_))));
    }

    #[test]
    fn explain_renders_tree() {
        let txt = star_plan().explain();
        assert!(txt.contains("Aggregate"));
        assert!(txt.contains("HashJoin"));
        assert!(txt.contains("Scan fact"));
        assert!(txt.lines().count() >= 4);
    }

    #[test]
    fn agg_func_output_types() {
        let s = Schema::from_pairs(&[("i", DataType::Int), ("f", DataType::Float)]);
        assert_eq!(AggFunc::Count.output_type(&s), DataType::Int);
        assert_eq!(AggFunc::Sum(0).output_type(&s), DataType::Int);
        assert_eq!(AggFunc::Sum(1).output_type(&s), DataType::Float);
        assert_eq!(AggFunc::Avg(0).output_type(&s), DataType::Float);
        assert_eq!(AggFunc::Min(0).output_type(&s), DataType::Int);
        assert_eq!(AggFunc::Max(1).output_type(&s), DataType::Float);
    }
}
