//! Predicate and scalar expressions over encoded rows.
//!
//! Expressions are evaluated directly against [`RowRef`]s (no `Value`
//! materialization on the comparison fast paths for `Int`/`Float`/`Date`
//! columns). They are also hashed structurally for SP signatures — two
//! queries share a sub-plan only if their predicates are *identical*, which
//! is exactly the paper's SP eligibility rule.

use qs_storage::{DataType, RowRef, Schema, Value};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Does `ord` (lhs vs rhs) satisfy the operator?
    #[inline]
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// SQL spelling (for `EXPLAIN`-style output).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A boolean predicate over one row.
///
/// Column references are positional (resolved against the input schema at
/// plan-build time), which keeps evaluation allocation-free and makes the
/// structural signature well-defined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// `col <op> literal`
    Cmp {
        /// Column index in the input schema.
        col: usize,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        lit: Value,
    },
    /// `col BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column index.
        col: usize,
        /// Lower bound (inclusive).
        lo: Value,
        /// Upper bound (inclusive).
        hi: Value,
    },
    /// `col IN (items...)`.
    InList {
        /// Column index.
        col: usize,
        /// Allowed values.
        items: Vec<Value>,
    },
    /// Conjunction (empty = true).
    And(Vec<Expr>),
    /// Disjunction (empty = false).
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Constant truth value.
    Const(bool),
}

impl Expr {
    /// `col = lit` shorthand.
    pub fn eq(col: usize, lit: impl Into<Value>) -> Expr {
        Expr::Cmp {
            col,
            op: CmpOp::Eq,
            lit: lit.into(),
        }
    }

    /// `col BETWEEN lo AND hi` shorthand.
    pub fn between(col: usize, lo: impl Into<Value>, hi: impl Into<Value>) -> Expr {
        Expr::Between {
            col,
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// `col < lit` shorthand.
    pub fn lt(col: usize, lit: impl Into<Value>) -> Expr {
        Expr::Cmp {
            col,
            op: CmpOp::Lt,
            lit: lit.into(),
        }
    }

    /// `col >= lit` shorthand.
    pub fn ge(col: usize, lit: impl Into<Value>) -> Expr {
        Expr::Cmp {
            col,
            op: CmpOp::Ge,
            lit: lit.into(),
        }
    }

    /// Conjunction of the given predicates, flattening trivial cases.
    pub fn and(mut parts: Vec<Expr>) -> Expr {
        parts.retain(|p| !matches!(p, Expr::Const(true)));
        match parts.len() {
            0 => Expr::Const(true),
            1 => parts.pop().expect("len checked"),
            _ => Expr::And(parts),
        }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &RowRef<'_>) -> bool {
        match self {
            Expr::Cmp { col, op, lit } => op.matches(cmp_col_lit(row, *col, lit)),
            Expr::Between { col, lo, hi } => {
                cmp_col_lit(row, *col, lo) != Ordering::Less
                    && cmp_col_lit(row, *col, hi) != Ordering::Greater
            }
            Expr::InList { col, items } => items
                .iter()
                .any(|it| cmp_col_lit(row, *col, it) == Ordering::Equal),
            Expr::And(parts) => parts.iter().all(|p| p.eval(row)),
            Expr::Or(parts) => parts.iter().any(|p| p.eval(row)),
            Expr::Not(inner) => !inner.eval(row),
            Expr::Const(b) => *b,
        }
    }

    /// Validate that all column references exist in `schema` and literals
    /// are type-compatible. Returns a description of the first problem.
    pub fn validate(&self, schema: &Schema) -> std::result::Result<(), String> {
        let check_col = |col: usize, lit: Option<&Value>| -> std::result::Result<(), String> {
            if col >= schema.len() {
                return Err(format!(
                    "column index {col} out of range for schema of {} columns",
                    schema.len()
                ));
            }
            if let Some(lit) = lit {
                let dt = schema.dtype(col);
                let compatible = matches!(
                    (lit, dt),
                    (Value::Int(_), DataType::Int)
                        | (Value::Float(_), DataType::Float)
                        | (Value::Date(_), DataType::Date)
                        | (Value::Str(_), DataType::Char(_))
                );
                if !compatible {
                    return Err(format!(
                        "literal {} incompatible with column `{}` of type {}",
                        lit,
                        schema.column(col).name,
                        dt.name()
                    ));
                }
            }
            Ok(())
        };
        match self {
            Expr::Cmp { col, lit, .. } => check_col(*col, Some(lit)),
            Expr::Between { col, lo, hi } => {
                check_col(*col, Some(lo))?;
                check_col(*col, Some(hi))
            }
            Expr::InList { col, items } => {
                for it in items {
                    check_col(*col, Some(it))?;
                }
                check_col(*col, None)
            }
            Expr::And(parts) | Expr::Or(parts) => {
                for p in parts {
                    p.validate(schema)?;
                }
                Ok(())
            }
            Expr::Not(inner) => inner.validate(schema),
            Expr::Const(_) => Ok(()),
        }
    }

    /// Rewrite column indices through a projection map: `new_col =
    /// map[old_col]`. Used when pushing predicates through projections.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Cmp { col, op, lit } => Expr::Cmp {
                col: map(*col),
                op: *op,
                lit: lit.clone(),
            },
            Expr::Between { col, lo, hi } => Expr::Between {
                col: map(*col),
                lo: lo.clone(),
                hi: hi.clone(),
            },
            Expr::InList { col, items } => Expr::InList {
                col: map(*col),
                items: items.clone(),
            },
            Expr::And(parts) => Expr::And(parts.iter().map(|p| p.remap_columns(map)).collect()),
            Expr::Or(parts) => Expr::Or(parts.iter().map(|p| p.remap_columns(map)).collect()),
            Expr::Not(inner) => Expr::Not(Box::new(inner.remap_columns(map))),
            Expr::Const(b) => Expr::Const(*b),
        }
    }

    /// Columns referenced by this expression (sorted, deduplicated).
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Cmp { col, .. } | Expr::Between { col, .. } | Expr::InList { col, .. } => {
                out.push(*col)
            }
            Expr::And(parts) | Expr::Or(parts) => {
                for p in parts {
                    p.collect_columns(out);
                }
            }
            Expr::Not(inner) => inner.collect_columns(out),
            Expr::Const(_) => {}
        }
    }
}

/// Compare column `col` of `row` with a literal, on the fast path for
/// numeric types and falling back to `Value` comparison for strings.
#[inline]
fn cmp_col_lit(row: &RowRef<'_>, col: usize, lit: &Value) -> Ordering {
    match (row.schema().dtype(col), lit) {
        (DataType::Int, Value::Int(x)) => row.i64_col(col).cmp(x),
        (DataType::Float, Value::Float(x)) => row.f64_col(col).total_cmp(x),
        (DataType::Date, Value::Date(x)) => row.date_col(col).cmp(x),
        (DataType::Char(_), Value::Str(x)) => row.str_col(col).cmp(x.as_str()),
        // Mistyped literal: fall back to tagged comparison (deterministic,
        // and `validate` rejects these plans before execution anyway).
        _ => row.value(col).total_cmp(lit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_storage::{Page, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("k", DataType::Int),
            ("p", DataType::Float),
            ("d", DataType::Date),
            ("s", DataType::Char(4)),
        ])
    }

    fn page() -> Page {
        Page::from_values(
            &schema(),
            &[
                vec![
                    Value::Int(5),
                    Value::Float(1.5),
                    Value::Date(19970101),
                    Value::Str("ab".into()),
                ],
                vec![
                    Value::Int(10),
                    Value::Float(2.5),
                    Value::Date(19980601),
                    Value::Str("cd".into()),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn cmp_ops() {
        let p = page();
        let r0 = p.row(0);
        assert!(Expr::eq(0, 5i64).eval(&r0));
        assert!(Expr::lt(0, 6i64).eval(&r0));
        assert!(Expr::ge(0, 5i64).eval(&r0));
        assert!(!Expr::eq(0, 6i64).eval(&r0));
        assert!(Expr::Cmp {
            col: 3,
            op: CmpOp::Eq,
            lit: Value::Str("ab".into())
        }
        .eval(&r0));
        assert!(Expr::Cmp {
            col: 1,
            op: CmpOp::Gt,
            lit: Value::Float(1.0)
        }
        .eval(&r0));
    }

    #[test]
    fn between_and_inlist() {
        let p = page();
        let r1 = p.row(1);
        assert!(Expr::between(2, Value::Date(19980101), Value::Date(19981231)).eval(&r1));
        assert!(!Expr::between(2, Value::Date(19970101), Value::Date(19971231)).eval(&r1));
        assert!(Expr::InList {
            col: 0,
            items: vec![Value::Int(1), Value::Int(10)]
        }
        .eval(&r1));
        assert!(!Expr::InList {
            col: 0,
            items: vec![]
        }
        .eval(&r1));
    }

    #[test]
    fn boolean_combinators() {
        let p = page();
        let r0 = p.row(0);
        let t = Expr::Const(true);
        let f = Expr::Const(false);
        assert!(Expr::And(vec![t.clone(), Expr::eq(0, 5i64)]).eval(&r0));
        assert!(!Expr::And(vec![t.clone(), f.clone()]).eval(&r0));
        assert!(Expr::Or(vec![f.clone(), Expr::eq(0, 5i64)]).eval(&r0));
        assert!(Expr::Not(Box::new(f.clone())).eval(&r0));
        assert!(Expr::And(vec![]).eval(&r0));
        assert!(!Expr::Or(vec![]).eval(&r0));
    }

    #[test]
    fn and_helper_flattens() {
        assert_eq!(Expr::and(vec![]), Expr::Const(true));
        assert_eq!(
            Expr::and(vec![Expr::Const(true), Expr::eq(0, 1i64)]),
            Expr::eq(0, 1i64)
        );
        assert!(matches!(
            Expr::and(vec![Expr::eq(0, 1i64), Expr::eq(1, 2i64)]),
            Expr::And(_)
        ));
    }

    #[test]
    fn validate_catches_bad_refs_and_types() {
        let s = schema();
        assert!(Expr::eq(0, 5i64).validate(&s).is_ok());
        assert!(Expr::eq(9, 5i64).validate(&s).is_err());
        assert!(Expr::eq(0, Value::Float(1.0)).validate(&s).is_err());
        assert!(Expr::Cmp {
            col: 3,
            op: CmpOp::Eq,
            lit: Value::Str("x".into())
        }
        .validate(&s)
        .is_ok());
    }

    #[test]
    fn remap_and_referenced_columns() {
        let e = Expr::And(vec![Expr::eq(2, 1i64), Expr::between(0, 1i64, 2i64)]);
        assert_eq!(e.referenced_columns(), vec![0, 2]);
        let shifted = e.remap_columns(&|c| c + 10);
        assert_eq!(shifted.referenced_columns(), vec![10, 12]);
    }
}
