//! Stable structural signatures of sub-plans.
//!
//! Simultaneous Pipelining identifies common sub-plans *at run time* by
//! comparing signatures of the packets queued at each stage. A signature
//! must therefore be:
//!
//! * **structural** — same operator tree + same parameters + same
//!   predicates ⇒ same signature, regardless of when/where built,
//! * **stable** — not dependent on process-specific state (so we use
//!   FNV-1a with fixed constants rather than `DefaultHasher`, whose seeds
//!   vary),
//! * **discriminating** — any difference in predicate literals, join keys,
//!   aggregate specs or table names must change it.

use crate::expr::{CmpOp, Expr};
use crate::plan::{AggFunc, AggSpec, LogicalPlan};
use qs_storage::Value;

/// FNV-1a 64-bit streaming hasher with convenience feeders.
#[derive(Debug, Clone)]
pub struct SigHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Default for SigHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl SigHasher {
    /// Fresh hasher.
    pub fn new() -> Self {
        SigHasher { state: FNV_OFFSET }
    }

    /// Feed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        for &x in b {
            self.state ^= x as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feed a u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Feed a usize (as u64 for cross-platform stability).
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Feed a string (length-prefixed to avoid ambiguity).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.usize(s.len());
        self.bytes(s.as_bytes())
    }

    /// Feed a value with a type tag.
    pub fn value(&mut self, v: &Value) -> &mut Self {
        match v {
            Value::Int(x) => self.u64(0x01).u64(*x as u64),
            Value::Float(x) => self.u64(0x02).u64(x.to_bits()),
            Value::Date(x) => self.u64(0x03).u64(*x as u64),
            Value::Str(s) => self.u64(0x04).str(s),
        }
    }

    /// Final hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

fn hash_expr(h: &mut SigHasher, e: &Expr) {
    match e {
        Expr::Cmp { col, op, lit } => {
            h.u64(0x10).usize(*col).u64(cmp_tag(*op)).value(lit);
        }
        Expr::Between { col, lo, hi } => {
            h.u64(0x11).usize(*col).value(lo).value(hi);
        }
        Expr::InList { col, items } => {
            h.u64(0x12).usize(*col).usize(items.len());
            for it in items {
                h.value(it);
            }
        }
        Expr::And(parts) => {
            h.u64(0x13).usize(parts.len());
            for p in parts {
                hash_expr(h, p);
            }
        }
        Expr::Or(parts) => {
            h.u64(0x14).usize(parts.len());
            for p in parts {
                hash_expr(h, p);
            }
        }
        Expr::Not(inner) => {
            h.u64(0x15);
            hash_expr(h, inner);
        }
        Expr::Const(b) => {
            h.u64(0x16).u64(*b as u64);
        }
    }
}

fn cmp_tag(op: CmpOp) -> u64 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn hash_agg(h: &mut SigHasher, a: &AggSpec) {
    // The output *name* is intentionally excluded: two queries computing
    // the same aggregate under different aliases still share work.
    match a.func {
        AggFunc::Count => {
            h.u64(0x20);
        }
        AggFunc::Sum(c) => {
            h.u64(0x21).usize(c);
        }
        AggFunc::Avg(c) => {
            h.u64(0x22).usize(c);
        }
        AggFunc::Min(c) => {
            h.u64(0x23).usize(c);
        }
        AggFunc::Max(c) => {
            h.u64(0x24).usize(c);
        }
        AggFunc::SumProd(a, b) => {
            h.u64(0x25).usize(a).usize(b);
        }
        AggFunc::SumDiff(a, b) => {
            h.u64(0x26).usize(a).usize(b);
        }
    }
}

fn hash_plan(h: &mut SigHasher, p: &LogicalPlan) {
    match p {
        LogicalPlan::Scan {
            table,
            predicate,
            projection,
        } => {
            h.u64(0x30).str(table);
            match predicate {
                Some(e) => {
                    h.u64(1);
                    hash_expr(h, e);
                }
                None => {
                    h.u64(0);
                }
            }
            match projection {
                Some(cols) => {
                    h.u64(1).usize(cols.len());
                    for &c in cols {
                        h.usize(c);
                    }
                }
                None => {
                    h.u64(0);
                }
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            h.u64(0x31);
            hash_expr(h, predicate);
            hash_plan(h, input);
        }
        LogicalPlan::HashJoin {
            build,
            probe,
            build_key,
            probe_key,
        } => {
            h.u64(0x32).usize(*build_key).usize(*probe_key);
            hash_plan(h, build);
            hash_plan(h, probe);
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            h.u64(0x33).usize(group_by.len());
            for &g in group_by {
                h.usize(g);
            }
            h.usize(aggs.len());
            for a in aggs {
                hash_agg(h, a);
            }
            hash_plan(h, input);
        }
        LogicalPlan::Sort { input, keys } => {
            h.u64(0x34).usize(keys.len());
            for (c, asc) in keys {
                h.usize(*c).u64(*asc as u64);
            }
            hash_plan(h, input);
        }
        LogicalPlan::Project { input, columns } => {
            h.u64(0x35).usize(columns.len());
            for &c in columns {
                h.usize(c);
            }
            hash_plan(h, input);
        }
        LogicalPlan::Limit { input, n } => {
            h.u64(0x36).usize(*n);
            hash_plan(h, input);
        }
        LogicalPlan::Distinct { input } => {
            h.u64(0x37);
            hash_plan(h, input);
        }
        LogicalPlan::TopK { input, keys, n } => {
            h.u64(0x38).usize(*n).usize(keys.len());
            for (c, asc) in keys {
                h.usize(*c).u64(*asc as u64);
            }
            hash_plan(h, input);
        }
    }
}

/// Signature of a (sub-)plan. Equal signatures ⇒ SP may share the packets.
pub fn signature(plan: &LogicalPlan) -> u64 {
    let mut h = SigHasher::new();
    hash_plan(&mut h, plan);
    h.finish()
}

/// Signature of an expression alone (used by CJOIN to dedupe predicates).
pub fn expr_signature(e: &Expr) -> u64 {
    let mut h = SigHasher::new();
    hash_expr(&mut h, e);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggSpec;

    fn scan(table: &str, pred: Option<Expr>) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            predicate: pred,
            projection: None,
        }
    }

    #[test]
    fn identical_plans_same_signature() {
        let a = scan("t", Some(Expr::eq(0, 5i64)));
        let b = scan("t", Some(Expr::eq(0, 5i64)));
        assert_eq!(signature(&a), signature(&b));
    }

    #[test]
    fn different_literal_different_signature() {
        let a = scan("t", Some(Expr::eq(0, 5i64)));
        let b = scan("t", Some(Expr::eq(0, 6i64)));
        assert_ne!(signature(&a), signature(&b));
    }

    #[test]
    fn different_table_or_predicate_shape_differs() {
        assert_ne!(signature(&scan("t", None)), signature(&scan("u", None)));
        assert_ne!(
            signature(&scan("t", None)),
            signature(&scan("t", Some(Expr::Const(true))))
        );
        assert_ne!(
            signature(&scan("t", Some(Expr::lt(0, 5i64)))),
            signature(&scan("t", Some(Expr::ge(0, 5i64))))
        );
    }

    #[test]
    fn aggregate_alias_does_not_matter_function_does() {
        let base = scan("t", None);
        let agg = |name: &str, f: AggFunc| LogicalPlan::Aggregate {
            input: Box::new(base.clone()),
            group_by: vec![0],
            aggs: vec![AggSpec::new(f, name)],
        };
        assert_eq!(
            signature(&agg("x", AggFunc::Sum(1))),
            signature(&agg("y", AggFunc::Sum(1)))
        );
        assert_ne!(
            signature(&agg("x", AggFunc::Sum(1))),
            signature(&agg("x", AggFunc::Sum(2)))
        );
        assert_ne!(
            signature(&agg("x", AggFunc::Sum(1))),
            signature(&agg("x", AggFunc::Avg(1)))
        );
    }

    #[test]
    fn join_order_and_keys_matter() {
        let j = |bk, pk| LogicalPlan::HashJoin {
            build: Box::new(scan("d", None)),
            probe: Box::new(scan("f", None)),
            build_key: bk,
            probe_key: pk,
        };
        assert_eq!(signature(&j(0, 1)), signature(&j(0, 1)));
        assert_ne!(signature(&j(0, 1)), signature(&j(0, 2)));
        let swapped = LogicalPlan::HashJoin {
            build: Box::new(scan("f", None)),
            probe: Box::new(scan("d", None)),
            build_key: 0,
            probe_key: 1,
        };
        assert_ne!(signature(&j(0, 1)), signature(&swapped));
    }

    #[test]
    fn float_literals_hash_by_bits() {
        let a = scan("t", Some(Expr::Cmp { col: 0, op: CmpOp::Lt, lit: Value::Float(0.1) }));
        let b = scan("t", Some(Expr::Cmp { col: 0, op: CmpOp::Lt, lit: Value::Float(0.1) }));
        let c = scan("t", Some(Expr::Cmp { col: 0, op: CmpOp::Lt, lit: Value::Float(0.2) }));
        assert_eq!(signature(&a), signature(&b));
        assert_ne!(signature(&a), signature(&c));
    }

    #[test]
    fn expr_signature_discriminates_structure() {
        let a = Expr::And(vec![Expr::eq(0, 1i64), Expr::eq(1, 2i64)]);
        let b = Expr::And(vec![Expr::eq(1, 2i64), Expr::eq(0, 1i64)]);
        // order matters (SP requires identical predicates, not equivalent)
        assert_ne!(expr_signature(&a), expr_signature(&b));
        assert_ne!(
            expr_signature(&Expr::And(vec![])),
            expr_signature(&Expr::Or(vec![]))
        );
    }

    #[test]
    fn signature_is_stable_across_runs() {
        // Golden value: guards against accidental algorithm changes that
        // would silently break persisted experiment configs.
        let s = signature(&scan("lineorder", None));
        assert_eq!(s, signature(&scan("lineorder", None)));
        assert_ne!(s, 0);
    }
}
