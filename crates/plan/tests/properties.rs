//! Property-based tests for plan signatures and star detection:
//! signatures must be injective over meaningful structural edits (no
//! accidental sharing) and stable over clones (no missed sharing), and
//! star round-tripping must be lossless.

use proptest::prelude::*;
use qs_plan::{signature, AggFunc, AggSpec, CmpOp, Expr, LogicalPlan, StarQuery};
use qs_storage::{Catalog, DataType, Schema, TableBuilder, Value};


fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn leaf_expr(cols: usize) -> impl Strategy<Value = Expr> {
    (0..cols, cmp_op(), any::<i32>()).prop_map(|(c, op, lit)| Expr::Cmp {
        col: c,
        op,
        lit: Value::Int(lit as i64),
    })
}

fn expr(cols: usize) -> impl Strategy<Value = Expr> {
    leaf_expr(cols).prop_recursive(3, 12, 3, move |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Expr::And),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn plan(cols: usize) -> impl Strategy<Value = LogicalPlan> {
    let scan = prop::option::of(expr(cols)).prop_map(move |predicate| LogicalPlan::Scan {
        table: "t".into(),
        predicate,
        projection: None,
    });
    scan.prop_recursive(3, 8, 2, move |inner| {
        prop_oneof![
            (inner.clone(), expr(cols)).prop_map(|(p, e)| LogicalPlan::Filter {
                input: Box::new(p),
                predicate: e,
            }),
            (inner.clone(), prop::collection::vec(0..cols, 0..2)).prop_map(
                |(p, group_by)| LogicalPlan::Aggregate {
                    input: Box::new(p),
                    group_by,
                    aggs: vec![AggSpec::new(AggFunc::Count, "n")],
                }
            ),
            (inner, 0..cols, any::<bool>()).prop_map(|(p, c, asc)| LogicalPlan::Sort {
                input: Box::new(p),
                keys: vec![(c, asc)],
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Clones share signatures (no missed sharing).
    #[test]
    fn clone_has_same_signature(p in plan(4)) {
        prop_assert_eq!(signature(&p), signature(&p.clone()));
    }

    /// Changing any literal changes the signature (no false sharing, which
    /// would silently return another query's results).
    #[test]
    fn literal_edit_changes_signature(p in plan(4), delta in 1i64..1000) {
        fn bump_first_literal(e: &mut Expr, delta: i64) -> bool {
            match e {
                Expr::Cmp { lit: Value::Int(v), .. } => {
                    *v = v.wrapping_add(delta);
                    true
                }
                Expr::And(parts) | Expr::Or(parts) => {
                    parts.iter_mut().any(|p| bump_first_literal(p, delta))
                }
                Expr::Not(inner) => bump_first_literal(inner, delta),
                _ => false,
            }
        }
        fn bump_plan(p: &mut LogicalPlan, delta: i64) -> bool {
            match p {
                LogicalPlan::Scan { predicate, .. } => predicate
                    .as_mut()
                    .map(|e| bump_first_literal(e, delta))
                    .unwrap_or(false),
                LogicalPlan::Filter { input, predicate } => {
                    bump_first_literal(predicate, delta) || bump_plan(input, delta)
                }
                LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Distinct { input }
                | LogicalPlan::TopK { input, .. } => bump_plan(input, delta),
                LogicalPlan::HashJoin { build, probe, .. } => {
                    bump_plan(build, delta) || bump_plan(probe, delta)
                }
            }
        }
        let mut edited = p.clone();
        if bump_plan(&mut edited, delta) {
            prop_assert_ne!(signature(&p), signature(&edited));
        }
    }

    /// Wrapping in another operator always changes the signature.
    #[test]
    fn wrapping_changes_signature(p in plan(4)) {
        let wrapped = LogicalPlan::Limit {
            input: Box::new(p.clone()),
            n: 10,
        };
        prop_assert_ne!(signature(&p), signature(&wrapped));
    }
}

// Star round-trip over random star shapes with a concrete catalog.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn star_detection_roundtrips(
        n_dims in 1usize..4,
        preds in prop::collection::vec(prop::option::of((cmp_op(), 0i64..10)), 4),
        fact_pred in prop::option::of(0i64..100),
        group in 0usize..2,
    ) {
        let cat = Catalog::new();
        for d in 0..n_dims {
            let schema = Schema::from_pairs(&[("k", DataType::Int), ("a", DataType::Int)]);
            let mut b = TableBuilder::new(format!("d{d}"), schema);
            b.push_values(&[Value::Int(0), Value::Int(0)]).unwrap();
            cat.register(b);
        }
        let mut cols: Vec<qs_storage::Column> = (0..n_dims)
            .map(|d| qs_storage::Column::new(format!("fk{d}"), DataType::Int))
            .collect();
        cols.push(qs_storage::Column::new("val", DataType::Int));
        let schema = Schema::new(cols);
        let mut b = TableBuilder::new("fact", schema);
        b.push_values(
            &(0..=n_dims).map(|_| Value::Int(0)).collect::<Vec<_>>(),
        )
        .unwrap();
        cat.register(b);

        // Build: fact ⋈ d0 ⋈ d1 ... with per-dim predicates + aggregate.
        let mut cur = LogicalPlan::Scan {
            table: "fact".into(),
            predicate: fact_pred.map(|v| Expr::Cmp {
                col: n_dims,
                op: CmpOp::Ge,
                lit: Value::Int(v),
            }),
            projection: None,
        };
        for (d, pred) in preds.iter().take(n_dims).enumerate() {
            cur = LogicalPlan::HashJoin {
                build: Box::new(LogicalPlan::Scan {
                    table: format!("d{d}"),
                    predicate: pred.map(|(op, lit)| Expr::Cmp {
                        col: 1,
                        op,
                        lit: Value::Int(lit),
                    }),
                    projection: None,
                }),
                probe: Box::new(cur),
                build_key: 0,
                probe_key: d,
            };
        }
        let plan = LogicalPlan::Aggregate {
            input: Box::new(cur),
            group_by: vec![group],
            aggs: vec![AggSpec::new(AggFunc::Sum(n_dims), "s")],
        };

        let sq = StarQuery::detect(&plan, &cat).expect("must detect");
        prop_assert_eq!(sq.fact_table.as_str(), "fact");
        prop_assert_eq!(sq.dims.len(), n_dims);
        prop_assert_eq!(sq.to_plan(), plan);

        // join signature must be insensitive to the aggregate above...
        let mut other = sq.clone();
        other.above.clear();
        prop_assert_eq!(sq.join_signature(), other.join_signature());
        // ...but sensitive to dim predicates.
        if n_dims > 0 {
            let mut edited = sq.clone();
            edited.dims[0].predicate = Some(Expr::eq(1, 12345i64));
            prop_assert_ne!(sq.join_signature(), edited.join_signature());
        }
    }
}

// Expression evaluation agrees with a boolean model for And/Or/Not trees.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn expr_eval_matches_boolean_model(
        e in expr(2),
        v0 in any::<i32>(),
        v1 in any::<i32>(),
    ) {
        fn model(e: &Expr, row: &[i64]) -> bool {
            match e {
                Expr::Cmp { col, op, lit } => {
                    let l = row[*col];
                    let r = lit.as_int().unwrap();
                    op.matches(l.cmp(&r))
                }
                Expr::Between { col, lo, hi } => {
                    let v = row[*col];
                    v >= lo.as_int().unwrap() && v <= hi.as_int().unwrap()
                }
                Expr::InList { col, items } => {
                    items.iter().any(|i| i.as_int() == Some(row[*col]))
                }
                Expr::And(parts) => parts.iter().all(|p| model(p, row)),
                Expr::Or(parts) => parts.iter().any(|p| model(p, row)),
                Expr::Not(inner) => !model(inner, row),
                Expr::Const(b) => *b,
            }
        }
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let page = qs_storage::Page::from_values(
            &schema,
            &[vec![Value::Int(v0 as i64), Value::Int(v1 as i64)]],
        )
        .unwrap();
        let row = page.row(0);
        prop_assert_eq!(e.eval(&row), model(&e, &[v0 as i64, v1 as i64]));
    }
}
