//! Property-based equivalence of compiled predicates: on arbitrary
//! schemas, rows and predicate trees (including mistyped literals and
//! non-finite floats), `CompiledPred::eval_row` and
//! `CompiledPred::eval_batch` must agree with the tree-walking
//! `Expr::eval` on every row — the vectorized layer may be faster, never
//! different.

use proptest::prelude::*;
use qs_plan::{CmpOp, CompiledPred, Expr, PredScratch};
use qs_storage::{ColumnBatch, DataType, Page, Schema, Value};
use std::sync::Arc;

/// Literal/value pool for `Char` columns: short strings over a tiny
/// alphabet so equality and ranges actually hit.
const STRINGS: [&str; 8] = ["", "a", "ab", "abc", "b", "ba", "c", "zz"];

fn dtype() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Int),
        Just(DataType::Float),
        Just(DataType::Date),
        (1u16..6).prop_map(DataType::Char),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// One generic cell: seeds for every column type, narrowed by `dtype` at
/// build time. Small ranges keep predicates selective-but-not-empty.
type Cell = (i64, i64, u32, usize);

fn cell() -> impl Strategy<Value = Cell> {
    (-40i64..40, -400i64..=400, 19970101u32..19970160, 0usize..STRINGS.len())
}

/// Turn a cell into a `Value` of type `dt`. Float seed ±400 maps to the
/// non-finite values so `total_cmp` corner cases are exercised.
fn cell_value(dt: DataType, c: Cell) -> Value {
    match dt {
        DataType::Int => Value::Int(c.0),
        DataType::Float => Value::Float(match c.1 {
            400 => f64::NAN,
            -400 => f64::NEG_INFINITY,
            s => s as f64 / 4.0,
        }),
        DataType::Date => Value::Date(c.2),
        DataType::Char(n) => {
            let s = STRINGS[c.3];
            Value::Str(s[..s.len().min(n as usize)].to_string())
        }
    }
}

/// A literal of some type other than `dt` (the interpreter falls back to
/// type-rank comparison; compilation must fold identically).
fn mistyped_value(dt: DataType, c: Cell) -> Value {
    let other = match dt {
        DataType::Int => DataType::Float,
        DataType::Float => DataType::Date,
        DataType::Date => DataType::Char(3),
        DataType::Char(_) => DataType::Int,
    };
    cell_value(other, c)
}

fn leaf(dts: Vec<DataType>) -> BoxedStrategy<Expr> {
    let ncols = dts.len();
    (
        0..ncols,
        cmp_op(),
        cell(),
        cell(),
        prop::collection::vec(cell(), 0..4),
        0u8..8,
    )
        .prop_map(move |(col, op, c1, c2, items, kind)| {
            let dt = dts[col];
            match kind {
                // Well-typed comparison (the common case).
                0..=2 => Expr::Cmp {
                    col,
                    op,
                    lit: cell_value(dt, c1),
                },
                // Mistyped comparison: must fold to the interpreter's
                // type-rank constant.
                3 => Expr::Cmp {
                    col,
                    op,
                    lit: mistyped_value(dt, c1),
                },
                4 => Expr::Between {
                    col,
                    lo: cell_value(dt, c1),
                    hi: cell_value(dt, c2),
                },
                // Mixed-typed BETWEEN bounds (decomposed at compile time).
                5 => Expr::Between {
                    col,
                    lo: cell_value(dt, c1),
                    hi: mistyped_value(dt, c2),
                },
                6 => Expr::InList {
                    col,
                    items: items.iter().map(|&c| cell_value(dt, c)).collect(),
                },
                // IN with a mistyped (unreachable) item mixed in.
                _ => {
                    let mut vals: Vec<Value> =
                        items.iter().map(|&c| cell_value(dt, c)).collect();
                    vals.push(mistyped_value(dt, c1));
                    Expr::InList { col, items: vals }
                }
            }
        })
        .boxed()
}

fn expr(dts: Vec<DataType>) -> BoxedStrategy<Expr> {
    let base = prop_oneof![
        4 => leaf(dts),
        1 => prop_oneof![Just(Expr::Const(true)), Just(Expr::Const(false))],
    ]
    .boxed();
    base.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::And),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

/// One complete scenario: a schema, a pile of rows, a predicate tree.
#[derive(Debug, Clone)]
struct Scenario {
    schema: Arc<Schema>,
    rows: Vec<Vec<Value>>,
    expr: Expr,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    prop::collection::vec(dtype(), 1..5).prop_flat_map(|dts| {
        let schema = Schema::new(
            dts.iter()
                .enumerate()
                .map(|(i, &dt)| qs_storage::Column::new(format!("c{i}"), dt))
                .collect(),
        );
        // Per-column cell strategies generate whole rows element-wise.
        let row = dts.iter().map(|_| cell()).collect::<Vec<_>>();
        let rows = prop::collection::vec(row, 0..48);
        let dts2 = dts.clone();
        (rows, expr(dts.clone())).prop_map(move |(raw_rows, expr)| Scenario {
            schema: schema.clone(),
            rows: raw_rows
                .into_iter()
                .map(|r| {
                    r.into_iter()
                        .zip(&dts2)
                        .map(|(c, &dt)| cell_value(dt, c))
                        .collect()
                })
                .collect(),
            expr,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Row-wise and batch-wise compiled evaluation agree with the
    /// interpreter on every generated row.
    #[test]
    fn compiled_pred_equivalent_to_interpreter(sc in scenario()) {
        let page = Page::from_values(&sc.schema, &sc.rows).expect("rows fit one page");
        let compiled = CompiledPred::compile(&sc.expr, &sc.schema);

        // Batch over the page arena.
        let batch = ColumnBatch::from_page(&page, compiled.columns());
        let mut scratch = PredScratch::new();
        let mut mask: Vec<u64> = Vec::new();
        compiled.eval_batch(&batch, &mut scratch, &mut mask);

        // Batch over independently allocated row slices (the
        // dimension-admission path).
        let slices: Vec<&[u8]> = (0..page.rows()).map(|i| page.row(i).bytes()).collect();
        let row_batch = ColumnBatch::from_rows(&sc.schema, &slices, compiled.columns());
        let mut mask2: Vec<u64> = Vec::new();
        compiled.eval_batch(&row_batch, &mut scratch, &mut mask2);

        for (i, row) in page.iter().enumerate() {
            let want = sc.expr.eval(&row);
            prop_assert_eq!(
                compiled.eval_row(&row), want,
                "eval_row diverged at row {} for {:?}", i, &sc.expr
            );
            let got = mask[i / 64] & (1u64 << (i % 64)) != 0;
            prop_assert_eq!(
                got, want,
                "eval_batch (page) diverged at row {} for {:?}", i, &sc.expr
            );
            let got2 = mask2[i / 64] & (1u64 << (i % 64)) != 0;
            prop_assert_eq!(
                got2, want,
                "eval_batch (rows) diverged at row {} for {:?}", i, &sc.expr
            );
        }
        // No ghost bits past the last row.
        let set_bits = qs_plan::compiled::iter_ones(&mask).filter(|&b| b >= page.rows()).count();
        prop_assert_eq!(set_bits, 0);
    }

    /// The compiled program's column set matches the expression's.
    #[test]
    fn compiled_columns_match_referenced(sc in scenario()) {
        let compiled = CompiledPred::compile(&sc.expr, &sc.schema);
        prop_assert_eq!(compiled.columns().to_vec(), sc.expr.referenced_columns());
    }
}
