//! GroupTable oracle proptests — the lock on PR 5's tentpole.
//!
//! Every [`GroupTable`] tier (dense-int `FlatMap`, packed-`u128`,
//! byte-key fallback) must assign exactly the slots the pre-PR-5
//! byte-key `HashMap<Vec<u8>, u32>` registry would have assigned, in the
//! same first-touch order, on arbitrary schemas, keys and selections —
//! including `i64::MIN`/`MAX`, hash-collision-prone key sequences for
//! the open-addressing tiers, and empty/full selections.

use proptest::prelude::*;
use qs_engine::group::{GroupTable, GroupTier, RadixScratch};
use qs_storage::{DataType, FactBatch, Page, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// The byte-key oracle: the registry shape `run_aggregate` used before
/// the GroupTable swap. First-touch slot order by construction.
struct Oracle {
    spans: Vec<(usize, usize)>,
    lookup: HashMap<Vec<u8>, u32>,
    order: Vec<Vec<u8>>,
}

impl Oracle {
    fn new(group_by: &[usize], schema: &Schema) -> Oracle {
        Oracle {
            spans: group_by
                .iter()
                .map(|&c| (schema.offset(c), schema.dtype(c).width()))
                .collect(),
            lookup: HashMap::new(),
            order: Vec::new(),
        }
    }

    fn resolve(&mut self, page: &Page, rows: &[u32]) -> Vec<u32> {
        let data = page.raw();
        let rs = page.schema().row_size();
        rows.iter()
            .map(|&r| {
                let row = &data[r as usize * rs..(r as usize + 1) * rs];
                let mut key = Vec::new();
                for &(off, w) in &self.spans {
                    key.extend_from_slice(&row[off..off + w]);
                }
                match self.lookup.get(&key) {
                    Some(&s) => s,
                    None => {
                        let s = self.order.len() as u32;
                        self.order.push(key.clone());
                        self.lookup.insert(key, s);
                        s
                    }
                }
            })
            .collect()
    }
}

/// One random column shape per tier family. The value pools include the
/// adversarial corners: `i64::MIN`/`MAX` (sign/byte-order bugs), strided
/// sequences (open-addressing clustering), and duplicate-heavy domains
/// (slot reuse).
#[derive(Debug, Clone)]
struct Shape {
    columns: Vec<DataType>,
    group_by: Vec<usize>,
    expect: GroupTier,
}

fn shapes() -> Vec<Shape> {
    vec![
        // Tier a: single Int group column (with a decoy column around it).
        Shape {
            columns: vec![DataType::Int, DataType::Int],
            group_by: vec![1],
            expect: GroupTier::DenseInt,
        },
        // Tier b: two Ints = exactly 16 bytes.
        Shape {
            columns: vec![DataType::Int, DataType::Int],
            group_by: vec![0, 1],
            expect: GroupTier::Packed,
        },
        // Tier b: mixed narrow widths (Date + Char(3) = 7 bytes),
        // group-by out of schema order.
        Shape {
            columns: vec![DataType::Char(3), DataType::Int, DataType::Date],
            group_by: vec![2, 0],
            expect: GroupTier::Packed,
        },
        // Tier b: single non-Int column (Date, 4 bytes).
        Shape {
            columns: vec![DataType::Date, DataType::Int],
            group_by: vec![0],
            expect: GroupTier::Packed,
        },
        // Tier c: wide Char key.
        Shape {
            columns: vec![DataType::Char(20), DataType::Int],
            group_by: vec![0],
            expect: GroupTier::ByteKey,
        },
        // Tier c: three Ints = 24 bytes, one past the packed boundary.
        Shape {
            columns: vec![DataType::Int, DataType::Int, DataType::Int],
            group_by: vec![0, 1, 2],
            expect: GroupTier::ByteKey,
        },
        // Tier b edge: Float takes the packed path too (raw-byte keys).
        Shape {
            columns: vec![DataType::Float, DataType::Date],
            group_by: vec![0, 1],
            expect: GroupTier::Packed,
        },
    ]
}

/// A value for `dtype` drawn from a small adversarial pool indexed by
/// `pick` — small domains maximize both duplicates and fresh groups.
fn value_for(dtype: DataType, pick: u64) -> Value {
    match dtype {
        DataType::Int => {
            // Pool: corners, strided keys (multiples of a power of two —
            // the classic open-addressing clustering pattern), and a
            // dense small domain.
            let corners = [i64::MIN, i64::MAX, -1, 0, 1, i64::MIN + 1];
            match pick % 3 {
                0 => Value::Int(corners[(pick / 3) as usize % corners.len()]),
                1 => Value::Int(((pick / 3) as i64 % 9) << 32),
                _ => Value::Int((pick / 3) as i64 % 7),
            }
        }
        DataType::Float => {
            let pool = [0.0f64, -0.0, 1.5, -1.5, f64::MAX, f64::MIN_POSITIVE];
            Value::Float(pool[pick as usize % pool.len()])
        }
        DataType::Date => Value::Date(19970101 + (pick as u32 % 11)),
        DataType::Char(n) => {
            // Distinct strings incl. empty (all-padding) and max-width.
            let i = pick % 6;
            let s = match i {
                0 => String::new(),
                1 => "a".repeat(n as usize),
                _ => format!("k{}", i),
            };
            Value::Str(s)
        }
    }
}

fn build_page(shape: &Shape, picks: &[Vec<u64>]) -> (Arc<Schema>, Page) {
    let schema = Schema::new(
        shape
            .columns
            .iter()
            .enumerate()
            .map(|(i, &dt)| qs_storage::Column::new(format!("c{i}"), dt))
            .collect(),
    );
    let rows: Vec<Vec<Value>> = picks
        .iter()
        .map(|row| {
            row.iter()
                .zip(&shape.columns)
                .map(|(&p, &dt)| value_for(dt, p))
                .collect()
        })
        .collect();
    let page = Page::from_values(&schema, &rows).unwrap();
    (schema, page)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All tiers match the byte-key oracle: identical slot assignment
    /// AND identical first-touch ordering, across multiple batches
    /// against one long-lived table, on arbitrary selections.
    #[test]
    fn tiers_match_bytekey_oracle(
        shape_idx in 0usize..7,
        batches in prop::collection::vec(
            prop::collection::vec(
                prop::collection::vec(any::<u64>(), 1..4), // one row: ≤3 col picks
                0..40,                                      // rows per page
            ),
            1..4,                                           // pages per run
        ),
        sel_mode in 0u8..3,
    ) {
        let shape = shapes()[shape_idx].clone();
        let (probe_schema, _) = build_page(&shape, &[vec![0; shape.columns.len()]]);
        let mut table = GroupTable::compile(&shape.group_by, &probe_schema);
        prop_assert_eq!(table.tier(), shape.expect, "shape {:?}", &shape);
        let mut oracle: Option<Oracle> = None;
        let mut slots = Vec::new();
        for picks in &batches {
            // Normalize row width to the schema's column count.
            let picks: Vec<Vec<u64>> = picks
                .iter()
                .map(|r| {
                    (0..shape.columns.len())
                        .map(|c| r.get(c).copied().unwrap_or(c as u64))
                        .collect()
                })
                .collect();
            let (schema, page) = build_page(&shape, &picks);
            let oracle = oracle.get_or_insert_with(|| Oracle::new(&shape.group_by, &schema));
            // Selection: empty, full, or every-other-row.
            let rows: Vec<u32> = match sel_mode {
                0 => Vec::new(),
                1 => (0..page.rows() as u32).collect(),
                _ => (0..page.rows() as u32).step_by(2).collect(),
            };
            let expect = oracle.resolve(&page, &rows);
            table.resolve_rows(&page, &rows, &mut slots);
            prop_assert_eq!(&slots, &expect, "slot assignment diverged");
            prop_assert_eq!(table.len(), oracle.order.len(), "group count diverged");
            for (g, key) in oracle.order.iter().enumerate() {
                prop_assert_eq!(
                    table.key_bytes(g), &key[..],
                    "first-touch key order diverged at slot {}", g
                );
            }
        }
    }

    /// `resolve_batch` over a FactBatch selection equals `resolve_rows`
    /// over the same rows (the engine-facing entry point adds nothing).
    #[test]
    fn resolve_batch_equals_resolve_rows(
        shape_idx in 0usize..7,
        picks in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 3..4), 1..40),
        keep in prop::collection::vec(any::<bool>(), 40),
    ) {
        let shape = shapes()[shape_idx].clone();
        let picks: Vec<Vec<u64>> = picks
            .iter()
            .map(|r| (0..shape.columns.len())
                .map(|c| r.get(c).copied().unwrap_or(0))
                .collect())
            .collect();
        let (_, page) = build_page(&shape, &picks);
        let page = Arc::new(page);
        let sel: Vec<u32> =
            (0..page.rows() as u32).filter(|&r| keep[r as usize]).collect();
        let fb = FactBatch::new(page.clone(), sel.clone(), Vec::new());

        let mut via_batch = GroupTable::compile(&shape.group_by, page.schema());
        let mut a = Vec::new();
        via_batch.resolve_batch(&fb, &mut a);

        let mut via_rows = GroupTable::compile(&shape.group_by, page.schema());
        let mut b = Vec::new();
        via_rows.resolve_rows(&page, &sel, &mut b);

        prop_assert_eq!(a, b);
        prop_assert_eq!(via_batch.len(), via_rows.len());
    }

    /// The radix layout is a true partition: every row lands in exactly
    /// one bucket, and rows with equal group keys share a bucket — the
    /// invariant parallel resolution will rely on.
    #[test]
    fn radix_partition_partitions_by_key(
        shape_idx in 0usize..7,
        picks in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 3..4), 0..60),
    ) {
        let shape = shapes()[shape_idx].clone();
        let picks: Vec<Vec<u64>> = picks
            .iter()
            .map(|r| (0..shape.columns.len())
                .map(|c| r.get(c).copied().unwrap_or(0))
                .collect())
            .collect();
        if picks.is_empty() {
            return Ok(());
        }
        let (schema, page) = build_page(&shape, &picks);
        let table = GroupTable::compile(&shape.group_by, &schema);
        let rows: Vec<u32> = (0..page.rows() as u32).collect();
        let mut scratch = RadixScratch::new();
        table.radix_partition(&page, &rows, &mut scratch);

        let mut seen: Vec<u32> = scratch.buckets.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, rows, "buckets must cover each row exactly once");

        let mut oracle = Oracle::new(&shape.group_by, &schema);
        let mut key_bucket: HashMap<Vec<u8>, usize> = HashMap::new();
        for (b, bucket) in scratch.buckets.iter().enumerate() {
            for &r in bucket {
                let slot = oracle.resolve(&page, &[r])[0];
                let key = oracle.order[slot as usize].clone();
                if let Some(&prev) = key_bucket.get(&key) {
                    prop_assert_eq!(prev, b, "equal keys split across buckets");
                } else {
                    key_bucket.insert(key, b);
                }
            }
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// PR 8's lock: parallel bucket resolution + renumbering equals the
    /// single-threaded `resolve_rows` slot-for-slot — same assignment,
    /// same first-touch intern order, same key bytes — on every tier,
    /// across consecutive batches against a long-lived table (so the
    /// merge runs against a pre-populated main table too), at several
    /// pool widths. Batches are sized past [`PARALLEL_MIN_ROWS`] so the
    /// fan-out path genuinely executes (asserted via `pool_tasks`).
    #[test]
    fn parallel_resolution_matches_sequential_slot_for_slot(
        shape_idx in 0usize..7,
        seeds in prop::collection::vec(any::<u64>(), 1..3),
        extra in 0usize..300,
        workers in 2usize..5,
    ) {
        let shape = shapes()[shape_idx].clone();
        let n = qs_engine::PARALLEL_MIN_ROWS + extra;
        let metrics = qs_engine::Metrics::new();
        let pool = qs_engine::WorkerPool::new(workers, metrics.clone());

        let (probe_schema, _) = build_page(&shape, &[vec![0; shape.columns.len()]]);
        let mut seq = GroupTable::compile(&shape.group_by, &probe_schema);
        let mut par = GroupTable::compile(&shape.group_by, &probe_schema);
        let mut pscratch = qs_engine::ParallelScratch::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for &seed in &seeds {
            let picks: Vec<Vec<u64>> = (0..n as u64)
                .map(|i| {
                    (0..shape.columns.len() as u64)
                        .map(|c| splitmix(seed ^ splitmix(i ^ (c << 40))))
                        .collect()
                })
                .collect();
            let (_, page) = build_page(&shape, &picks);
            let rows: Vec<u32> = (0..page.rows() as u32).collect();
            seq.resolve_rows(&page, &rows, &mut a);
            par.resolve_rows_parallel(&page, &rows, &pool, &mut pscratch, &mut b)
                .expect("no faults armed");
            prop_assert_eq!(&a, &b, "slot assignment diverged (workers {})", workers);
            prop_assert_eq!(seq.len(), par.len(), "group count diverged");
            for g in 0..seq.len() {
                prop_assert_eq!(
                    seq.key_bytes(g), par.key_bytes(g),
                    "first-touch key order diverged at slot {}", g
                );
            }
        }
        prop_assert!(
            metrics.snapshot().pool_tasks > 0,
            "the parallel path never fanned out"
        );
    }
}

/// Deterministic corner: a long strided i64 sequence (every key hits a
/// different multiple of 2^32) plus the extremes, resolved in one batch —
/// the dense-int tier must intern them all distinctly and in order.
#[test]
fn dense_int_adversarial_keys() {
    let schema = Schema::from_pairs(&[("g", DataType::Int)]);
    let mut keys: Vec<i64> = (0..2_000i64).map(|i| i << 32).collect();
    keys.push(i64::MIN);
    keys.push(i64::MAX);
    keys.push(i64::MIN + 1);
    let rows: Vec<Vec<Value>> = keys.iter().map(|&k| vec![Value::Int(k)]).collect();
    let page = Page::from_values(&schema, &rows).unwrap();
    let all: Vec<u32> = (0..page.rows() as u32).collect();

    let mut table = GroupTable::compile(&[0], &schema);
    assert_eq!(table.tier(), GroupTier::DenseInt);
    let mut slots = Vec::new();
    table.resolve_rows(&page, &all, &mut slots);
    // All keys distinct → slots are exactly first-touch order 0..n.
    assert_eq!(slots, all);
    assert_eq!(table.len(), keys.len());
    for (g, &k) in keys.iter().enumerate() {
        assert_eq!(table.key_bytes(g), &k.to_le_bytes());
    }
    // A second pass resolves identically without growing the table.
    table.resolve_rows(&page, &all, &mut slots);
    assert_eq!(slots, all);
    assert_eq!(table.len(), keys.len());
}

/// Deterministic corner: packed tier with a key of exactly 16 bytes
/// whose halves collide pairwise (same low half, different high half and
/// vice versa) — u128 packing must keep them distinct.
#[test]
fn packed_boundary_and_half_collisions() {
    let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
    let pairs: [(i64, i64); 6] = [
        (0, 0),
        (0, 1),
        (1, 0),
        (i64::MIN, i64::MAX),
        (i64::MAX, i64::MIN),
        (0, 0), // dup of the first
    ];
    let rows: Vec<Vec<Value>> = pairs
        .iter()
        .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
        .collect();
    let page = Page::from_values(&schema, &rows).unwrap();
    let mut table = GroupTable::compile(&[0, 1], &schema);
    assert_eq!(table.tier(), GroupTier::Packed);
    let mut slots = Vec::new();
    table.resolve_rows(&page, &(0..6).collect::<Vec<_>>(), &mut slots);
    assert_eq!(slots, vec![0, 1, 2, 3, 4, 0]);
    assert_eq!(table.len(), 5);
}

/// Empty selection interns nothing on any tier; full selection equals
/// the oracle (smoke-level duplicate of the property, kept cheap and
/// deterministic for `cargo test` greps).
#[test]
fn empty_and_full_selections() {
    for shape in shapes() {
        let picks: Vec<Vec<u64>> = (0..16u64)
            .map(|i| (0..shape.columns.len() as u64).map(|c| i * 3 + c).collect())
            .collect();
        let (schema, page) = build_page(&shape, &picks);
        let mut table = GroupTable::compile(&shape.group_by, &schema);
        let mut slots = Vec::new();
        table.resolve_rows(&page, &[], &mut slots);
        assert!(slots.is_empty());
        assert!(table.is_empty(), "{:?}", shape.expect);

        let all: Vec<u32> = (0..page.rows() as u32).collect();
        let mut oracle = Oracle::new(&shape.group_by, &schema);
        let expect = oracle.resolve(&page, &all);
        table.resolve_rows(&page, &all, &mut slots);
        assert_eq!(slots, expect, "{:?}", shape.expect);
    }
}
