//! Property-based tests for the engine's sharing machinery and operators:
//! SPL delivery under arbitrary interleavings, hub fan-out equivalence,
//! and mode-invariance of random plans against the reference evaluator.

use proptest::prelude::*;
use qs_engine::reference::{assert_rows_match, eval};
use qs_engine::{
    BatchSource, EngineBatch, EngineConfig, QpipeEngine, ShareMode, SharedPagesList,
    SharingPolicy,
};
use qs_plan::{AggFunc, AggSpec, CmpOp, Expr, LogicalPlan};
use qs_storage::{
    BufferPool, BufferPoolConfig, Catalog, DataType, DiskConfig, DiskModel, FactBatch, Page,
    Schema, TableBuilder, Value,
};
use std::sync::Arc;

fn batch(k: i64) -> EngineBatch {
    let s = Schema::from_pairs(&[("k", DataType::Int)]);
    let page: Arc<Page> =
        Arc::new(Page::from_values(&s, &[vec![Value::Int(k)]]).unwrap());
    Arc::new(FactBatch::all(page))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever schedule of appends and reads happens, every SPL consumer
    /// sees exactly the appended sequence.
    #[test]
    fn spl_consumers_always_see_the_full_stream(
        n_pages in 1usize..50,
        n_readers in 1usize..6,
        // per-reader random "work" injected between reads
        delays in prop::collection::vec(0u64..50, 6),
    ) {
        let spl = SharedPagesList::new();
        let readers: Vec<_> = (0..n_readers).map(|_| spl.reader()).collect();
        let producer = {
            let spl = spl.clone();
            std::thread::spawn(move || {
                for i in 0..n_pages {
                    spl.append(batch(i as i64)).unwrap();
                }
                spl.finish();
            })
        };
        let handles: Vec<_> = readers
            .into_iter()
            .enumerate()
            .map(|(r, mut reader)| {
                let spin = delays[r % delays.len()];
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(b) = reader.next_batch().unwrap() {
                        got.push(b.page().row(0).i64_col(0));
                        for _ in 0..spin {
                            std::hint::spin_loop();
                        }
                    }
                    got
                })
            })
            .collect();
        producer.join().unwrap();
        let expect: Vec<i64> = (0..n_pages as i64).collect();
        for h in handles {
            prop_assert_eq!(h.join().unwrap(), expect.clone());
        }
    }

    /// A random single-table plan (filter + aggregate) returns the
    /// oracle's answer under every sharing configuration, submitted as a
    /// concurrent batch.
    #[test]
    fn random_plans_are_mode_invariant(
        rows in prop::collection::vec((any::<i16>(), 0i64..8), 1..300),
        threshold in any::<i16>(),
        op in prop_oneof![Just(CmpOp::Lt), Just(CmpOp::Ge), Just(CmpOp::Eq)],
        k in 1usize..4,
    ) {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("v", DataType::Int), ("g", DataType::Int)]);
        let mut b = TableBuilder::with_page_bytes("t", schema, 64);
        for (v, g) in &rows {
            b.push_values(&[Value::Int(*v as i64), Value::Int(*g)]).unwrap();
        }
        catalog.register(b);

        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Scan {
                table: "t".into(),
                predicate: Some(Expr::Cmp {
                    col: 0,
                    op,
                    lit: Value::Int(threshold as i64),
                }),
                projection: None,
            }),
            group_by: vec![1],
            aggs: vec![
                AggSpec::new(AggFunc::Sum(0), "s"),
                AggSpec::new(AggFunc::Count, "n"),
                AggSpec::new(AggFunc::Min(0), "mn"),
                AggSpec::new(AggFunc::Max(0), "mx"),
            ],
        };
        let expected = eval(&plan, &catalog).unwrap();

        for sharing in [
            SharingPolicy::query_centric(),
            SharingPolicy::all_stages(ShareMode::Push),
            SharingPolicy::all_stages(ShareMode::Pull),
        ] {
            let pool = Arc::new(BufferPool::new(
                BufferPoolConfig::unbounded(),
                Arc::new(DiskModel::new(DiskConfig::memory_resident())),
            ));
            let engine = QpipeEngine::new(
                catalog.clone(),
                pool,
                EngineConfig {
                    out_page_bytes: 64,
                    fifo_capacity: 2,
                    sharing,
                    ..Default::default()
                },
            );
            let tickets = engine.submit_batch(&vec![plan.clone(); k]).unwrap();
            for t in tickets {
                assert_rows_match(t.collect_rows().unwrap(), expected.clone(), 1e-9);
            }
        }
    }

    /// Random sort keys: engine sort output is totally ordered per keys
    /// and is a permutation of the input.
    #[test]
    fn sort_is_a_correct_permutation(
        rows in prop::collection::vec((any::<i8>(), any::<i8>()), 1..200),
        asc0 in any::<bool>(),
        asc1 in any::<bool>(),
    ) {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let mut b = TableBuilder::with_page_bytes("t", schema, 48);
        for (a, bb) in &rows {
            b.push_values(&[Value::Int(*a as i64), Value::Int(*bb as i64)]).unwrap();
        }
        catalog.register(b);
        let plan = LogicalPlan::Sort {
            input: Box::new(LogicalPlan::Scan {
                table: "t".into(),
                predicate: None,
                projection: None,
            }),
            keys: vec![(0, asc0), (1, asc1)],
        };
        let pool = Arc::new(BufferPool::new(
            BufferPoolConfig::unbounded(),
            Arc::new(DiskModel::new(DiskConfig::memory_resident())),
        ));
        let engine = QpipeEngine::new(catalog.clone(), pool, EngineConfig {
            out_page_bytes: 48,
            ..Default::default()
        });
        let got = engine.submit(&plan).unwrap().collect_rows().unwrap();
        prop_assert_eq!(got.len(), rows.len());
        // ordered per keys
        for w in got.windows(2) {
            let (a0, b0) = (w[0][0].as_int().unwrap(), w[0][1].as_int().unwrap());
            let (a1, b1) = (w[1][0].as_int().unwrap(), w[1][1].as_int().unwrap());
            let c0 = if asc0 { a0.cmp(&a1) } else { a1.cmp(&a0) };
            let ord = c0.then(if asc1 { b0.cmp(&b1) } else { b1.cmp(&b0) });
            prop_assert_ne!(ord, std::cmp::Ordering::Greater);
        }
        // permutation of the input
        let mut got_pairs: Vec<(i64, i64)> = got
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        let mut want: Vec<(i64, i64)> =
            rows.iter().map(|(a, b)| (*a as i64, *b as i64)).collect();
        got_pairs.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got_pairs, want);
    }

    /// Limit returns exactly min(n, rows) rows, a prefix-compatible subset.
    #[test]
    fn limit_bounds_rows(
        n_rows in 0usize..100,
        limit in 0usize..120,
    ) {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let mut b = TableBuilder::with_page_bytes("t", schema, 32);
        for i in 0..n_rows {
            b.push_values(&[Value::Int(i as i64)]).unwrap();
        }
        catalog.register(b);
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Scan {
                table: "t".into(),
                predicate: None,
                projection: None,
            }),
            n: limit,
        };
        let pool = Arc::new(BufferPool::new(
            BufferPoolConfig::unbounded(),
            Arc::new(DiskModel::new(DiskConfig::memory_resident())),
        ));
        let engine = QpipeEngine::new(catalog.clone(), pool, EngineConfig {
            out_page_bytes: 32,
            ..Default::default()
        });
        let got = engine.submit(&plan).unwrap().collect_rows().unwrap();
        prop_assert_eq!(got.len(), limit.min(n_rows));
    }
}

/// One non-proptest regression: a BatchSource chain across push and pull
/// hubs must interoperate (pull producer feeding push consumer).
#[test]
fn mixed_mode_plan_works() {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("v", DataType::Int)]);
    let mut b = TableBuilder::with_page_bytes("t", schema, 32);
    for i in 0..50 {
        b.push_values(&[Value::Int(i)]).unwrap();
    }
    catalog.register(b);
    // Scan shares (pull), aggregate does not (push FIFO).
    let plan = LogicalPlan::Aggregate {
        input: Box::new(LogicalPlan::Scan {
            table: "t".into(),
            predicate: None,
            projection: None,
        }),
        group_by: vec![],
        aggs: vec![AggSpec::new(AggFunc::Sum(0), "s")],
    };
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::unbounded(),
        Arc::new(DiskModel::new(DiskConfig::memory_resident())),
    ));
    let engine = QpipeEngine::new(
        catalog.clone(),
        pool,
        EngineConfig {
            sharing: SharingPolicy::scan_only(ShareMode::Pull),
            out_page_bytes: 32,
            ..Default::default()
        },
    );
    let tickets = engine.submit_batch(&vec![plan.clone(); 3]).unwrap();
    for t in tickets {
        let rows = t.collect_rows().unwrap();
        assert_eq!(rows, vec![vec![Value::Int((0..50).sum())]]);
    }
    assert_eq!(engine.metrics().sp_hits[qs_engine::StageKind::Scan as usize], 2);
}
