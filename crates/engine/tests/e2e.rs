//! End-to-end engine tests: every execution configuration must produce the
//! oracle's answer, and the sharing machinery must behave as the paper
//! describes (SP hits, copies vs shares, window semantics).

use qs_engine::reference::{assert_rows_match, eval};
use qs_engine::{
    EngineConfig, QpipeEngine, ShareMode, SharingPolicy, StageKind,
};
use qs_plan::LogicalPlan;
use qs_storage::{BufferPool, BufferPoolConfig, Catalog, DiskConfig, DiskModel};
use qs_workload::ssb::data::{generate_ssb, SsbConfig};
use qs_workload::ssb::queries::{SsbTemplate, TemplateParams};
use qs_workload::{generate_lineitem, tpch_q1_plan, TpchConfig};
use std::sync::Arc;

fn ssb_catalog() -> Arc<Catalog> {
    let cat = Catalog::new();
    generate_ssb(
        &cat,
        &SsbConfig {
            scale: 0.001,
            seed: 21,
            page_bytes: 8 * 1024,
            ..Default::default()
        },
    );
    cat
}

fn engine(catalog: &Arc<Catalog>, sharing: SharingPolicy) -> QpipeEngine {
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::unbounded(),
        Arc::new(DiskModel::new(DiskConfig::memory_resident())),
    ));
    QpipeEngine::new(
        catalog.clone(),
        pool,
        EngineConfig {
            out_page_bytes: 4 * 1024,
            fifo_capacity: 4,
            sharing,
            ..Default::default()
        },
    )
}

fn run_and_check(engine: &QpipeEngine, catalog: &Catalog, plan: &LogicalPlan) {
    let expected = eval(plan, catalog).unwrap();
    let got = engine.submit(plan).unwrap().collect_rows().unwrap();
    assert_rows_match(got, expected, 1e-9);
}

#[test]
fn all_ssb_templates_query_centric_match_oracle() {
    let cat = ssb_catalog();
    let eng = engine(&cat, SharingPolicy::query_centric());
    for t in SsbTemplate::all() {
        let plan = t.plan(&cat, &TemplateParams::variant(2)).unwrap();
        let expected = eval(&plan, &cat).unwrap();
        let got = eng.submit(&plan).unwrap().collect_rows().unwrap();
        assert!(!expected.is_empty() || got.is_empty(), "{}", t.name());
        assert_rows_match(got, expected, 1e-9);
    }
}

#[test]
fn all_ssb_templates_full_sharing_pull_match_oracle() {
    let cat = ssb_catalog();
    let eng = engine(&cat, SharingPolicy::all_stages(ShareMode::Pull));
    for t in SsbTemplate::all() {
        let plan = t.plan(&cat, &TemplateParams::variant(1)).unwrap();
        run_and_check(&eng, &cat, &plan);
    }
}

#[test]
fn tpch_q1_all_modes_match_oracle() {
    let cat = Catalog::new();
    generate_lineitem(
        &cat,
        &TpchConfig {
            scale: 0.002,
            seed: 5,
            page_bytes: 8 * 1024,
            ..Default::default()
        },
    );
    let plan = tpch_q1_plan(&cat, qs_workload::tpch::Q1_CUTOFF).unwrap();
    for sharing in [
        SharingPolicy::query_centric(),
        SharingPolicy::scan_only(ShareMode::Push),
        SharingPolicy::scan_only(ShareMode::Pull),
        SharingPolicy::all_stages(ShareMode::Push),
        SharingPolicy::all_stages(ShareMode::Pull),
    ] {
        let eng = engine(&cat, sharing);
        run_and_check(&eng, &cat, &plan);
    }
}

#[test]
fn batch_of_identical_q1_shares_scan_pull() {
    let cat = Catalog::new();
    generate_lineitem(
        &cat,
        &TpchConfig {
            scale: 0.002,
            seed: 5,
            page_bytes: 8 * 1024,
            ..Default::default()
        },
    );
    let plan = tpch_q1_plan(&cat, qs_workload::tpch::Q1_CUTOFF).unwrap();
    let expected = eval(&plan, &cat).unwrap();
    let eng = engine(&cat, SharingPolicy::scan_only(ShareMode::Pull));

    let k = 6;
    let plans = vec![plan; k];
    let tickets = eng.submit_batch(&plans).unwrap();
    for t in tickets {
        assert_rows_match(t.collect_rows().unwrap(), expected.clone(), 1e-9);
    }
    let m = eng.metrics();
    assert_eq!(m.sp_hits_for(StageKind::Scan), (k - 1) as u64);
    assert_eq!(m.pages_copied, 0, "pull mode never copies");
    assert!(m.pages_shared > 0);
    // only one scan packet was dispatched
    assert_eq!(m.packets[StageKind::Scan as usize], 1);
    // but k aggregation packets (scan-only sharing)
    assert_eq!(m.packets[StageKind::Aggregate as usize], k as u64);
}

#[test]
fn batch_of_identical_q1_shares_scan_push_with_copies() {
    let cat = Catalog::new();
    generate_lineitem(
        &cat,
        &TpchConfig {
            scale: 0.002,
            seed: 5,
            page_bytes: 8 * 1024,
            ..Default::default()
        },
    );
    let plan = tpch_q1_plan(&cat, qs_workload::tpch::Q1_CUTOFF).unwrap();
    let expected = eval(&plan, &cat).unwrap();
    let eng = engine(&cat, SharingPolicy::scan_only(ShareMode::Push));

    let k = 4;
    let tickets = eng.submit_batch(&vec![plan; k]).unwrap();
    for t in tickets {
        assert_rows_match(t.collect_rows().unwrap(), expected.clone(), 1e-9);
    }
    let m = eng.metrics();
    assert_eq!(m.sp_hits_for(StageKind::Scan), (k - 1) as u64);
    assert!(
        m.pages_copied > 0,
        "push mode pays one copy per extra consumer"
    );
    // every produced page is copied k-1 times
    assert_eq!(m.pages_copied % (k as u64 - 1), 0);
}

#[test]
fn full_sharing_shares_whole_plan() {
    let cat = ssb_catalog();
    let eng = engine(&cat, SharingPolicy::all_stages(ShareMode::Pull));
    let plan = SsbTemplate::Q2_1
        .plan(&cat, &TemplateParams::variant(0))
        .unwrap();
    let expected = eval(&plan, &cat).unwrap();
    let tickets = eng.submit_batch(&vec![plan; 3]).unwrap();
    for t in tickets {
        assert_rows_match(t.collect_rows().unwrap(), expected.clone(), 1e-9);
    }
    let m = eng.metrics();
    // The top-level sort is shared, so each stage ran exactly one packet.
    assert_eq!(m.packets[StageKind::Sort as usize], 1);
    assert_eq!(m.sp_hits_for(StageKind::Sort), 2);
}

#[test]
fn different_predicates_do_not_share() {
    let cat = ssb_catalog();
    let eng = engine(&cat, SharingPolicy::all_stages(ShareMode::Pull));
    let a = SsbTemplate::Q1_1
        .plan(&cat, &TemplateParams::variant(0))
        .unwrap();
    let b = SsbTemplate::Q1_1
        .plan(&cat, &TemplateParams::variant(3))
        .unwrap();
    assert_ne!(qs_plan::signature(&a), qs_plan::signature(&b));
    let tickets = eng.submit_batch(&[a.clone(), b.clone()]).unwrap();
    let expected_a = eval(&a, &cat).unwrap();
    let expected_b = eval(&b, &cat).unwrap();
    let mut results = tickets
        .into_iter()
        .map(|t| t.collect_rows().unwrap())
        .collect::<Vec<_>>();
    assert_rows_match(results.remove(0), expected_a, 1e-9);
    assert_rows_match(results.remove(0), expected_b, 1e-9);
    // Scans of lineorder differ (predicates), but the dimension scan of
    // `date` with different predicates differs too — so zero scan hits.
    assert_eq!(eng.metrics().sp_hits_for(StageKind::Scan), 0);
}

#[test]
fn sequential_submission_shares_in_pull_mode_while_in_flight() {
    // Without batching, pull-mode SP can still attach mid-stream.
    let cat = Catalog::new();
    generate_lineitem(
        &cat,
        &TpchConfig {
            scale: 0.005,
            seed: 5,
            page_bytes: 4 * 1024,
            ..Default::default()
        },
    );
    let plan = tpch_q1_plan(&cat, qs_workload::tpch::Q1_CUTOFF).unwrap();
    let expected = eval(&plan, &cat).unwrap();
    let eng = engine(&cat, SharingPolicy::scan_only(ShareMode::Pull));
    // Submit one query, then immediately another while the first is
    // (very likely) still scanning; both must be correct regardless of
    // whether the second one attached or ran its own scan.
    let t1 = eng.submit(&plan).unwrap();
    let t2 = eng.submit(&plan).unwrap();
    assert_rows_match(t1.collect_rows().unwrap(), expected.clone(), 1e-9);
    assert_rows_match(t2.collect_rows().unwrap(), expected, 1e-9);
}

#[test]
fn cancellation_of_one_consumer_does_not_break_others() {
    let cat = Catalog::new();
    generate_lineitem(
        &cat,
        &TpchConfig {
            scale: 0.002,
            seed: 5,
            page_bytes: 4 * 1024,
            ..Default::default()
        },
    );
    let plan = tpch_q1_plan(&cat, qs_workload::tpch::Q1_CUTOFF).unwrap();
    let expected = eval(&plan, &cat).unwrap();
    let eng = engine(&cat, SharingPolicy::scan_only(ShareMode::Pull));
    let mut tickets = eng.submit_batch(&vec![plan; 3]).unwrap();
    // Cancel one mid-stream (paper Fig. 1a: the attached query cancels).
    let cancelled = tickets.remove(1);
    drop(cancelled);
    for t in tickets {
        assert_rows_match(t.collect_rows().unwrap(), expected.clone(), 1e-9);
    }
}

#[test]
fn core_governor_does_not_change_results() {
    let cat = ssb_catalog();
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::unbounded(),
        Arc::new(DiskModel::new(DiskConfig::memory_resident())),
    ));
    let eng = QpipeEngine::new(
        cat.clone(),
        pool,
        EngineConfig {
            cores: 2,
            out_page_bytes: 4 * 1024,
            sharing: SharingPolicy::all_stages(ShareMode::Pull),
            ..Default::default()
        },
    );
    let plan = SsbTemplate::Q3_2
        .plan(&cat, &TemplateParams::variant(0))
        .unwrap();
    let expected = eval(&plan, &cat).unwrap();
    let tickets = eng.submit_batch(&vec![plan; 4]).unwrap();
    for t in tickets {
        assert_rows_match(t.collect_rows().unwrap(), expected.clone(), 1e-9);
    }
    assert!(eng.metrics().busy_nanos > 0);
}

#[test]
fn disk_resident_execution_matches_and_counts_io() {
    let cat = ssb_catalog();
    let disk = Arc::new(DiskModel::new(DiskConfig {
        spindles: 2,
        latency: std::time::Duration::from_micros(80),
    }));
    let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_capacity(16), disk));
    let eng = QpipeEngine::new(
        cat.clone(),
        pool.clone(),
        EngineConfig {
            out_page_bytes: 4 * 1024,
            sharing: SharingPolicy::query_centric(),
            ..Default::default()
        },
    );
    let plan = SsbTemplate::Q1_1
        .plan(&cat, &TemplateParams::variant(0))
        .unwrap();
    let expected = eval(&plan, &cat).unwrap();
    let got = eng.submit(&plan).unwrap().collect_rows().unwrap();
    assert_rows_match(got, expected, 1e-9);
    assert!(pool.disk().stats().reads > 0, "disk-resident run must do I/O");
    assert!(pool.stats().misses > 0);
}

// ---------------------------------------------------------------------
// Distinct and TopK operators
// ---------------------------------------------------------------------

#[test]
fn distinct_matches_oracle_in_all_modes() {
    let cat = ssb_catalog();
    let plan = LogicalPlan::Distinct {
        input: Box::new(LogicalPlan::Project {
            input: Box::new(LogicalPlan::Scan {
                table: "lineorder".into(),
                predicate: None,
                projection: None,
            }),
            columns: vec![7], // lo_discount: few distinct values
        }),
    };
    for sharing in [
        SharingPolicy::query_centric(),
        SharingPolicy::all_stages(ShareMode::Push),
        SharingPolicy::all_stages(ShareMode::Pull),
    ] {
        let eng = engine(&cat, sharing);
        run_and_check(&eng, &cat, &plan);
    }
}

#[test]
fn topk_matches_sort_limit_in_all_modes() {
    let cat = ssb_catalog();
    let scan = LogicalPlan::Scan {
        table: "lineorder".into(),
        predicate: None,
        projection: Some(vec![0, 8]), // lo_orderkey, lo_revenue
    };
    let topk = LogicalPlan::TopK {
        input: Box::new(scan.clone()),
        keys: vec![(1, false), (0, true)],
        n: 13,
    };
    let sort_limit = LogicalPlan::Limit {
        input: Box::new(LogicalPlan::Sort {
            input: Box::new(scan),
            keys: vec![(1, false), (0, true)],
        }),
        n: 13,
    };
    let via_sort = eval(&sort_limit, &cat).unwrap();
    for sharing in [
        SharingPolicy::query_centric(),
        SharingPolicy::all_stages(ShareMode::Pull),
    ] {
        let eng = engine(&cat, sharing);
        let got = eng.submit(&topk).unwrap().collect_rows().unwrap();
        // TopK emits in key order, so compare exactly (keys include a
        // tiebreaker making the order total).
        assert_eq!(got, via_sort);
    }
}

#[test]
fn topk_edge_cases() {
    let cat = ssb_catalog();
    let rows = cat.get("lineorder").unwrap().row_count();
    let eng = engine(&cat, SharingPolicy::query_centric());
    // n = 0 produces nothing (and terminates).
    let empty = LogicalPlan::TopK {
        input: Box::new(LogicalPlan::Scan {
            table: "lineorder".into(),
            predicate: None,
            projection: Some(vec![0]),
        }),
        keys: vec![(0, true)],
        n: 0,
    };
    assert!(eng.submit(&empty).unwrap().collect_rows().unwrap().is_empty());
    // n >= input emits the whole (sorted) input.
    let all = LogicalPlan::TopK {
        input: Box::new(LogicalPlan::Scan {
            table: "lineorder".into(),
            predicate: None,
            projection: Some(vec![0]),
        }),
        keys: vec![(0, true)],
        n: rows + 10,
    };
    let got = eng.submit(&all).unwrap().collect_rows().unwrap();
    assert_eq!(got.len(), rows);
    assert!(got.windows(2).all(|w| w[0][0].as_int() <= w[1][0].as_int()));
}

#[test]
fn identical_distinct_and_topk_packets_share() {
    let cat = ssb_catalog();
    let eng = engine(&cat, SharingPolicy::all_stages(ShareMode::Pull));
    let plan = LogicalPlan::TopK {
        input: Box::new(LogicalPlan::Distinct {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(LogicalPlan::Scan {
                    table: "lineorder".into(),
                    predicate: None,
                    projection: None,
                }),
                columns: vec![7, 5],
            }),
        }),
        keys: vec![(0, true), (1, true)],
        n: 20,
    };
    let expected = eval(&plan, &cat).unwrap();
    let k = 4;
    let tickets = eng.submit_batch(&vec![plan; k]).unwrap();
    let handles: Vec<_> = tickets
        .into_iter()
        .map(|t| std::thread::spawn(move || t.collect_rows().unwrap()))
        .collect();
    for h in handles {
        assert_rows_match(h.join().unwrap(), expected.clone(), 1e-9);
    }
    let m = eng.metrics();
    assert_eq!(
        m.sp_hits_for(StageKind::TopK),
        (k - 1) as u64,
        "k identical plans ride one TopK packet"
    );
    assert_eq!(m.sp_hits_for(StageKind::Distinct), 0, "inner nodes shared at the root");
}

/// Regression test for the sequential-drain deadlock: a shared producer
/// with more output pages than any FIFO capacity must not deadlock when
/// the client drains sibling tickets strictly one after another.
#[test]
fn sequential_ticket_draining_cannot_deadlock_shared_push_producers() {
    let cat = ssb_catalog();
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::unbounded(),
        Arc::new(DiskModel::new(DiskConfig::memory_resident())),
    ));
    // Tiny pages and a capacity-1 FIFO: before root readers became
    // unbounded this configuration deadlocked almost surely.
    let eng = QpipeEngine::new(
        cat.clone(),
        pool,
        EngineConfig {
            out_page_bytes: 128,
            fifo_capacity: 1,
            sharing: SharingPolicy::all_stages(ShareMode::Push),
            ..Default::default()
        },
    );
    let plan = LogicalPlan::Aggregate {
        input: Box::new(LogicalPlan::Scan {
            table: "lineorder".into(),
            predicate: None,
            projection: None,
        }),
        group_by: vec![7], // lo_discount: 11 groups >> fifo capacity
        aggs: vec![qs_plan::AggSpec::new(qs_plan::AggFunc::Count, "n")],
    };
    let expected = eval(&plan, &cat).unwrap();
    let tickets = eng.submit_batch(&vec![plan; 3]).unwrap();
    for t in tickets {
        // Strictly sequential drains — the deadlocking pattern.
        assert_rows_match(t.collect_rows().unwrap(), expected.clone(), 1e-9);
    }
}
