//! Property tests pinning the vectorized aggregation kernels
//! (`qs_engine::kernels`) to the row-at-a-time `update_acc` oracle on
//! arbitrary column data, selection masks and groupings. The oracle is
//! the accumulator path every execution mode agreed on before the batch
//! refactor, so kernel/oracle equality here plus the mode-agreement e2e
//! tests pin the whole refactor.

use proptest::prelude::*;
use qs_engine::agg::{finalize_acc, make_acc, update_acc};
use qs_engine::kernels::{
    kernel_columns, update_grouped, update_masked, AccVec, AggKernel,
};
use qs_plan::AggFunc;
use qs_storage::{mask_words, ColumnBatch, DataType, Page, Schema, Value};
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::from_pairs(&[
        ("i", DataType::Int),
        ("f", DataType::Float),
        ("d", DataType::Date),
        ("s", DataType::Char(6)),
    ])
}

/// Arbitrary rows for the test schema. Floats include negatives and
/// fractional values; strings vary in length (padding-trim coverage).
fn arb_rows() -> impl Strategy<Value = Vec<(i64, f64, u32, String)>> {
    prop::collection::vec(
        (
            -1000i64..1000,
            (-1000i32..1000).prop_map(|x| x as f64 / 8.0),
            19970101u32..19991231,
            "[a-z]{0,6}",
        ),
        1..200,
    )
}

fn arb_func() -> impl Strategy<Value = AggFunc> {
    let col = 0usize..4;
    let num = 0usize..3; // Avg/SumProd/SumDiff take numeric inputs
    prop_oneof![
        Just(AggFunc::Count),
        num.clone().prop_map(AggFunc::Sum),
        num.clone().prop_map(AggFunc::Avg),
        col.clone().prop_map(AggFunc::Min),
        col.prop_map(AggFunc::Max),
        (num.clone(), num.clone()).prop_map(|(a, b)| AggFunc::SumProd(a, b)),
        (num.clone(), num).prop_map(|(a, b)| AggFunc::SumDiff(a, b)),
    ]
}

fn build_page(rows: &[(i64, f64, u32, String)]) -> Page {
    let s = schema();
    let vals: Vec<Vec<Value>> = rows
        .iter()
        .map(|(i, f, d, st)| {
            vec![
                Value::Int(*i),
                Value::Float(*f),
                Value::Date(*d),
                Value::Str(st.clone()),
            ]
        })
        .collect();
    let mut b = qs_storage::PageBuilder::with_bytes(s.clone(), vals.len() * s.row_size() + 64);
    for r in &vals {
        assert!(b.push_values(r).unwrap());
    }
    b.finish()
}

/// Values compare exactly except floats, which the kernels may sum in a
/// different association order than the row loop.
fn assert_value_close(got: &Value, want: &Value, ctx: &str) {
    match (got, want) {
        (Value::Float(a), Value::Float(b)) => {
            let tol = 1e-9 * (1.0 + a.abs().max(b.abs()));
            assert!((a - b).abs() <= tol, "{ctx}: {a} vs {b}");
        }
        _ => assert_eq!(got, want, "{ctx}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Masked kernels (scalar aggregates over a selection mask) agree
    /// with folding the selected rows one at a time.
    #[test]
    fn masked_kernels_match_update_acc(
        rows in arb_rows(),
        func in arb_func(),
        mask_seed in any::<u64>(),
    ) {
        let s = schema();
        let page = build_page(&rows);
        let n = page.rows();
        // Pseudo-random selection mask with tail bits clear.
        let mut mask = vec![0u64; mask_words(n)];
        let mut x = mask_seed | 1;
        for i in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if x >> 63 == 1 {
                mask[i / 64] |= 1 << (i % 64);
            }
        }
        let kernel = AggKernel::compile(&func, &s);
        let batch = ColumnBatch::from_page(&page, &kernel_columns(&[kernel]));
        let mut accs = AccVec::for_kernel(&kernel);
        accs.resize(1);
        update_masked(&kernel, &mut accs, &batch, &mask);

        let mut oracle = make_acc(&func, &s);
        for (i, row) in page.iter().enumerate() {
            if mask[i / 64] & (1 << (i % 64)) != 0 {
                update_acc(&mut oracle, &func, &row);
            }
        }
        assert_value_close(&accs.finalize(0), &finalize_acc(&oracle), &format!("{func:?}"));
    }

    /// Grouped kernels agree with per-group row-at-a-time folding under
    /// arbitrary row→group assignments and sub-selections.
    #[test]
    fn grouped_kernels_match_update_acc(
        rows in arb_rows(),
        func in arb_func(),
        ngroups in 1u32..8,
        seed in any::<u64>(),
    ) {
        let s = schema();
        let page = build_page(&rows);
        let n = page.rows();
        // Pseudo-random (row, group) pairs; roughly half the rows selected.
        let mut sel_rows: Vec<u32> = Vec::new();
        let mut sel_groups: Vec<u32> = Vec::new();
        let mut x = seed | 1;
        for i in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if x & 1 == 0 {
                sel_rows.push(i as u32);
                sel_groups.push(((x >> 32) % ngroups as u64) as u32);
            }
        }
        let kernel = AggKernel::compile(&func, &s);
        let batch = ColumnBatch::from_page(&page, &kernel_columns(&[kernel]));
        let mut accs = AccVec::for_kernel(&kernel);
        accs.resize(ngroups as usize);
        update_grouped(&kernel, &mut accs, &batch, &sel_rows, &sel_groups);

        for g in 0..ngroups {
            let mut oracle = make_acc(&func, &s);
            for (&r, &gr) in sel_rows.iter().zip(&sel_groups) {
                if gr == g {
                    update_acc(&mut oracle, &func, &page.row(r as usize));
                }
            }
            assert_value_close(
                &accs.finalize(g as usize),
                &finalize_acc(&oracle),
                &format!("{func:?} group {g}"),
            );
        }
    }

    /// Splitting a batch into arbitrary prefix/suffix sub-batches must
    /// accumulate identically (the aggregator folds page after page).
    #[test]
    fn kernel_updates_compose_across_batches(
        rows in arb_rows(),
        func in arb_func(),
        split_frac in 0.0f64..1.0,
    ) {
        let s = schema();
        let page = build_page(&rows);
        let n = page.rows();
        let split = ((n as f64) * split_frac) as usize;
        let kernel = AggKernel::compile(&func, &s);
        let cols = kernel_columns(&[kernel]);

        // One shot over the full page.
        let batch = ColumnBatch::from_page(&page, &cols);
        let all_rows: Vec<u32> = (0..n as u32).collect();
        let zeros = vec![0u32; n];
        let mut whole = AccVec::for_kernel(&kernel);
        whole.resize(1);
        update_grouped(&kernel, &mut whole, &batch, &all_rows, &zeros);

        // Two gathered sub-batches.
        let mut split_accs = AccVec::for_kernel(&kernel);
        split_accs.resize(1);
        for part in [&all_rows[..split], &all_rows[split..]] {
            if part.is_empty() {
                continue;
            }
            let sub = ColumnBatch::gather(&page, part, &cols);
            let idx: Vec<u32> = (0..part.len() as u32).collect();
            let zeros = vec![0u32; part.len()];
            update_grouped(&kernel, &mut split_accs, &sub, &idx, &zeros);
        }
        assert_value_close(
            &split_accs.finalize(0),
            &whole.finalize(0),
            &format!("{func:?} split at {split}"),
        );
    }
}
