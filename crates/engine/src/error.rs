//! Engine error type.

use qs_plan::PlanError;
use qs_storage::StorageError;
use std::fmt;

/// Load snapshot taken by the [`AdmissionGate`](crate::AdmissionGate) at
/// the instant a query is shed, so callers (a serving front door, a retry
/// loop) can compute a Retry-After instead of treating `Shed` as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryHint {
    /// Submitters waiting for an admission slot when the query was shed.
    pub queue_depth: usize,
    /// Queries holding admission permits when the query was shed.
    pub running: usize,
}

/// Errors surfaced by query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Plan construction/validation failure.
    Plan(PlanError),
    /// Storage failure.
    Storage(StorageError),
    /// A producer aborted; the message describes the root cause.
    Aborted(String),
    /// The query (or every consumer of a producer) was cancelled.
    Cancelled,
    /// The query ran past the deadline given at submit.
    DeadlineExceeded,
    /// Admission control shed the query before it started: the engine was
    /// at its concurrency bound and the admission queue was full or the
    /// queue wait exceeded its timeout. Carries the gate's load snapshot
    /// at shed time.
    Shed(RetryHint),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(e) => write!(f, "plan error: {e}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Aborted(msg) => write!(f, "aborted: {msg}"),
            EngineError::Cancelled => write!(f, "cancelled"),
            EngineError::DeadlineExceeded => write!(f, "deadline exceeded"),
            EngineError::Shed(hint) => write!(
                f,
                "shed by admission control (overload; {} running, {} queued)",
                hint.running, hint.queue_depth
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: EngineError = StorageError::TableNotFound("x".into()).into();
        assert!(e.to_string().contains("x"));
        let e: EngineError = PlanError::Invalid("bad".into()).into();
        assert!(e.to_string().contains("bad"));
        assert_eq!(EngineError::Cancelled.to_string(), "cancelled");
    }
}
