//! # qs-engine — the QPipe-style staged execution engine
//!
//! Reproduction of QPipe (Harizopoulos et al., SIGMOD'05) as integrated in
//! the SIGMOD'14 demo:
//!
//! * every relational operator is a **stage** with a work queue and an
//!   elastic local thread pool ([`stage`]),
//! * a query plan becomes a tree of **packets** whose data flows through
//!   batch-based exchange — every channel carries an [`EngineBatch`]
//!   (`Arc<qs_storage::FactBatch>`: shared page + surviving-row
//!   selection), over bounded FIFO buffers in the original push-only
//!   model ([`fifo`]),
//! * **Simultaneous Pipelining (SP)**: when a packet arrives at a stage
//!   while an identical one (same sub-plan signature) is in flight, it
//!   subscribes to the in-flight packet's output instead of executing
//!   ([`stage::SpRegistry`], [`hub`]),
//! * the **Shared Pages List** ([`spl`]) implements the paper's pull-based
//!   SP, eliminating the copy serialization of the push model,
//! * a **core governor** ([`governor`]) reproduces the demo's "bind the
//!   server to N cores" knob,
//! * a serial **reference evaluator** ([`reference`]) serves as the
//!   testing oracle for all execution modes,
//! * **aggregation kernels** ([`kernels`]) — typed, schema-resolved
//!   batch folds over `qs_storage::ColumnBatch` shared by the engine's
//!   `Aggregate` operator and `qs-cjoin`'s shared aggregation,
//! * **group-slot resolution** ([`group`]) — the tiered group-key →
//!   dense-slot registry ([`group::GroupTable`]) both of those
//!   aggregation consumers probe batch-at-a-time.

pub mod agg;
pub mod ctl;
pub mod engine;
pub mod error;
pub mod fifo;
pub mod governor;
pub mod group;
pub mod hub;
pub mod kernels;
pub mod metrics;
pub mod ops;
pub mod pool;
pub mod reference;
pub mod spl;
pub mod stage;

pub use ctl::{CancelHandle, QueryCtl, QueryOpts};
pub use engine::{EngineConfig, QpipeEngine, QueryTicket, SharingPolicy};
pub use error::{EngineError, RetryHint};
pub use fifo::{BatchSource, EngineBatch, FifoBuffer, FifoReader};
pub use governor::{AdmissionConfig, AdmissionGate, AdmissionPermit, CoreGovernor};
pub use group::{GroupTable, GroupTier, ParallelScratch, RadixScratch, PARALLEL_MIN_ROWS};
pub use hub::{OutputHub, ShareMode};
pub use kernels::{AccVec, AggKernel};
pub use metrics::{Metrics, MetricsSnapshot, StageKind, ALL_STAGES, NUM_STAGES};
pub use ops::{ExecCtx, PhysicalOp};
pub use pool::WorkerPool;
pub use spl::{SharedPagesList, SplReader};
pub use stage::{Packet, SpRegistry, Stage};

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
