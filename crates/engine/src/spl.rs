//! The Shared Pages List — the paper's pull-based SP data structure.
//!
//! The SPL replaces per-consumer FIFO buffers with one shared,
//! reference-counted list of batches: the single producer *appends* each
//! [`EngineBatch`] once, and every consumer advances its own cursor over
//! the list at its own pace. Sharing a batch is an `Arc` clone, not a
//! copy, so adding a consumer adds no work to the producer — this
//! eliminates the serialization point of push-based SP (paper §3, "Shared
//! Pages List").
//!
//! Consumers can attach at any time before the producer finishes and
//! always see the *complete* stream (the list retains all batches while
//! readers may still need them), which also widens the SP window compared
//! with the strict push-mode window.
//!
//! Trade-off, as in the paper: the SPL is unbounded — a slow consumer
//! does not throttle the producer, it just keeps batches (and their
//! underlying pages) alive longer.

use crate::error::EngineError;
use crate::fifo::{BatchSource, EngineBatch};
use parking_lot::{Condvar, Mutex};

struct SplState {
    batches: Vec<EngineBatch>,
    finished: bool,
    aborted: Option<String>,
}

/// Single-producer, multi-consumer shared list of batches.
pub struct SharedPagesList {
    state: Mutex<SplState>,
    appended: Condvar,
}

impl SharedPagesList {
    /// New, empty list.
    pub fn new() -> std::sync::Arc<Self> {
        std::sync::Arc::new(SharedPagesList {
            state: Mutex::new(SplState {
                batches: Vec::new(),
                finished: false,
                aborted: None,
            }),
            appended: Condvar::new(),
        })
    }

    /// Append a batch (producer side). A no-op error after abort.
    pub fn append(&self, batch: EngineBatch) -> Result<(), EngineError> {
        crate::fifo::channel_fault("spl.append.delay", "spl.append.abort")?;
        let mut st = self.state.lock();
        if let Some(msg) = &st.aborted {
            return Err(EngineError::Aborted(msg.clone()));
        }
        debug_assert!(!st.finished, "append after finish");
        st.batches.push(batch);
        self.appended.notify_all();
        Ok(())
    }

    /// Append a group of batches under one lock acquisition and one
    /// reader broadcast (the group form of [`Self::append`]; sparse scans
    /// buffer tiny batches so readers are not woken per page). Drains
    /// `batches`.
    pub fn append_many(&self, batches: &mut Vec<EngineBatch>) -> Result<(), EngineError> {
        crate::fifo::channel_fault("spl.append.delay", "spl.append.abort")?;
        let mut st = self.state.lock();
        if let Some(msg) = &st.aborted {
            return Err(EngineError::Aborted(msg.clone()));
        }
        debug_assert!(!st.finished, "append after finish");
        st.batches.append(batches);
        self.appended.notify_all();
        Ok(())
    }

    /// Mark end of stream.
    pub fn finish(&self) {
        let mut st = self.state.lock();
        st.finished = true;
        self.appended.notify_all();
    }

    /// Abort the stream; all readers observe the error.
    pub fn abort(&self, msg: impl Into<String>) {
        let mut st = self.state.lock();
        st.aborted = Some(msg.into());
        self.appended.notify_all();
    }

    /// Attach a reader positioned at the start of the list.
    pub fn reader(self: &std::sync::Arc<Self>) -> SplReader {
        SplReader {
            spl: self.clone(),
            cursor: 0,
        }
    }

    /// Number of batches currently in the list.
    pub fn len(&self) -> usize {
        self.state.lock().batches.len()
    }

    /// Whether no batch has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the producer has finished.
    pub fn is_finished(&self) -> bool {
        self.state.lock().finished
    }
}

/// A consumer cursor over a [`SharedPagesList`].
pub struct SplReader {
    spl: std::sync::Arc<SharedPagesList>,
    cursor: usize,
}

impl SplReader {
    /// Batches this reader has consumed so far.
    pub fn position(&self) -> usize {
        self.cursor
    }
}

impl BatchSource for SplReader {
    fn next_batch(&mut self) -> Result<Option<EngineBatch>, EngineError> {
        let mut st = self.spl.state.lock();
        loop {
            if let Some(msg) = &st.aborted {
                return Err(EngineError::Aborted(msg.clone()));
            }
            if self.cursor < st.batches.len() {
                let b = st.batches[self.cursor].clone();
                self.cursor += 1;
                return Ok(Some(b));
            }
            if st.finished {
                return Ok(None);
            }
            self.spl.appended.wait(&mut st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_storage::{DataType, FactBatch, Page, Schema, Value};
    use std::sync::Arc;
    use std::time::Duration;

    fn batch(k: i64) -> EngineBatch {
        let s = Schema::from_pairs(&[("k", DataType::Int)]);
        let page = Arc::new(Page::from_values(&s, &[vec![Value::Int(k)]]).unwrap());
        Arc::new(FactBatch::all(page))
    }

    fn key(b: &EngineBatch) -> i64 {
        b.page().row(b.sel()[0] as usize).i64_col(0)
    }

    fn drain(mut r: SplReader) -> Vec<i64> {
        let mut out = Vec::new();
        while let Some(b) = r.next_batch().unwrap() {
            out.push(key(&b));
        }
        out
    }

    #[test]
    fn all_consumers_see_identical_streams_without_copies() {
        let spl = SharedPagesList::new();
        let r1 = spl.reader();
        let r2 = spl.reader();
        let b1 = batch(1);
        let b2 = batch(2);
        spl.append(b1.clone()).unwrap();
        spl.append(b2.clone()).unwrap();
        spl.finish();
        let a = drain(r1);
        let b = drain(r2);
        assert_eq!(a, vec![1, 2]);
        assert_eq!(a, b);
        // Zero copies: every reader sees the same batch allocation (and
        // therefore the same underlying page).
        let mut r3 = spl.reader();
        let got = r3.next_batch().unwrap().unwrap();
        assert!(Arc::ptr_eq(&got, &b1));
        assert!(Arc::ptr_eq(got.page(), b1.page()));
    }

    #[test]
    fn late_attach_sees_full_history() {
        let spl = SharedPagesList::new();
        spl.append(batch(1)).unwrap();
        spl.append(batch(2)).unwrap();
        let late = spl.reader(); // attaches after 2 batches produced
        spl.append(batch(3)).unwrap();
        spl.finish();
        assert_eq!(drain(late), vec![1, 2, 3]);
    }

    #[test]
    fn consumers_progress_independently() {
        let spl = SharedPagesList::new();
        let mut fast = spl.reader();
        let mut slow = spl.reader();
        spl.append(batch(1)).unwrap();
        spl.append(batch(2)).unwrap();
        assert_eq!(key(&fast.next_batch().unwrap().unwrap()), 1);
        assert_eq!(key(&fast.next_batch().unwrap().unwrap()), 2);
        assert_eq!(fast.position(), 2);
        assert_eq!(slow.position(), 0);
        assert_eq!(key(&slow.next_batch().unwrap().unwrap()), 1);
        spl.finish();
        assert!(fast.next_batch().unwrap().is_none());
        assert_eq!(key(&slow.next_batch().unwrap().unwrap()), 2);
        assert!(slow.next_batch().unwrap().is_none());
    }

    #[test]
    fn reader_blocks_until_producer_appends() {
        let spl = SharedPagesList::new();
        let mut r = spl.reader();
        let spl2 = spl.clone();
        let h =
            std::thread::spawn(move || key(&r.next_batch().unwrap().unwrap()));
        std::thread::sleep(Duration::from_millis(10));
        spl2.append(batch(9)).unwrap();
        assert_eq!(h.join().unwrap(), 9);
    }

    #[test]
    fn abort_propagates_to_all_readers() {
        let spl = SharedPagesList::new();
        let mut r1 = spl.reader();
        let mut r2 = spl.reader();
        spl.append(batch(1)).unwrap();
        spl.abort("boom");
        assert!(matches!(r1.next_batch(), Err(EngineError::Aborted(_))));
        assert!(matches!(r2.next_batch(), Err(EngineError::Aborted(_))));
        assert!(matches!(
            spl.append(batch(2)),
            Err(EngineError::Aborted(_))
        ));
    }

    #[test]
    fn concurrent_producer_and_many_consumers() {
        let spl = SharedPagesList::new();
        let readers: Vec<_> = (0..8).map(|_| spl.reader()).collect();
        let producer = {
            let spl = spl.clone();
            std::thread::spawn(move || {
                for i in 0..100 {
                    spl.append(batch(i)).unwrap();
                }
                spl.finish();
            })
        };
        let hs: Vec<_> = readers
            .into_iter()
            .map(|r| std::thread::spawn(move || drain(r)))
            .collect();
        producer.join().unwrap();
        let expect: Vec<i64> = (0..100).collect();
        for h in hs {
            assert_eq!(h.join().unwrap(), expect);
        }
    }
}
