//! The Shared Pages List — the paper's pull-based SP data structure.
//!
//! The SPL replaces per-consumer FIFO buffers with one shared,
//! reference-counted list of pages: the single producer *appends* each
//! page once, and every consumer advances its own cursor over the list at
//! its own pace. Sharing a page is an `Arc` clone, not a copy, so adding a
//! consumer adds no work to the producer — this eliminates the
//! serialization point of push-based SP (paper §3, "Shared Pages List").
//!
//! Consumers can attach at any time before the producer finishes and
//! always see the *complete* stream (the list retains all pages while
//! readers may still need them), which also widens the SP window compared
//! with the strict push-mode window.
//!
//! Trade-off, as in the paper: the SPL is unbounded — a slow consumer
//! does not throttle the producer, it just keeps pages alive longer.

use crate::error::EngineError;
use crate::fifo::PageSource;
use parking_lot::{Condvar, Mutex};
use qs_storage::Page;
use std::sync::Arc;

struct SplState {
    pages: Vec<Arc<Page>>,
    finished: bool,
    aborted: Option<String>,
}

/// Single-producer, multi-consumer shared list of pages.
pub struct SharedPagesList {
    state: Mutex<SplState>,
    appended: Condvar,
}

impl SharedPagesList {
    /// New, empty list.
    pub fn new() -> Arc<Self> {
        Arc::new(SharedPagesList {
            state: Mutex::new(SplState {
                pages: Vec::new(),
                finished: false,
                aborted: None,
            }),
            appended: Condvar::new(),
        })
    }

    /// Append a page (producer side). A no-op error after abort.
    pub fn append(&self, page: Arc<Page>) -> Result<(), EngineError> {
        let mut st = self.state.lock();
        if let Some(msg) = &st.aborted {
            return Err(EngineError::Aborted(msg.clone()));
        }
        debug_assert!(!st.finished, "append after finish");
        st.pages.push(page);
        self.appended.notify_all();
        Ok(())
    }

    /// Mark end of stream.
    pub fn finish(&self) {
        let mut st = self.state.lock();
        st.finished = true;
        self.appended.notify_all();
    }

    /// Abort the stream; all readers observe the error.
    pub fn abort(&self, msg: impl Into<String>) {
        let mut st = self.state.lock();
        st.aborted = Some(msg.into());
        self.appended.notify_all();
    }

    /// Attach a reader positioned at the start of the list.
    pub fn reader(self: &Arc<Self>) -> SplReader {
        SplReader {
            spl: self.clone(),
            cursor: 0,
        }
    }

    /// Number of pages currently in the list.
    pub fn len(&self) -> usize {
        self.state.lock().pages.len()
    }

    /// Whether no page has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the producer has finished.
    pub fn is_finished(&self) -> bool {
        self.state.lock().finished
    }
}

/// A consumer cursor over a [`SharedPagesList`].
pub struct SplReader {
    spl: Arc<SharedPagesList>,
    cursor: usize,
}

impl SplReader {
    /// Pages this reader has consumed so far.
    pub fn position(&self) -> usize {
        self.cursor
    }
}

impl PageSource for SplReader {
    fn next_page(&mut self) -> Result<Option<Arc<Page>>, EngineError> {
        let mut st = self.spl.state.lock();
        loop {
            if let Some(msg) = &st.aborted {
                return Err(EngineError::Aborted(msg.clone()));
            }
            if self.cursor < st.pages.len() {
                let p = st.pages[self.cursor].clone();
                self.cursor += 1;
                return Ok(Some(p));
            }
            if st.finished {
                return Ok(None);
            }
            self.spl.appended.wait(&mut st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_storage::{DataType, Schema, Value};
    use std::time::Duration;

    fn page(k: i64) -> Arc<Page> {
        let s = Schema::from_pairs(&[("k", DataType::Int)]);
        Arc::new(Page::from_values(&s, &[vec![Value::Int(k)]]).unwrap())
    }

    fn drain(mut r: SplReader) -> Vec<i64> {
        let mut out = Vec::new();
        while let Some(p) = r.next_page().unwrap() {
            out.push(p.row(0).i64_col(0));
        }
        out
    }

    #[test]
    fn all_consumers_see_identical_streams_without_copies() {
        let spl = SharedPagesList::new();
        let r1 = spl.reader();
        let r2 = spl.reader();
        let p1 = page(1);
        let p2 = page(2);
        spl.append(p1.clone()).unwrap();
        spl.append(p2.clone()).unwrap();
        spl.finish();
        let a = drain(r1);
        let b = drain(r2);
        assert_eq!(a, vec![1, 2]);
        assert_eq!(a, b);
        // Zero copies: 1 in each list slot + our p1 handle = same allocation
        let mut r3 = spl.reader();
        let got = r3.next_page().unwrap().unwrap();
        assert!(Arc::ptr_eq(&got, &p1));
    }

    #[test]
    fn late_attach_sees_full_history() {
        let spl = SharedPagesList::new();
        spl.append(page(1)).unwrap();
        spl.append(page(2)).unwrap();
        let late = spl.reader(); // attaches after 2 pages produced
        spl.append(page(3)).unwrap();
        spl.finish();
        assert_eq!(drain(late), vec![1, 2, 3]);
    }

    #[test]
    fn consumers_progress_independently() {
        let spl = SharedPagesList::new();
        let mut fast = spl.reader();
        let mut slow = spl.reader();
        spl.append(page(1)).unwrap();
        spl.append(page(2)).unwrap();
        assert_eq!(fast.next_page().unwrap().unwrap().row(0).i64_col(0), 1);
        assert_eq!(fast.next_page().unwrap().unwrap().row(0).i64_col(0), 2);
        assert_eq!(fast.position(), 2);
        assert_eq!(slow.position(), 0);
        assert_eq!(slow.next_page().unwrap().unwrap().row(0).i64_col(0), 1);
        spl.finish();
        assert!(fast.next_page().unwrap().is_none());
        assert_eq!(slow.next_page().unwrap().unwrap().row(0).i64_col(0), 2);
        assert!(slow.next_page().unwrap().is_none());
    }

    #[test]
    fn reader_blocks_until_producer_appends() {
        let spl = SharedPagesList::new();
        let mut r = spl.reader();
        let spl2 = spl.clone();
        let h = std::thread::spawn(move || r.next_page().unwrap().unwrap().row(0).i64_col(0));
        std::thread::sleep(Duration::from_millis(10));
        spl2.append(page(9)).unwrap();
        assert_eq!(h.join().unwrap(), 9);
    }

    #[test]
    fn abort_propagates_to_all_readers() {
        let spl = SharedPagesList::new();
        let mut r1 = spl.reader();
        let mut r2 = spl.reader();
        spl.append(page(1)).unwrap();
        spl.abort("boom");
        assert!(matches!(r1.next_page(), Err(EngineError::Aborted(_))));
        assert!(matches!(r2.next_page(), Err(EngineError::Aborted(_))));
        assert!(matches!(spl.append(page(2)), Err(EngineError::Aborted(_))));
    }

    #[test]
    fn concurrent_producer_and_many_consumers() {
        let spl = SharedPagesList::new();
        let readers: Vec<_> = (0..8).map(|_| spl.reader()).collect();
        let producer = {
            let spl = spl.clone();
            std::thread::spawn(move || {
                for i in 0..100 {
                    spl.append(page(i)).unwrap();
                }
                spl.finish();
            })
        };
        let hs: Vec<_> = readers
            .into_iter()
            .map(|r| std::thread::spawn(move || drain(r)))
            .collect();
        producer.join().unwrap();
        let expect: Vec<i64> = (0..100).collect();
        for h in hs {
            assert_eq!(h.join().unwrap(), expect);
        }
    }
}
