//! Bounded FIFO batch buffers — QPipe's original push-only dataflow.
//!
//! The engine's inter-operator currency is the [`EngineBatch`]: an
//! `Arc<FactBatch>` pairing a shared page with the selection of rows that
//! survived upstream predicates. Producers `push` batches and block when
//! the queue is full (pipeline backpressure); the single consumer pulls at
//! its own pace. When SP shares an in-flight packet in *push* mode, the
//! producer must deep-copy every batch's page into each attached
//! consumer's FIFO — that per-page copy loop on the producer thread is the
//! serialization point the Shared Pages List removes (see [`crate::spl`]).

use crate::error::EngineError;
use parking_lot::{Condvar, Mutex};
use qs_storage::FactBatch;
use std::collections::VecDeque;
use std::sync::Arc;

/// The packet flowing between engine operators: a shared page plus the
/// selection of surviving rows (see [`qs_storage::FactBatch`]). Shared by
/// `Arc` so SPL consumers and FIFO queues reference one allocation.
pub type EngineBatch = Arc<FactBatch>;

/// The batch stream abstraction consumed by every operator.
pub trait BatchSource: Send {
    /// Next batch, `Ok(None)` at end of stream, `Err` if the producer
    /// aborted.
    fn next_batch(&mut self) -> Result<Option<EngineBatch>, EngineError>;
}

struct FifoState {
    queue: VecDeque<EngineBatch>,
    finished: bool,
    aborted: Option<String>,
    reader_alive: bool,
}

/// Chaos failpoint at a channel boundary: an injected scheduling stall
/// (`*_delay` point) and/or an injected producer abort (`*_abort` point).
/// Disarmed cost: one relaxed atomic load before the channel lock.
pub(crate) fn channel_fault(delay_point: &str, abort_point: &str) -> Result<(), EngineError> {
    if !qs_storage::fault::armed() {
        return Ok(());
    }
    qs_storage::fault::maybe_delay(delay_point);
    if qs_storage::fault::should_fire(abort_point) {
        return Err(EngineError::Aborted(format!(
            "injected fault `{abort_point}`"
        )));
    }
    Ok(())
}

/// A single-producer single-consumer bounded batch queue.
pub struct FifoBuffer {
    state: Mutex<FifoState>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl FifoBuffer {
    /// Create the buffer and its (single) reader.
    pub fn channel(capacity: usize) -> (Arc<FifoBuffer>, FifoReader) {
        let fifo = Arc::new(FifoBuffer {
            state: Mutex::new(FifoState {
                queue: VecDeque::with_capacity(capacity.min(1024)),
                finished: false,
                aborted: None,
                reader_alive: true,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        });
        let reader = FifoReader { fifo: fifo.clone() };
        (fifo, reader)
    }

    /// Push a batch; blocks while the queue is full. Fails with
    /// [`EngineError::Cancelled`] if the reader is gone, or with the abort
    /// cause if the stream was aborted.
    pub fn push(&self, batch: EngineBatch) -> Result<(), EngineError> {
        channel_fault("fifo.push.delay", "fifo.push.abort")?;
        let mut st = self.state.lock();
        loop {
            if let Some(msg) = &st.aborted {
                return Err(EngineError::Aborted(msg.clone()));
            }
            if !st.reader_alive {
                return Err(EngineError::Cancelled);
            }
            debug_assert!(!st.finished, "push after finish");
            if st.queue.len() < self.capacity {
                st.queue.push_back(batch);
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut st);
        }
    }

    /// Push a group of batches under one lock acquisition and one
    /// consumer wakeup. Sparse scans emit many tiny batches; per-batch
    /// condvar wakeups would dominate them, so producers buffer and push
    /// in groups (see `ops::EmitBuffer`). Drains `batches`; blocks while
    /// the queue is full, exactly like repeated [`Self::push`].
    pub fn push_many(&self, batches: &mut Vec<EngineBatch>) -> Result<(), EngineError> {
        channel_fault("fifo.push.delay", "fifo.push.abort")?;
        let mut st = self.state.lock();
        for batch in batches.drain(..) {
            loop {
                if let Some(msg) = &st.aborted {
                    return Err(EngineError::Aborted(msg.clone()));
                }
                if !st.reader_alive {
                    return Err(EngineError::Cancelled);
                }
                debug_assert!(!st.finished, "push after finish");
                if st.queue.len() < self.capacity {
                    st.queue.push_back(batch);
                    break;
                }
                // The queue is full, so the consumer cannot be parked on
                // `not_empty`; wake it anyway before we park (cheap, and
                // keeps the invariant obvious), then wait for space.
                self.not_empty.notify_one();
                self.not_full.wait(&mut st);
            }
        }
        self.not_empty.notify_one();
        Ok(())
    }

    /// Mark end of stream.
    pub fn finish(&self) {
        let mut st = self.state.lock();
        st.finished = true;
        self.not_empty.notify_all();
    }

    /// Abort the stream; the reader observes the error (already queued
    /// batches are discarded — consumers must not act on partial results).
    pub fn abort(&self, msg: impl Into<String>) {
        let mut st = self.state.lock();
        st.aborted = Some(msg.into());
        st.queue.clear();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether the reader side has been dropped.
    pub fn reader_gone(&self) -> bool {
        !self.state.lock().reader_alive
    }

    /// Batches currently queued (test/debug).
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether the queue is empty (test/debug).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Consumer end of a [`FifoBuffer`].
pub struct FifoReader {
    fifo: Arc<FifoBuffer>,
}

impl BatchSource for FifoReader {
    fn next_batch(&mut self) -> Result<Option<EngineBatch>, EngineError> {
        let mut st = self.fifo.state.lock();
        loop {
            if let Some(msg) = &st.aborted {
                return Err(EngineError::Aborted(msg.clone()));
            }
            if let Some(b) = st.queue.pop_front() {
                self.fifo.not_full.notify_one();
                return Ok(Some(b));
            }
            if st.finished {
                return Ok(None);
            }
            self.fifo.not_empty.wait(&mut st);
        }
    }
}

impl Drop for FifoReader {
    fn drop(&mut self) {
        let mut st = self.fifo.state.lock();
        st.reader_alive = false;
        st.queue.clear();
        // Wake a producer blocked on a full queue so it can observe
        // cancellation instead of hanging.
        self.fifo.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_storage::{DataType, Page, Schema, Value};
    use std::time::Duration;

    fn batch(k: i64) -> EngineBatch {
        let s = Schema::from_pairs(&[("k", DataType::Int)]);
        let page = Arc::new(Page::from_values(&s, &[vec![Value::Int(k)]]).unwrap());
        Arc::new(FactBatch::all(page))
    }

    fn key(b: &EngineBatch) -> i64 {
        b.page().row(b.sel()[0] as usize).i64_col(0)
    }

    #[test]
    fn batches_flow_in_order() {
        let (fifo, mut reader) = FifoBuffer::channel(4);
        fifo.push(batch(1)).unwrap();
        fifo.push(batch(2)).unwrap();
        fifo.finish();
        assert_eq!(key(&reader.next_batch().unwrap().unwrap()), 1);
        assert_eq!(key(&reader.next_batch().unwrap().unwrap()), 2);
        assert!(reader.next_batch().unwrap().is_none());
        // EOS is sticky
        assert!(reader.next_batch().unwrap().is_none());
    }

    #[test]
    fn push_blocks_at_capacity_until_pop() {
        let (fifo, mut reader) = FifoBuffer::channel(1);
        fifo.push(batch(1)).unwrap();
        let f2 = fifo.clone();
        let h = std::thread::spawn(move || {
            let t = std::time::Instant::now();
            f2.push(batch(2)).unwrap();
            t.elapsed()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(key(&reader.next_batch().unwrap().unwrap()), 1);
        let waited = h.join().unwrap();
        assert!(waited >= Duration::from_millis(15), "waited {waited:?}");
        fifo.finish();
        assert_eq!(key(&reader.next_batch().unwrap().unwrap()), 2);
    }

    #[test]
    fn reader_blocks_until_push() {
        let (fifo, mut reader) = FifoBuffer::channel(4);
        let h =
            std::thread::spawn(move || key(&reader.next_batch().unwrap().unwrap()));
        std::thread::sleep(Duration::from_millis(10));
        fifo.push(batch(7)).unwrap();
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn abort_reaches_reader_and_producer() {
        let (fifo, mut reader) = FifoBuffer::channel(2);
        fifo.push(batch(1)).unwrap();
        fifo.abort("upstream failed");
        match reader.next_batch() {
            Err(EngineError::Aborted(msg)) => assert!(msg.contains("upstream")),
            other => panic!("expected abort, got {other:?}"),
        }
        assert!(matches!(
            fifo.push(batch(2)),
            Err(EngineError::Aborted(_))
        ));
    }

    #[test]
    fn dropped_reader_cancels_producer() {
        let (fifo, reader) = FifoBuffer::channel(1);
        fifo.push(batch(1)).unwrap(); // fill
        let f2 = fifo.clone();
        let h = std::thread::spawn(move || f2.push(batch(2)));
        std::thread::sleep(Duration::from_millis(10));
        drop(reader);
        assert!(matches!(h.join().unwrap(), Err(EngineError::Cancelled)));
        assert!(fifo.reader_gone());
    }
}
