//! The QPipe engine facade: plan → packets → stages → result stream.

use crate::ctl::{CancelHandle, QueryCtl, QueryOpts};
use crate::fifo::{BatchSource, EngineBatch};
use crate::governor::{AdmissionConfig, AdmissionGate, AdmissionPermit, CoreGovernor};
use crate::hub::{OutputHub, ShareMode};
use crate::metrics::{Metrics, MetricsSnapshot, StageKind, NUM_STAGES};
use crate::ops::{ExecCtx, PhysicalOp};
use crate::stage::{Packet, Stage};
use crate::EngineError;
use qs_plan::{signature, LogicalPlan};
use qs_storage::{BufferPool, Catalog, Page, PageBuilder, Schema, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which stages participate in Simultaneous Pipelining, and how results
/// are distributed (the demo's per-stage SP checkboxes plus the
/// push-vs-pull switch of Scenario I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingPolicy {
    /// Distribution mechanism for shared packets.
    pub mode: ShareMode,
    /// SP at the table-scan stage.
    pub scan: bool,
    /// SP at the filter stage.
    pub filter: bool,
    /// SP at the hash-join stage.
    pub join: bool,
    /// SP at the aggregation stage.
    pub aggregate: bool,
    /// SP at the sort stage.
    pub sort: bool,
    /// SP at the projection stage.
    pub project: bool,
    /// SP at the limit stage.
    pub limit: bool,
    /// SP at the duplicate-elimination stage.
    pub distinct: bool,
    /// SP at the top-k stage.
    pub topk: bool,
}

impl SharingPolicy {
    /// No sharing anywhere: the classic query-centric engine (QPipe with
    /// SP disabled — still using shared circular scans at the I/O layer).
    pub fn query_centric() -> Self {
        SharingPolicy {
            mode: ShareMode::Push,
            scan: false,
            filter: false,
            join: false,
            aggregate: false,
            sort: false,
            project: false,
            limit: false,
            distinct: false,
            topk: false,
        }
    }

    /// SP enabled for every stage with the given mechanism.
    pub fn all_stages(mode: ShareMode) -> Self {
        SharingPolicy {
            mode,
            scan: true,
            filter: true,
            join: true,
            aggregate: true,
            sort: true,
            project: true,
            limit: true,
            distinct: true,
            topk: true,
        }
    }

    /// SP only at the table-scan stage (Scenario I's configuration).
    pub fn scan_only(mode: ShareMode) -> Self {
        SharingPolicy {
            scan: true,
            ..SharingPolicy::query_centric().with_mode(mode)
        }
    }

    /// Same policy with a different mechanism.
    pub fn with_mode(mut self, mode: ShareMode) -> Self {
        self.mode = mode;
        self
    }

    /// Is SP on for `kind`?
    pub fn enabled(&self, kind: StageKind) -> bool {
        match kind {
            StageKind::Scan => self.scan,
            StageKind::Filter => self.filter,
            StageKind::Join => self.join,
            StageKind::Aggregate => self.aggregate,
            StageKind::Sort => self.sort,
            StageKind::Project => self.project,
            StageKind::Limit => self.limit,
            StageKind::Distinct => self.distinct,
            StageKind::TopK => self.topk,
            StageKind::Cjoin => false, // handled by qs-core's CJOIN stage
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Core permits for CPU-bound work (`0` = unlimited). The demo's
    /// "bind to N cores" knob.
    pub cores: usize,
    /// Morsel worker-pool size for intra-operator parallelism (group
    /// resolution, parallel scans, the CJOIN preprocessor). `1` =
    /// single-threaded (no pool threads are spawned).
    pub workers: usize,
    /// Capacity (pages) of each FIFO buffer.
    pub fifo_capacity: usize,
    /// Byte budget for operator output pages.
    pub out_page_bytes: usize,
    /// Threads each stage starts with.
    pub initial_workers: usize,
    /// Upper bound on each stage's elastic pool.
    pub max_workers: usize,
    /// SP policy.
    pub sharing: SharingPolicy,
    /// Push-mode SP copy shape: when `true`, the per-extra-consumer copy
    /// of a *sparse* batch materializes only the selected tuples into a
    /// fresh dense page (selection-proportional cost) instead of deep-
    /// copying the whole page. Off by default — the full-page copy is the
    /// paper's page-copy model; this flag is the measured divergence.
    pub compact_push_copies: bool,
    /// Overload valve: when set, every submission must first acquire an
    /// admission permit from a bounded queue, and excess load is shed
    /// with [`EngineError::Shed`] (see [`AdmissionGate`]). `None` (the
    /// default) admits everything, as before.
    pub admission: Option<AdmissionConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cores: 0,
            workers: 1,
            fifo_capacity: 16,
            out_page_bytes: qs_storage::DEFAULT_PAGE_BYTES,
            initial_workers: 1,
            max_workers: 1024,
            sharing: SharingPolicy::query_centric(),
            compact_push_copies: false,
            admission: None,
        }
    }
}

/// Handle to a submitted query: a stream of result batches, materialized
/// into dense pages at this boundary (the query's *final output* — the
/// one place a sparse selection becomes fresh row bytes for the client).
pub struct QueryTicket {
    query_id: u64,
    schema: Arc<Schema>,
    source: Box<dyn BatchSource>,
    metrics: Arc<Metrics>,
    ctl: Arc<QueryCtl>,
    /// Admission slot, freed when the ticket is dropped (results consumed
    /// or abandoned). `None` when the engine runs without admission.
    _permit: Option<AdmissionPermit>,
    /// Execution-mode label recorded by the router (`None` for pinned
    /// modes — the mode was the submitter's, not a routing decision).
    route: Option<&'static str>,
    /// Opaque resource held for the ticket's lifetime (e.g. the shared
    /// CJOIN admission lease in GQP+SP mode). Dropped with the ticket.
    _hold: Option<Arc<dyn std::any::Any + Send + Sync>>,
}

impl QueryTicket {
    /// Query id.
    pub fn query_id(&self) -> u64 {
        self.query_id
    }

    /// Result schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The query's control block (cancellation flag + deadline).
    pub fn ctl(&self) -> &Arc<QueryCtl> {
        &self.ctl
    }

    /// Cancel the query. Subsequent batch pulls fail with
    /// [`EngineError::Cancelled`]; exclusive (unshared) operator packets
    /// also observe the flag at batch boundaries and abort early.
    pub fn cancel(&self) {
        self.ctl.cancel();
    }

    /// A clonable handle that can cancel this query from another thread
    /// (e.g. a client disconnect watcher) after the ticket moved away.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle::new(self.ctl.clone())
    }

    /// Attach an admission permit so it is released when this ticket
    /// drops. Used by submitters whose producer half runs outside the
    /// engine (the CJOIN integration): [`Engine::submit_consumer_with`]
    /// takes no permit itself, so overload gating there is the caller's
    /// responsibility.
    pub fn with_permit(mut self, permit: AdmissionPermit) -> Self {
        self._permit = Some(permit);
        self
    }

    /// Record the router's mode decision on the ticket.
    pub fn with_route(mut self, route: &'static str) -> Self {
        self.route = Some(route);
        self
    }

    /// The routed execution-mode label, if this query went through the
    /// mode router (`None` when the mode was pinned).
    pub fn route(&self) -> Option<&'static str> {
        self.route
    }

    /// Keep `hold` alive for the ticket's lifetime. Used by `qs-core` to
    /// tie a shared CJOIN admission lease to every interested ticket.
    pub fn with_hold(mut self, hold: Arc<dyn std::any::Any + Send + Sync>) -> Self {
        self._hold = Some(hold);
        self
    }

    /// Pull the next result batch without materializing (zero-copy
    /// consumption for clients that understand selections).
    ///
    /// Cancellation/deadline is enforced here — the *ticket boundary* —
    /// for every execution mode: even when the producing packets are
    /// shared with co-runners (and therefore must keep running), this
    /// query's client observes the typed error immediately.
    pub fn next_batch(&mut self) -> Result<Option<EngineBatch>, EngineError> {
        self.ctl.check()?;
        match self.source.next_batch() {
            Err(e) => {
                // An exclusive producer may observe this query's own
                // cancellation/deadline first and abort the stream; the
                // client should see the typed control error, not the
                // secondhand `Aborted("cancelled")`.
                self.ctl.check()?;
                Err(e)
            }
            Ok(None) => {
                // A shared producer reacts to this query's cancel/deadline
                // by releasing its admission lease, which truncates the
                // stream *cleanly* (the co-runners keep it). The clean end
                // must not mask the typed control error the client asked
                // for — re-check before reporting completion.
                self.ctl.check()?;
                Ok(None)
            }
            ok => ok,
        }
    }

    /// Pull the next result page (pipelined consumption). A full batch
    /// hands back its page as-is; a sparse one is compacted here.
    pub fn next_page(&mut self) -> Result<Option<Arc<Page>>, EngineError> {
        match self.next_batch()? {
            None => Ok(None),
            Some(b) if b.is_full() => Ok(Some(b.page().clone())),
            Some(b) => {
                let mut builder =
                    PageBuilder::with_capacity(b.page().schema().clone(), b.len());
                let mut tb = Vec::new();
                for t in 0..b.len() {
                    let ok = builder.push_encoded(b.tuple_bytes_in(t, &mut tb));
                    debug_assert!(ok);
                }
                Ok(Some(Arc::new(builder.finish())))
            }
        }
    }

    /// Drain the query to completion batch-at-a-time, without compacting
    /// sparse batches into fresh pages; returns the number of result
    /// rows. The cheapest way to consume a query whose rows are counted,
    /// not kept (throughput drivers, smoke clients).
    pub fn drain(mut self) -> Result<u64, EngineError> {
        let mut rows = 0u64;
        while let Some(b) = self.next_batch()? {
            rows += b.len() as u64;
        }
        self.metrics
            .queries_completed
            .fetch_add(1, Ordering::Relaxed);
        Ok(rows)
    }

    /// Drain the query to completion, returning all result pages.
    pub fn collect_pages(mut self) -> Result<Vec<Arc<Page>>, EngineError> {
        let mut out = Vec::new();
        while let Some(p) = self.next_page()? {
            out.push(p);
        }
        self.metrics
            .queries_completed
            .fetch_add(1, Ordering::Relaxed);
        Ok(out)
    }

    /// Drain and decode every result row (boundary/test use).
    pub fn collect_rows(self) -> Result<Vec<Vec<Value>>, EngineError> {
        let pages = self.collect_pages()?;
        Ok(pages.iter().flat_map(|p| p.to_values()).collect())
    }
}

/// The QPipe execution engine.
pub struct QpipeEngine {
    catalog: Arc<Catalog>,
    ctx: Arc<ExecCtx>,
    stages: [Stage; NUM_STAGES],
    config: EngineConfig,
    admission: Option<Arc<AdmissionGate>>,
    next_query_id: AtomicU64,
}

impl QpipeEngine {
    /// Build an engine over a catalog and buffer pool.
    pub fn new(catalog: Arc<Catalog>, pool: Arc<BufferPool>, config: EngineConfig) -> Self {
        let metrics = Metrics::new();
        let governor = CoreGovernor::new(config.cores, metrics.clone());
        let workers = crate::pool::WorkerPool::new(config.workers, metrics.clone());
        let ctx = Arc::new(ExecCtx {
            pool,
            governor,
            metrics,
            workers,
            out_page_bytes: config.out_page_bytes,
        });
        let stages = std::array::from_fn(|i| {
            Stage::new(
                crate::metrics::ALL_STAGES[i],
                ctx.clone(),
                config.initial_workers,
                config.max_workers,
            )
        });
        let admission = config
            .admission
            .clone()
            .map(|c| AdmissionGate::new(c, ctx.metrics.clone()));
        QpipeEngine {
            catalog,
            ctx,
            stages,
            config,
            admission,
            next_query_id: AtomicU64::new(1),
        }
    }

    /// The admission gate, if the engine was configured with one.
    pub fn admission(&self) -> Option<&Arc<AdmissionGate>> {
        self.admission.as_ref()
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The execution context (shared with the CJOIN stage in `qs-core`).
    pub fn ctx(&self) -> &Arc<ExecCtx> {
        &self.ctx
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.ctx.metrics.snapshot()
    }

    /// Live metrics handle.
    pub fn metrics_handle(&self) -> &Arc<Metrics> {
        &self.ctx.metrics
    }

    /// Reset metrics counters (between experiment points).
    pub fn reset_metrics(&self) {
        self.ctx.metrics.reset();
    }

    /// Stage accessor (used by integration layers and tests).
    pub fn stage(&self, kind: StageKind) -> &Stage {
        &self.stages[kind as usize]
    }

    /// Validate and submit a plan; returns the result stream handle.
    pub fn submit(&self, plan: &LogicalPlan) -> Result<QueryTicket, EngineError> {
        self.submit_with(plan, &QueryOpts::default())
    }

    /// [`Self::submit`] with per-query options (deadline).
    pub fn submit_with(
        &self,
        plan: &LogicalPlan,
        opts: &QueryOpts,
    ) -> Result<QueryTicket, EngineError> {
        let mut tickets = self.submit_batch_with(std::slice::from_ref(plan), opts)?;
        Ok(tickets.pop().expect("one ticket per plan"))
    }

    /// Submit several plans as one batch: every packet graph is built (and
    /// registered for SP) *before* any packet starts executing, so
    /// identical sub-plans in the batch always share — even in push mode,
    /// whose window closes at the first produced page. This is the demo's
    /// "clients co-ordinate to submit their queries in batches" knob.
    pub fn submit_batch(&self, plans: &[LogicalPlan]) -> Result<Vec<QueryTicket>, EngineError> {
        self.submit_batch_with(plans, &QueryOpts::default())
    }

    /// [`Self::submit_batch`] with per-query options applied to every plan
    /// in the batch.
    ///
    /// Admission: one permit is acquired *per plan*, all up front, before
    /// any packet is built. A batch larger than the gate's
    /// `max_concurrent` therefore sheds its tail (a batch cannot admit
    /// itself past the concurrency bound — the permits it already holds
    /// only free when its tickets are dropped).
    pub fn submit_batch_with(
        &self,
        plans: &[LogicalPlan],
        opts: &QueryOpts,
    ) -> Result<Vec<QueryTicket>, EngineError> {
        let mut permits = Vec::with_capacity(plans.len());
        if let Some(gate) = &self.admission {
            for _ in plans {
                permits.push(Some(gate.admit()?));
            }
        } else {
            permits.resize_with(plans.len(), || None);
        }
        let policy = opts.sharing.unwrap_or(self.config.sharing);
        let mut pending: Vec<(StageKind, Packet)> = Vec::new();
        let mut tickets = Vec::with_capacity(plans.len());
        for (plan, permit) in plans.iter().zip(&mut permits) {
            plan.validate(&self.catalog)?;
            let schema = plan.output_schema(&self.catalog)?;
            let query_id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
            let ctl = QueryCtl::new(opts, self.ctx.metrics.clone());
            let source = self.build_node(plan, query_id, &ctl, &policy, &mut pending, true)?;
            tickets.push(QueryTicket {
                query_id,
                schema,
                source,
                metrics: self.ctx.metrics.clone(),
                ctl,
                _permit: permit.take(),
                route: None,
                _hold: None,
            });
        }
        for (kind, packet) in pending {
            self.stages[kind as usize].dispatch(packet);
        }
        Ok(tickets)
    }

    /// Submit a plan *around* an externally produced input stream: the
    /// unary operators of `above_plan` are applied to `input`. Used by the
    /// CJOIN integration, where the join chain's output comes from the
    /// GQP and only the aggregation/sort above it runs query-centric.
    pub fn submit_consumer(
        &self,
        above_plan: &LogicalPlan,
        input: Box<dyn BatchSource>,
    ) -> Result<QueryTicket, EngineError> {
        self.submit_consumer_with(above_plan, input, &QueryOpts::default())
    }

    /// [`Self::submit_consumer`] with per-query options. No admission
    /// permit is taken here: CJOIN admission is governed by the GQP's own
    /// slot table, and double-gating the consumer half would deadlock a
    /// full gate against the already-admitted producer half.
    pub fn submit_consumer_with(
        &self,
        above_plan: &LogicalPlan,
        input: Box<dyn BatchSource>,
        opts: &QueryOpts,
    ) -> Result<QueryTicket, EngineError> {
        let schema = above_plan.output_schema(&self.catalog)?;
        let query_id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        let ctl = QueryCtl::new(opts, self.ctx.metrics.clone());
        let source = self.build_above(above_plan, input, query_id, &ctl)?;
        Ok(QueryTicket {
            query_id,
            schema,
            source,
            metrics: self.ctx.metrics.clone(),
            ctl,
            _permit: None,
            route: None,
            _hold: None,
        })
    }

    fn stage_kind(plan: &LogicalPlan) -> StageKind {
        match plan {
            LogicalPlan::Scan { .. } => StageKind::Scan,
            LogicalPlan::Filter { .. } => StageKind::Filter,
            LogicalPlan::HashJoin { .. } => StageKind::Join,
            LogicalPlan::Aggregate { .. } => StageKind::Aggregate,
            LogicalPlan::Sort { .. } => StageKind::Sort,
            LogicalPlan::Project { .. } => StageKind::Project,
            LogicalPlan::Limit { .. } => StageKind::Limit,
            LogicalPlan::Distinct { .. } => StageKind::Distinct,
            LogicalPlan::TopK { .. } => StageKind::TopK,
        }
    }

    fn physical(&self, plan: &LogicalPlan) -> Result<PhysicalOp, EngineError> {
        Ok(match plan {
            LogicalPlan::Scan {
                table,
                predicate,
                projection,
            } => PhysicalOp::Scan {
                table: self.catalog.get(table)?,
                predicate: predicate.clone(),
                projection: projection.clone(),
                out_schema: plan.output_schema(&self.catalog)?,
            },
            LogicalPlan::Filter { predicate, .. } => PhysicalOp::Filter {
                predicate: predicate.clone(),
            },
            LogicalPlan::HashJoin {
                build_key,
                probe_key,
                ..
            } => PhysicalOp::HashJoin {
                build_key: *build_key,
                probe_key: *probe_key,
                out_schema: plan.output_schema(&self.catalog)?,
            },
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => PhysicalOp::Aggregate {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                in_schema: input.output_schema(&self.catalog)?,
                out_schema: plan.output_schema(&self.catalog)?,
                groups_hint: self.groups_hint(input, group_by),
            },
            LogicalPlan::Sort { keys, .. } => PhysicalOp::Sort {
                keys: keys.clone(),
                schema: plan.output_schema(&self.catalog)?,
            },
            LogicalPlan::Project { columns, .. } => PhysicalOp::Project {
                columns: columns.clone(),
                out_schema: plan.output_schema(&self.catalog)?,
            },
            LogicalPlan::Limit { n, .. } => PhysicalOp::Limit {
                n: *n,
                schema: plan.output_schema(&self.catalog)?,
            },
            LogicalPlan::Distinct { .. } => PhysicalOp::Distinct {
                schema: plan.output_schema(&self.catalog)?,
            },
            LogicalPlan::TopK { keys, n, .. } => PhysicalOp::TopK {
                keys: keys.clone(),
                n: *n,
                schema: plan.output_schema(&self.catalog)?,
            },
        })
    }

    /// Expected group count for an aggregation, from base-table column
    /// statistics. Only the dense-int shape (a single `Int` group column
    /// traceable through schema-preserving operators to a base-table
    /// column) is estimated — filters can only shrink the distinct
    /// count, so the table-level figure is a valid capacity bound.
    fn groups_hint(&self, input: &LogicalPlan, group_by: &[usize]) -> Option<usize> {
        if group_by.len() != 1 {
            return None;
        }
        let mut cur = input;
        loop {
            match cur {
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Distinct { input } => cur = input,
                LogicalPlan::Scan {
                    table, projection, ..
                } => {
                    let col = match projection {
                        None => group_by[0],
                        Some(cols) => *cols.get(group_by[0])?,
                    };
                    let t = self.catalog.get(table).ok()?;
                    return t.int_col_stats(col).map(|s| s.distinct);
                }
                _ => return None,
            }
        }
    }

    /// Recursively convert `plan` into packets, applying SP at each stage.
    /// Packets are buffered into `pending` (dispatched by the caller after
    /// the whole batch is built). Returns the stream the parent reads.
    ///
    /// `root` marks the plan's top node, whose output stream becomes the
    /// client-drained [`QueryTicket`]. Root readers get unbounded FIFOs:
    /// clients drain tickets in an arbitrary order, so a shared producer
    /// must never block on one sibling ticket while the client waits on
    /// another (see [`crate::hub::OutputHub::subscribe_with_capacity`]).
    fn build_node(
        &self,
        plan: &LogicalPlan,
        query_id: u64,
        ctl: &Arc<QueryCtl>,
        policy: &SharingPolicy,
        pending: &mut Vec<(StageKind, Packet)>,
        root: bool,
    ) -> Result<Box<dyn BatchSource>, EngineError> {
        let kind = Self::stage_kind(plan);
        let stage = &self.stages[kind as usize];
        let sharing = policy.enabled(kind);
        let reader_capacity = if root {
            crate::hub::UNBOUNDED_CAPACITY
        } else {
            self.config.fifo_capacity
        };

        if sharing {
            let sig = signature(plan);
            if let Some(reader) = stage.registry().try_subscribe(sig, reader_capacity) {
                self.ctx.metrics.sp_hit(kind);
                return Ok(reader);
            }
            self.ctx.metrics.sp_miss(kind);
        }

        // Children first (build side before probe side for joins).
        let mut inputs = Vec::new();
        for child in plan.children() {
            inputs.push(self.build_node(child, query_id, ctl, policy, pending, false)?);
        }

        let op = self.physical(plan)?;
        let mode = if sharing {
            policy.mode
        } else {
            // Unshared packets always use the bounded push pipeline
            // (backpressure); an unshared SPL would buffer without bound.
            ShareMode::Push
        };
        let (hub, primary) = OutputHub::new(
            mode,
            kind,
            reader_capacity,
            self.ctx.metrics.clone(),
            self.ctx.governor.clone(),
        );
        if self.config.compact_push_copies {
            hub.set_compact_copies(true);
        }
        if sharing {
            stage.registry().register(signature(plan), &hub);
        }
        // An SP-registered packet may acquire subscribers from *other*
        // queries at any time, so it must never honor this query's
        // cancellation or deadline mid-stream (a co-runner would lose
        // rows). Those queries still observe control at the ticket
        // boundary. Only packets that can never be shared run exclusive.
        let exclusive = !sharing;
        pending.push((
            kind,
            Packet {
                query_id,
                op,
                inputs,
                hub,
                ctl: exclusive.then(|| ctl.clone()),
                exclusive,
            },
        ));
        Ok(primary)
    }

    /// Build only the unary operators of `plan` above an external input.
    /// `plan` must be a chain of unary operators whose (transitive) leaf
    /// input produces the `input` stream's schema.
    fn build_above(
        &self,
        plan: &LogicalPlan,
        input: Box<dyn BatchSource>,
        query_id: u64,
        ctl: &Arc<QueryCtl>,
    ) -> Result<Box<dyn BatchSource>, EngineError> {
        // Collect the unary chain top-down, then build bottom-up from the
        // external input.
        let mut chain: Vec<&LogicalPlan> = Vec::new();
        let mut cur = plan;
        // Leaf marker (scan or join) ends the chain: replaced by `input`.
        while let LogicalPlan::Filter { input: i, .. }
        | LogicalPlan::Aggregate { input: i, .. }
        | LogicalPlan::Sort { input: i, .. }
        | LogicalPlan::Project { input: i, .. }
        | LogicalPlan::Limit { input: i, .. }
        | LogicalPlan::Distinct { input: i }
        | LogicalPlan::TopK { input: i, .. } = cur
        {
            chain.push(cur);
            cur = i;
        }
        let mut source = input;
        let chain_len = chain.len();
        for (i, node) in chain.into_iter().rev().enumerate() {
            let kind = Self::stage_kind(node);
            let op = self.physical(node)?;
            // The last operator feeds the client-drained ticket: unbounded
            // (see build_node's liveness rule).
            let capacity = if i + 1 == chain_len {
                crate::hub::UNBOUNDED_CAPACITY
            } else {
                self.config.fifo_capacity
            };
            let (hub, primary) = OutputHub::new(
                ShareMode::Push,
                kind,
                capacity,
                self.ctx.metrics.clone(),
                self.ctx.governor.clone(),
            );
            // Consumer chains are always per-query (never SP-registered),
            // so they honor cancellation/deadline at batch boundaries.
            self.stages[kind as usize].dispatch(Packet {
                query_id,
                op,
                inputs: vec![source],
                hub,
                ctl: Some(ctl.clone()),
                exclusive: true,
            });
            source = primary;
        }
        Ok(source)
    }
}
