//! Group-key → dense-slot resolution, compiled once per grouping spec —
//! the shared registry behind the engine's `Aggregate` operator and the
//! CJOIN `SharedAggregator`'s grouping classes.
//!
//! Hash aggregation's irreducible cost is one key probe per surviving
//! tuple. What is *not* irreducible is paying a `Vec<u8>` allocation and
//! a SipHash bucket walk for every probe, which is what the byte-key
//! `HashMap<Vec<u8>, u32>` registries both consumers used until PR 5. A
//! [`GroupTable`] compiles the group-by column set against the input
//! schema once and picks the cheapest resolution tier the key shape
//! admits:
//!
//! * [`GroupTier::DenseInt`] — a single `Int` group column. The key is
//!   read in place from the row bytes and probed through a flat
//!   open-addressing [`FlatMap<i64>`] (SplitMix64 + linear probing): no
//!   key bytes are ever built per tuple.
//! * [`GroupTier::Packed`] — any fixed-width column combination whose
//!   concatenated key fits 16 bytes (e.g. two `Int`s, `Int`+`Date`,
//!   short `Char`s). Key bytes are packed into one `u128` on the stack
//!   and probed through a [`FlatMap<u128>`] — again zero allocation per
//!   tuple.
//! * [`GroupTier::ByteKey`] — the arbitrary-shape fallback: the familiar
//!   `HashMap<Vec<u8>, u32>`, but extracting into one reused scratch
//!   buffer; allocation happens only when a *new group* is interned.
//!
//! All three tiers assign slots in **first-touch order**, so every
//! consumer's output row order is bit-identical to the pre-PR-5
//! registries — pinned by the oracle proptests in
//! `crates/engine/tests/group_props.rs` and the extended five-mode
//! differential fuzzer.
//!
//! Resolution is batch-at-a-time ([`GroupTable::resolve_batch`] /
//! [`GroupTable::resolve_rows`]) with caller-owned scratch, and
//! [`GroupTable::radix_partition`] lays a batch out as hash-radix
//! buckets — the partitioned-grouping layout the ROADMAP's parallel
//! resolution follow-on will fan out across workers (each bucket's keys
//! land in disjoint table regions), without this PR committing to the
//! extra threads yet.

use qs_storage::flat::{mix64, FlatKey, FlatMap};
use qs_storage::row::read_i64_at;
use qs_storage::{ColumnPage, DataType, FactBatch, Page, Schema};
use std::collections::HashMap;

/// The resolution strategy a [`GroupTable`] compiled to — exposed so
/// tests (and the differential fuzzer) can assert which tier a grouping
/// shape exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupTier {
    /// Single `Int` group column probed as a raw `i64`.
    DenseInt,
    /// Fixed-width multi-column key packed into a `u128` (≤ 16 bytes).
    Packed,
    /// Arbitrary key shape through the byte-key `HashMap` fallback.
    ByteKey,
}

/// Widest concatenated key (bytes) the packed tier can hold.
const PACK_BYTES: usize = 16;

enum TierState {
    DenseInt {
        /// Byte offset of the group column within a row.
        off: usize,
        /// Column index (for columnar pages, where there is no row offset).
        col: usize,
        map: FlatMap<i64>,
    },
    Packed {
        map: FlatMap<u128>,
    },
    ByteKey {
        map: HashMap<Vec<u8>, u32>,
        /// Per-tuple extraction scratch — the fallback's own fix for the
        /// old per-tuple `Vec::with_capacity(key_size)`.
        key_buf: Vec<u8>,
    },
}

/// A group-by spec compiled against its input schema: key extraction
/// spans plus the tier-specific probe table. Slots are dense `u32`s in
/// first-touch order; [`Self::key_bytes`] recovers the encoded key of a
/// slot for result emission.
pub struct GroupTable {
    /// `(byte offset, width)` of each group column within a row.
    spans: Vec<(usize, usize)>,
    /// Group column indices (the columnar path extracts by column, not
    /// by row offset).
    cols: Vec<usize>,
    key_size: usize,
    state: TierState,
    /// Slot → encoded key bytes, in first-touch order.
    keys: Vec<Vec<u8>>,
    /// Columnar-path key assembly scratch.
    cell_buf: Vec<u8>,
}

impl GroupTable {
    /// The tier [`Self::compile`] picks for `group_by` over `schema` —
    /// pure classification, usable by tests and plan generators to know
    /// which resolution path a grouping shape lands on.
    pub fn tier_for(group_by: &[usize], schema: &Schema) -> GroupTier {
        if group_by.len() == 1 && schema.dtype(group_by[0]) == DataType::Int {
            return GroupTier::DenseInt;
        }
        let key_size: usize = group_by.iter().map(|&c| schema.dtype(c).width()).sum();
        if key_size <= PACK_BYTES {
            GroupTier::Packed
        } else {
            GroupTier::ByteKey
        }
    }

    /// Compile `group_by` against `schema`. Every page later resolved
    /// must carry exactly this schema.
    pub fn compile(group_by: &[usize], schema: &Schema) -> GroupTable {
        Self::compile_with_hint(group_by, schema, None)
    }

    /// Like [`Self::compile`] but pre-sizes the probe table for an
    /// expected group count (e.g. from table column statistics), so the
    /// hot resolution loop never pays a rehash-and-grow mid-stream.
    pub fn compile_with_hint(
        group_by: &[usize],
        schema: &Schema,
        groups_hint: Option<usize>,
    ) -> GroupTable {
        let spans: Vec<(usize, usize)> = group_by
            .iter()
            .map(|&c| (schema.offset(c), schema.dtype(c).width()))
            .collect();
        let key_size = spans.iter().map(|&(_, w)| w).sum();
        let cap = groups_hint.unwrap_or(0).clamp(64, 1 << 20);
        let state = match Self::tier_for(group_by, schema) {
            GroupTier::DenseInt => TierState::DenseInt {
                off: spans[0].0,
                col: group_by[0],
                map: FlatMap::with_capacity(cap),
            },
            GroupTier::Packed => TierState::Packed {
                map: FlatMap::with_capacity(cap),
            },
            GroupTier::ByteKey => TierState::ByteKey {
                map: HashMap::with_capacity(cap),
                key_buf: Vec::with_capacity(key_size),
            },
        };
        GroupTable {
            spans,
            cols: group_by.to_vec(),
            key_size,
            state,
            keys: Vec::with_capacity(groups_hint.unwrap_or(0)),
            cell_buf: Vec::with_capacity(key_size),
        }
    }

    /// The tier this table resolves through.
    pub fn tier(&self) -> GroupTier {
        match self.state {
            TierState::DenseInt { .. } => GroupTier::DenseInt,
            TierState::Packed { .. } => GroupTier::Packed,
            TierState::ByteKey { .. } => GroupTier::ByteKey,
        }
    }

    /// Number of distinct groups interned so far.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no group has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Concatenated key bytes (kept in first-touch order).
    pub fn key_size(&self) -> usize {
        self.key_size
    }

    /// Encoded key bytes of group `slot` — the raw column bytes in
    /// group-by order, exactly what result emission copies into the
    /// output row prefix.
    #[inline]
    pub fn key_bytes(&self, slot: usize) -> &[u8] {
        &self.keys[slot]
    }

    /// Resolve every surviving tuple of `batch` to its dense group slot:
    /// `out[i]` is the slot of batch tuple `i`. `out` is cleared first
    /// and reused across batches; tiers [`GroupTier::DenseInt`] and
    /// [`GroupTier::Packed`] allocate nothing per tuple, the fallback
    /// allocates only when a new group is interned.
    pub fn resolve_batch(&mut self, batch: &FactBatch, out: &mut Vec<u32>) {
        self.resolve_rows(batch.page(), batch.sel(), out);
    }

    /// Resolve page rows `rows` (any order, any subset) to dense group
    /// slots — the form the CJOIN shared-aggregation classes use, where
    /// each class resolves only the tuples relevant to its member
    /// queries.
    pub fn resolve_rows(&mut self, page: &Page, rows: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(rows.len());
        if let Some(cp) = page.column_page() {
            self.resolve_rows_columnar(cp, rows, out);
            return;
        }
        let data = page.raw();
        let rs = page.schema().row_size();
        let keys = &mut self.keys;
        match &mut self.state {
            TierState::DenseInt { off, map, .. } => {
                let off = *off;
                for &r in rows {
                    let k = read_i64_at(data, r as usize * rs + off);
                    let slot = map.get_or_insert_with(k, || {
                        keys.push(k.to_le_bytes().to_vec());
                        (keys.len() - 1) as u32
                    });
                    out.push(slot);
                }
            }
            TierState::Packed { map } => {
                let spans = &self.spans;
                let key_size = self.key_size;
                for &r in rows {
                    let row = &data[r as usize * rs..(r as usize + 1) * rs];
                    let mut buf = [0u8; PACK_BYTES];
                    let mut p = 0usize;
                    for &(off, w) in spans {
                        buf[p..p + w].copy_from_slice(&row[off..off + w]);
                        p += w;
                    }
                    let k = u128::from_le_bytes(buf);
                    let slot = map.get_or_insert_with(k, || {
                        keys.push(buf[..key_size].to_vec());
                        (keys.len() - 1) as u32
                    });
                    out.push(slot);
                }
            }
            TierState::ByteKey { map, key_buf } => {
                let spans = &self.spans;
                for &r in rows {
                    let row = &data[r as usize * rs..(r as usize + 1) * rs];
                    key_buf.clear();
                    for &(off, w) in spans {
                        key_buf.extend_from_slice(&row[off..off + w]);
                    }
                    let slot = match map.get(key_buf.as_slice()) {
                        Some(&s) => s,
                        None => {
                            let s = keys.len() as u32;
                            let owned = key_buf.clone();
                            keys.push(owned.clone());
                            map.insert(owned, s);
                            s
                        }
                    };
                    out.push(slot);
                }
            }
        }
    }

    /// Columnar twin of the row-major resolution body: keys are read
    /// straight from the column arrays (`i64_at` for the dense-int tier,
    /// per-column `extend_cell` otherwise) — no row needs to exist in
    /// encoded form. Tier, slot numbering, and first-touch order are
    /// identical to the row-major path.
    fn resolve_rows_columnar(&mut self, cp: &ColumnPage, rows: &[u32], out: &mut Vec<u32>) {
        let keys = &mut self.keys;
        match &mut self.state {
            TierState::DenseInt { col, map, .. } => {
                let arr = cp.array(*col);
                for &r in rows {
                    let k = arr.i64_at(r as usize);
                    let slot = map.get_or_insert_with(k, || {
                        keys.push(k.to_le_bytes().to_vec());
                        (keys.len() - 1) as u32
                    });
                    out.push(slot);
                }
            }
            TierState::Packed { map } => {
                let cols = &self.cols;
                let key_size = self.key_size;
                let cell = &mut self.cell_buf;
                for &r in rows {
                    cell.clear();
                    for &c in cols {
                        cp.array(c).extend_cell(r as usize, cell);
                    }
                    let mut buf = [0u8; PACK_BYTES];
                    buf[..key_size].copy_from_slice(cell);
                    let slot = map.get_or_insert_with(u128::from_le_bytes(buf), || {
                        keys.push(cell.clone());
                        (keys.len() - 1) as u32
                    });
                    out.push(slot);
                }
            }
            TierState::ByteKey { map, key_buf } => {
                let cols = &self.cols;
                for &r in rows {
                    key_buf.clear();
                    for &c in cols {
                        cp.array(c).extend_cell(r as usize, key_buf);
                    }
                    let slot = match map.get(key_buf.as_slice()) {
                        Some(&s) => s,
                        None => {
                            let s = keys.len() as u32;
                            let owned = key_buf.clone();
                            keys.push(owned.clone());
                            map.insert(owned, s);
                            s
                        }
                    };
                    out.push(slot);
                }
            }
        }
    }

    /// Intern an already-encoded key (concatenated group-column bytes,
    /// exactly [`Self::key_size`] long) and return its slot — the entry
    /// point for the scalar-aggregate bootstrap (empty key over empty
    /// input) and for oracles that replay recorded keys.
    pub fn intern_key(&mut self, key: &[u8]) -> u32 {
        debug_assert_eq!(key.len(), self.key_size);
        let keys = &mut self.keys;
        match &mut self.state {
            TierState::DenseInt { map, .. } => {
                let k = i64::from_le_bytes(key.try_into().expect("8-byte Int key"));
                map.get_or_insert_with(k, || {
                    keys.push(key.to_vec());
                    (keys.len() - 1) as u32
                })
            }
            TierState::Packed { map } => {
                let mut buf = [0u8; PACK_BYTES];
                buf[..key.len()].copy_from_slice(key);
                map.get_or_insert_with(u128::from_le_bytes(buf), || {
                    keys.push(key.to_vec());
                    (keys.len() - 1) as u32
                })
            }
            TierState::ByteKey { map, .. } => match map.get(key) {
                Some(&s) => s,
                None => {
                    let s = keys.len() as u32;
                    map.insert(key.to_vec(), s);
                    keys.push(key.to_vec());
                    s
                }
            },
        }
    }

    /// Hash-radix layout of one batch: bucket the rows of `rows` by the
    /// top [`RadixScratch::BITS`] bits of their key hash into
    /// `scratch.buckets`. Rows with equal keys always land in the same
    /// bucket, so each bucket could be resolved by an independent worker
    /// against a private table — the parallel-resolution layout the
    /// ROADMAP files as a follow-on. Resolution itself stays sequential
    /// (and first-touch ordering untouched) until that lands.
    pub fn radix_partition(&self, page: &Page, rows: &[u32], scratch: &mut RadixScratch) {
        scratch.hashes.clear();
        scratch.hashes.reserve(rows.len());
        if let Some(cp) = page.column_page() {
            let mut cell: Vec<u8> = Vec::with_capacity(self.key_size);
            match &self.state {
                TierState::DenseInt { col, .. } => {
                    let arr = cp.array(*col);
                    for &r in rows {
                        scratch.hashes.push(arr.i64_at(r as usize).mix());
                    }
                }
                TierState::Packed { .. } => {
                    for &r in rows {
                        cell.clear();
                        for &c in &self.cols {
                            cp.array(c).extend_cell(r as usize, &mut cell);
                        }
                        let mut buf = [0u8; PACK_BYTES];
                        buf[..cell.len()].copy_from_slice(&cell);
                        scratch.hashes.push(u128::from_le_bytes(buf).mix());
                    }
                }
                TierState::ByteKey { .. } => {
                    for &r in rows {
                        cell.clear();
                        for &c in &self.cols {
                            cp.array(c).extend_cell(r as usize, &mut cell);
                        }
                        let mut h = 0xcbf2_9ce4_8422_2325u64;
                        for &b in &cell {
                            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                        }
                        scratch.hashes.push(mix64(h));
                    }
                }
            }
            for b in &mut scratch.buckets {
                b.clear();
            }
            for (i, &h) in scratch.hashes.iter().enumerate() {
                let part = (h >> (64 - RadixScratch::BITS)) as usize;
                scratch.buckets[part].push(rows[i]);
            }
            return;
        }
        let data = page.raw();
        let rs = page.schema().row_size();
        match &self.state {
            TierState::DenseInt { off, .. } => {
                for &r in rows {
                    scratch
                        .hashes
                        .push(read_i64_at(data, r as usize * rs + off).mix());
                }
            }
            TierState::Packed { .. } => {
                for &r in rows {
                    let row = &data[r as usize * rs..(r as usize + 1) * rs];
                    let mut buf = [0u8; PACK_BYTES];
                    let mut p = 0usize;
                    for &(off, w) in &self.spans {
                        buf[p..p + w].copy_from_slice(&row[off..off + w]);
                        p += w;
                    }
                    scratch.hashes.push(u128::from_le_bytes(buf).mix());
                }
            }
            TierState::ByteKey { .. } => {
                for &r in rows {
                    let row = &data[r as usize * rs..(r as usize + 1) * rs];
                    // FNV-1a over the key spans, SplitMix-finished so the
                    // top radix bits avalanche like the flat tiers'.
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for &(off, w) in &self.spans {
                        for &b in &row[off..off + w] {
                            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                        }
                    }
                    scratch.hashes.push(mix64(h));
                }
            }
        }
        for b in &mut scratch.buckets {
            b.clear();
        }
        for (i, &h) in scratch.hashes.iter().enumerate() {
            let part = (h >> (64 - RadixScratch::BITS)) as usize;
            scratch.buckets[part].push(rows[i]);
        }
    }
}

/// Reusable buckets for [`GroupTable::radix_partition`].
pub struct RadixScratch {
    /// Per-row key hashes of the last partitioned batch.
    pub hashes: Vec<u64>,
    /// Row buckets, `1 << BITS` of them.
    pub buckets: Vec<Vec<u32>>,
}

impl RadixScratch {
    /// Radix width: 16 buckets — enough fan-out for the core counts this
    /// container family sees, small enough that per-batch bucket clears
    /// stay free.
    pub const BITS: usize = 4;

    /// Empty scratch with all buckets allocated.
    pub fn new() -> RadixScratch {
        RadixScratch {
            hashes: Vec::new(),
            buckets: (0..1usize << Self::BITS).map(|_| Vec::new()).collect(),
        }
    }
}

impl Default for RadixScratch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_storage::Value;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("i", DataType::Int),
            ("d", DataType::Date),
            ("c", DataType::Char(3)),
            ("wide", DataType::Char(20)),
            ("j", DataType::Int),
        ])
    }

    fn page(rows: &[(i64, u32, &str, &str, i64)]) -> Page {
        let vals: Vec<Vec<Value>> = rows
            .iter()
            .map(|&(i, d, c, w, j)| {
                vec![
                    Value::Int(i),
                    Value::Date(d),
                    Value::Str(c.into()),
                    Value::Str(w.into()),
                    Value::Int(j),
                ]
            })
            .collect();
        Page::from_values(&schema(), &vals).unwrap()
    }

    #[test]
    fn tier_selection_by_shape() {
        let s = schema();
        assert_eq!(GroupTable::tier_for(&[0], &s), GroupTier::DenseInt);
        assert_eq!(GroupTable::tier_for(&[4], &s), GroupTier::DenseInt);
        assert_eq!(GroupTable::tier_for(&[1], &s), GroupTier::Packed); // single Date
        assert_eq!(GroupTable::tier_for(&[0, 4], &s), GroupTier::Packed); // 16 B
        assert_eq!(GroupTable::tier_for(&[1, 2], &s), GroupTier::Packed); // 7 B
        assert_eq!(GroupTable::tier_for(&[], &s), GroupTier::Packed); // scalar
        assert_eq!(GroupTable::tier_for(&[3], &s), GroupTier::ByteKey); // 20 B
        assert_eq!(GroupTable::tier_for(&[0, 1, 4], &s), GroupTier::ByteKey); // 20 B
    }

    #[test]
    fn first_touch_order_all_tiers() {
        let p = page(&[
            (5, 20260101, "aa", "left-padded-wide-00", -1),
            (3, 20260102, "bb", "left-padded-wide-01", -1),
            (5, 20260101, "aa", "left-padded-wide-00", -1),
            (i64::MIN, 20260103, "cc", "left-padded-wide-02", 7),
            (3, 20260102, "bb", "left-padded-wide-01", -1),
        ]);
        let rows: Vec<u32> = (0..5).collect();
        for group_by in [vec![0], vec![1, 2], vec![3]] {
            let mut t = GroupTable::compile(&group_by, &schema());
            let mut slots = Vec::new();
            t.resolve_rows(&p, &rows, &mut slots);
            assert_eq!(slots, vec![0, 1, 0, 2, 1], "{group_by:?}");
            assert_eq!(t.len(), 3);
            // Resolving again yields the same slots, no new groups.
            t.resolve_rows(&p, &rows, &mut slots);
            assert_eq!(slots, vec![0, 1, 0, 2, 1]);
            assert_eq!(t.len(), 3);
        }
    }

    #[test]
    fn columnar_resolution_matches_row_major() {
        let p = page(&[
            (5, 20260101, "aa", "left-padded-wide-00", -1),
            (3, 20260102, "bb", "left-padded-wide-01", -1),
            (5, 20260101, "aa", "left-padded-wide-00", -1),
            (i64::MIN, 20260103, "cc", "left-padded-wide-02", 7),
            (3, 20260102, "bb", "left-padded-wide-01", -1),
        ]);
        let c = p.to_columnar();
        let rows: Vec<u32> = (0..5).collect();
        for group_by in [vec![0], vec![1, 2], vec![3]] {
            let mut tr = GroupTable::compile(&group_by, &schema());
            let mut tc = GroupTable::compile_with_hint(&group_by, &schema(), Some(8));
            assert_eq!(tr.tier(), tc.tier());
            let (mut sr, mut sc) = (Vec::new(), Vec::new());
            tr.resolve_rows(&p, &rows, &mut sr);
            tc.resolve_rows(&c, &rows, &mut sc);
            assert_eq!(sr, sc, "{group_by:?}");
            assert_eq!(tr.len(), tc.len());
            for g in 0..tr.len() {
                assert_eq!(tr.key_bytes(g), tc.key_bytes(g));
            }
            let (mut a, mut b) = (RadixScratch::new(), RadixScratch::new());
            tr.radix_partition(&p, &rows, &mut a);
            tc.radix_partition(&c, &rows, &mut b);
            assert_eq!(a.buckets, b.buckets, "{group_by:?}");
        }
    }

    #[test]
    fn key_bytes_roundtrip() {
        let p = page(&[(42, 19991231, "xy", "w", -9)]);
        let mut t = GroupTable::compile(&[0, 1], &schema());
        let mut slots = Vec::new();
        t.resolve_rows(&p, &[0], &mut slots);
        assert_eq!(slots, [0]);
        let key = t.key_bytes(0);
        assert_eq!(key.len(), 12);
        assert_eq!(i64::from_le_bytes(key[..8].try_into().unwrap()), 42);
        assert_eq!(u32::from_le_bytes(key[8..].try_into().unwrap()), 19991231);
    }

    #[test]
    fn intern_key_matches_resolution() {
        let p = page(&[(7, 1, "a", "w", 0)]);
        let mut t = GroupTable::compile(&[0], &schema());
        let slot = t.intern_key(&7i64.to_le_bytes());
        assert_eq!(slot, 0);
        let mut slots = Vec::new();
        t.resolve_rows(&p, &[0], &mut slots);
        assert_eq!(slots, [0]); // same group, not a new slot
        assert_eq!(t.len(), 1);
        // Scalar bootstrap: empty key over an empty-group_by table.
        let mut scalar = GroupTable::compile(&[], &schema());
        assert_eq!(scalar.intern_key(&[]), 0);
        assert_eq!(scalar.intern_key(&[]), 0);
        assert_eq!(scalar.len(), 1);
    }

    #[test]
    fn resolve_batch_uses_selection() {
        let p = Arc::new(page(&[
            (1, 0, "a", "w", 0),
            (2, 0, "a", "w", 0),
            (1, 0, "a", "w", 0),
            (3, 0, "a", "w", 0),
        ]));
        let fb = FactBatch::new(p, vec![1, 3], Vec::new());
        let mut t = GroupTable::compile(&[0], &schema());
        let mut slots = Vec::new();
        t.resolve_batch(&fb, &mut slots);
        assert_eq!(slots, [0, 1]); // keys 2 then 3; row 0/2 never touched
        assert_eq!(t.key_bytes(0), &2i64.to_le_bytes());
    }

    #[test]
    fn radix_partition_is_stable_and_complete() {
        let rows: Vec<(i64, u32, &str, &str, i64)> = (0..64)
            .map(|i| (i % 7, 20260101 + (i as u32 % 3), "kk", "wide-key-payload-xx", i))
            .collect();
        let p = page(&rows);
        let all: Vec<u32> = (0..64).collect();
        for group_by in [vec![0], vec![0, 1], vec![3]] {
            let t = GroupTable::compile(&group_by, &schema());
            let mut scratch = RadixScratch::new();
            t.radix_partition(&p, &all, &mut scratch);
            let mut seen: Vec<u32> =
                scratch.buckets.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, all, "{group_by:?}: buckets must partition the batch");
            // Equal keys must share a bucket: map key → bucket and check.
            let mut by_key: HashMap<Vec<u8>, usize> = HashMap::new();
            for (b, bucket) in scratch.buckets.iter().enumerate() {
                for &r in bucket {
                    let row = p.row(r as usize);
                    let mut key = Vec::new();
                    for &c in &group_by {
                        let off = schema().offset(c);
                        let w = schema().dtype(c).width();
                        key.extend_from_slice(&row.bytes()[off..off + w]);
                    }
                    let prev = by_key.insert(key, b);
                    if let Some(prev) = prev {
                        assert_eq!(prev, b, "equal keys split across buckets");
                    }
                }
            }
        }
    }
}
