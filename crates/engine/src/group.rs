//! Group-key → dense-slot resolution, compiled once per grouping spec —
//! the shared registry behind the engine's `Aggregate` operator and the
//! CJOIN `SharedAggregator`'s grouping classes.
//!
//! Hash aggregation's irreducible cost is one key probe per surviving
//! tuple. What is *not* irreducible is paying a `Vec<u8>` allocation and
//! a SipHash bucket walk for every probe, which is what the byte-key
//! `HashMap<Vec<u8>, u32>` registries both consumers used until PR 5. A
//! [`GroupTable`] compiles the group-by column set against the input
//! schema once and picks the cheapest resolution tier the key shape
//! admits:
//!
//! * [`GroupTier::DenseInt`] — a single `Int` group column. The key is
//!   read in place from the row bytes and probed through a flat
//!   open-addressing [`FlatMap<i64>`] (SplitMix64 + linear probing): no
//!   key bytes are ever built per tuple.
//! * [`GroupTier::Packed`] — any fixed-width column combination whose
//!   concatenated key fits 16 bytes (e.g. two `Int`s, `Int`+`Date`,
//!   short `Char`s). Key bytes are packed into one `u128` on the stack
//!   and probed through a [`FlatMap<u128>`] — again zero allocation per
//!   tuple.
//! * [`GroupTier::ByteKey`] — the arbitrary-shape fallback: keys are
//!   extracted into one reused scratch buffer, hashed (FNV-1a +
//!   SplitMix finish), and chained through a flat hash → head-slot map;
//!   the key bytes themselves are interned into the table's shared
//!   arena, so a new group costs an arena append and a handle push
//!   instead of the two owned `Vec<u8>` allocations the pre-PR-8
//!   `HashMap<Vec<u8>, u32>` fallback paid.
//!
//! All three tiers assign slots in **first-touch order**, so every
//! consumer's output row order is bit-identical to the pre-PR-5
//! registries — pinned by the oracle proptests in
//! `crates/engine/tests/group_props.rs` and the extended five-mode
//! differential fuzzer.
//!
//! Resolution is batch-at-a-time ([`GroupTable::resolve_batch`] /
//! [`GroupTable::resolve_rows`]) with caller-owned scratch.
//! [`GroupTable::radix_partition`] lays a batch out as hash-radix
//! buckets (equal keys never split across buckets), and
//! [`GroupTable::resolve_rows_parallel`] cashes that layout in: each
//! bucket is resolved against a private sub-table on its own
//! [`crate::pool::WorkerPool`] morsel, then a sequential renumbering
//! pass walks the batch in original row order and interns each
//! sub-table key at first sight — so the dense slot numbering (and
//! therefore every consumer's output bytes) is **identical** to the
//! single-threaded path, batch after batch. Batches smaller than
//! [`PARALLEL_MIN_ROWS`] skip the fan-out entirely.

use crate::error::EngineError;
use crate::pool::{Task, WorkerPool};
use qs_storage::flat::{mix64, FlatKey, FlatMap};
use qs_storage::row::read_i64_at;
use qs_storage::{ColumnPage, DataType, FactBatch, Page, Schema};

/// The resolution strategy a [`GroupTable`] compiled to — exposed so
/// tests (and the differential fuzzer) can assert which tier a grouping
/// shape exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupTier {
    /// Single `Int` group column probed as a raw `i64`.
    DenseInt,
    /// Fixed-width multi-column key packed into a `u128` (≤ 16 bytes).
    Packed,
    /// Arbitrary key shape through the byte-key `HashMap` fallback.
    ByteKey,
}

/// Widest concatenated key (bytes) the packed tier can hold.
const PACK_BYTES: usize = 16;

enum TierState {
    DenseInt {
        /// Byte offset of the group column within a row.
        off: usize,
        /// Column index (for columnar pages, where there is no row offset).
        col: usize,
        map: FlatMap<i64>,
    },
    Packed {
        map: FlatMap<u128>,
    },
    ByteKey {
        /// Key hash → head slot of the collision chain. Key bytes live in
        /// the table-wide arena; equality walks the chain via `next`.
        map: FlatMap<i64>,
        /// Per-slot chain link (`u32::MAX` ends a chain).
        next: Vec<u32>,
        /// Per-tuple extraction scratch — the fallback's own fix for the
        /// old per-tuple `Vec::with_capacity(key_size)`.
        key_buf: Vec<u8>,
    },
}

/// FNV-1a over raw key bytes — the byte-key tier's pre-mix hash (shared
/// with the radix partitioner so bucket assignment and chain hashing
/// agree).
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Intern `key` into the arena and return its new slot.
#[inline]
fn push_key(arena: &mut Vec<u8>, handles: &mut Vec<(u32, u32)>, key: &[u8]) -> u32 {
    let off = arena.len() as u32;
    arena.extend_from_slice(key);
    handles.push((off, key.len() as u32));
    (handles.len() - 1) as u32
}

/// Byte-key resolution primitive: find `key`'s slot through the hash
/// chain, interning it into the arena on a miss (first-touch slot
/// assignment, same as the flat tiers' `get_or_insert_with`).
fn bytekey_slot(
    map: &mut FlatMap<i64>,
    next: &mut Vec<u32>,
    arena: &mut Vec<u8>,
    handles: &mut Vec<(u32, u32)>,
    key: &[u8],
) -> u32 {
    let h = mix64(fnv1a(key)) as i64;
    let head = map.get(h);
    let mut cur = head;
    while let Some(s) = cur {
        let (off, len) = handles[s as usize];
        if &arena[off as usize..(off + len) as usize] == key {
            return s;
        }
        let n = next[s as usize];
        cur = (n != u32::MAX).then_some(n);
    }
    let s = push_key(arena, handles, key);
    next.push(head.unwrap_or(u32::MAX));
    map.insert(h, s);
    s
}

/// A group-by spec compiled against its input schema: key extraction
/// spans plus the tier-specific probe table. Slots are dense `u32`s in
/// first-touch order; [`Self::key_bytes`] recovers the encoded key of a
/// slot for result emission.
pub struct GroupTable {
    /// `(byte offset, width)` of each group column within a row.
    spans: Vec<(usize, usize)>,
    /// Group column indices (the columnar path extracts by column, not
    /// by row offset).
    cols: Vec<usize>,
    key_size: usize,
    state: TierState,
    /// Interned key bytes of every slot, concatenated in first-touch
    /// order — one arena instead of one `Vec<u8>` per group.
    key_arena: Vec<u8>,
    /// Slot → `(offset, len)` handle into `key_arena`.
    key_spans: Vec<(u32, u32)>,
    /// Columnar-path key assembly scratch.
    cell_buf: Vec<u8>,
}

impl GroupTable {
    /// The tier [`Self::compile`] picks for `group_by` over `schema` —
    /// pure classification, usable by tests and plan generators to know
    /// which resolution path a grouping shape lands on.
    pub fn tier_for(group_by: &[usize], schema: &Schema) -> GroupTier {
        if group_by.len() == 1 && schema.dtype(group_by[0]) == DataType::Int {
            return GroupTier::DenseInt;
        }
        let key_size: usize = group_by.iter().map(|&c| schema.dtype(c).width()).sum();
        if key_size <= PACK_BYTES {
            GroupTier::Packed
        } else {
            GroupTier::ByteKey
        }
    }

    /// Compile `group_by` against `schema`. Every page later resolved
    /// must carry exactly this schema.
    pub fn compile(group_by: &[usize], schema: &Schema) -> GroupTable {
        Self::compile_with_hint(group_by, schema, None)
    }

    /// Like [`Self::compile`] but pre-sizes the probe table for an
    /// expected group count (e.g. from table column statistics), so the
    /// hot resolution loop never pays a rehash-and-grow mid-stream.
    pub fn compile_with_hint(
        group_by: &[usize],
        schema: &Schema,
        groups_hint: Option<usize>,
    ) -> GroupTable {
        let spans: Vec<(usize, usize)> = group_by
            .iter()
            .map(|&c| (schema.offset(c), schema.dtype(c).width()))
            .collect();
        let key_size = spans.iter().map(|&(_, w)| w).sum();
        let cap = groups_hint.unwrap_or(0).clamp(64, 1 << 20);
        let state = match Self::tier_for(group_by, schema) {
            GroupTier::DenseInt => TierState::DenseInt {
                off: spans[0].0,
                col: group_by[0],
                map: FlatMap::with_capacity(cap),
            },
            GroupTier::Packed => TierState::Packed {
                map: FlatMap::with_capacity(cap),
            },
            GroupTier::ByteKey => TierState::ByteKey {
                map: FlatMap::with_capacity(cap),
                next: Vec::with_capacity(cap),
                key_buf: Vec::with_capacity(key_size),
            },
        };
        GroupTable {
            spans,
            cols: group_by.to_vec(),
            key_size,
            state,
            key_arena: Vec::with_capacity(groups_hint.unwrap_or(0) * key_size),
            key_spans: Vec::with_capacity(groups_hint.unwrap_or(0)),
            cell_buf: Vec::with_capacity(key_size),
        }
    }

    /// An empty table with the same compiled spec (spans, columns, tier)
    /// — the private sub-table each radix bucket resolves against on the
    /// parallel path.
    fn fresh(&self) -> GroupTable {
        let state = match &self.state {
            TierState::DenseInt { off, col, .. } => TierState::DenseInt {
                off: *off,
                col: *col,
                map: FlatMap::with_capacity(64),
            },
            TierState::Packed { .. } => TierState::Packed {
                map: FlatMap::with_capacity(64),
            },
            TierState::ByteKey { .. } => TierState::ByteKey {
                map: FlatMap::with_capacity(64),
                next: Vec::new(),
                key_buf: Vec::new(),
            },
        };
        GroupTable {
            spans: self.spans.clone(),
            cols: self.cols.clone(),
            key_size: self.key_size,
            state,
            key_arena: Vec::new(),
            key_spans: Vec::new(),
            cell_buf: Vec::new(),
        }
    }

    /// Forget every interned group but keep all allocations — the
    /// per-batch reset of the parallel path's bucket sub-tables.
    fn reset(&mut self) {
        self.key_arena.clear();
        self.key_spans.clear();
        self.cell_buf.clear();
        match &mut self.state {
            TierState::DenseInt { map, .. } => map.clear(),
            TierState::Packed { map } => map.clear(),
            TierState::ByteKey { map, next, key_buf } => {
                map.clear();
                next.clear();
                key_buf.clear();
            }
        }
    }

    /// The tier this table resolves through.
    pub fn tier(&self) -> GroupTier {
        match self.state {
            TierState::DenseInt { .. } => GroupTier::DenseInt,
            TierState::Packed { .. } => GroupTier::Packed,
            TierState::ByteKey { .. } => GroupTier::ByteKey,
        }
    }

    /// Number of distinct groups interned so far.
    pub fn len(&self) -> usize {
        self.key_spans.len()
    }

    /// Whether no group has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.key_spans.is_empty()
    }

    /// Concatenated key bytes (kept in first-touch order).
    pub fn key_size(&self) -> usize {
        self.key_size
    }

    /// Encoded key bytes of group `slot` — the raw column bytes in
    /// group-by order, exactly what result emission copies into the
    /// output row prefix.
    #[inline]
    pub fn key_bytes(&self, slot: usize) -> &[u8] {
        let (off, len) = self.key_spans[slot];
        &self.key_arena[off as usize..(off + len) as usize]
    }

    /// Resolve every surviving tuple of `batch` to its dense group slot:
    /// `out[i]` is the slot of batch tuple `i`. `out` is cleared first
    /// and reused across batches; tiers [`GroupTier::DenseInt`] and
    /// [`GroupTier::Packed`] allocate nothing per tuple, the fallback
    /// allocates only when a new group is interned.
    pub fn resolve_batch(&mut self, batch: &FactBatch, out: &mut Vec<u32>) {
        self.resolve_rows(batch.page(), batch.sel(), out);
    }

    /// Resolve page rows `rows` (any order, any subset) to dense group
    /// slots — the form the CJOIN shared-aggregation classes use, where
    /// each class resolves only the tuples relevant to its member
    /// queries.
    pub fn resolve_rows(&mut self, page: &Page, rows: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(rows.len());
        if let Some(cp) = page.column_page() {
            self.resolve_rows_columnar(cp, rows, out);
            return;
        }
        let data = page.raw();
        let rs = page.schema().row_size();
        let arena = &mut self.key_arena;
        let handles = &mut self.key_spans;
        match &mut self.state {
            TierState::DenseInt { off, map, .. } => {
                let off = *off;
                for &r in rows {
                    let k = read_i64_at(data, r as usize * rs + off);
                    let slot = map
                        .get_or_insert_with(k, || push_key(arena, handles, &k.to_le_bytes()));
                    out.push(slot);
                }
            }
            TierState::Packed { map } => {
                let spans = &self.spans;
                let key_size = self.key_size;
                for &r in rows {
                    let row = &data[r as usize * rs..(r as usize + 1) * rs];
                    let mut buf = [0u8; PACK_BYTES];
                    let mut p = 0usize;
                    for &(off, w) in spans {
                        buf[p..p + w].copy_from_slice(&row[off..off + w]);
                        p += w;
                    }
                    let k = u128::from_le_bytes(buf);
                    let slot = map
                        .get_or_insert_with(k, || push_key(arena, handles, &buf[..key_size]));
                    out.push(slot);
                }
            }
            TierState::ByteKey { map, next, key_buf } => {
                let spans = &self.spans;
                for &r in rows {
                    let row = &data[r as usize * rs..(r as usize + 1) * rs];
                    key_buf.clear();
                    for &(off, w) in spans {
                        key_buf.extend_from_slice(&row[off..off + w]);
                    }
                    out.push(bytekey_slot(map, next, arena, handles, key_buf));
                }
            }
        }
    }

    /// Columnar twin of the row-major resolution body: keys are read
    /// straight from the column arrays (`i64_at` for the dense-int tier,
    /// per-column `extend_cell` otherwise) — no row needs to exist in
    /// encoded form. Tier, slot numbering, and first-touch order are
    /// identical to the row-major path.
    fn resolve_rows_columnar(&mut self, cp: &ColumnPage, rows: &[u32], out: &mut Vec<u32>) {
        let arena = &mut self.key_arena;
        let handles = &mut self.key_spans;
        match &mut self.state {
            TierState::DenseInt { col, map, .. } => {
                let arr = cp.array(*col);
                for &r in rows {
                    let k = arr.i64_at(r as usize);
                    let slot = map
                        .get_or_insert_with(k, || push_key(arena, handles, &k.to_le_bytes()));
                    out.push(slot);
                }
            }
            TierState::Packed { map } => {
                let cols = &self.cols;
                let key_size = self.key_size;
                let cell = &mut self.cell_buf;
                for &r in rows {
                    cell.clear();
                    for &c in cols {
                        cp.array(c).extend_cell(r as usize, cell);
                    }
                    let mut buf = [0u8; PACK_BYTES];
                    buf[..key_size].copy_from_slice(cell);
                    let slot = map.get_or_insert_with(u128::from_le_bytes(buf), || {
                        push_key(arena, handles, cell)
                    });
                    out.push(slot);
                }
            }
            TierState::ByteKey { map, next, key_buf } => {
                let cols = &self.cols;
                for &r in rows {
                    key_buf.clear();
                    for &c in cols {
                        cp.array(c).extend_cell(r as usize, key_buf);
                    }
                    out.push(bytekey_slot(map, next, arena, handles, key_buf));
                }
            }
        }
    }

    /// Intern an already-encoded key (concatenated group-column bytes,
    /// exactly [`Self::key_size`] long) and return its slot — the entry
    /// point for the scalar-aggregate bootstrap (empty key over empty
    /// input) and for oracles that replay recorded keys.
    pub fn intern_key(&mut self, key: &[u8]) -> u32 {
        debug_assert_eq!(key.len(), self.key_size);
        let arena = &mut self.key_arena;
        let handles = &mut self.key_spans;
        match &mut self.state {
            TierState::DenseInt { map, .. } => {
                let k = i64::from_le_bytes(key.try_into().expect("8-byte Int key"));
                map.get_or_insert_with(k, || push_key(arena, handles, key))
            }
            TierState::Packed { map } => {
                let mut buf = [0u8; PACK_BYTES];
                buf[..key.len()].copy_from_slice(key);
                map.get_or_insert_with(u128::from_le_bytes(buf), || {
                    push_key(arena, handles, key)
                })
            }
            TierState::ByteKey { map, next, .. } => {
                bytekey_slot(map, next, arena, handles, key)
            }
        }
    }

    /// Hash-radix layout of one batch: bucket the rows of `rows` by the
    /// top [`RadixScratch::BITS`] bits of their key hash into
    /// `scratch.buckets`. Rows with equal keys always land in the same
    /// bucket, so each bucket is resolved by an independent worker
    /// against a private table — the layout
    /// [`Self::resolve_rows_parallel`] fans out across the morsel pool.
    pub fn radix_partition(&self, page: &Page, rows: &[u32], scratch: &mut RadixScratch) {
        scratch.hashes.clear();
        scratch.hashes.reserve(rows.len());
        if let Some(cp) = page.column_page() {
            let mut cell: Vec<u8> = Vec::with_capacity(self.key_size);
            match &self.state {
                TierState::DenseInt { col, .. } => {
                    let arr = cp.array(*col);
                    for &r in rows {
                        scratch.hashes.push(arr.i64_at(r as usize).mix());
                    }
                }
                TierState::Packed { .. } => {
                    for &r in rows {
                        cell.clear();
                        for &c in &self.cols {
                            cp.array(c).extend_cell(r as usize, &mut cell);
                        }
                        let mut buf = [0u8; PACK_BYTES];
                        buf[..cell.len()].copy_from_slice(&cell);
                        scratch.hashes.push(u128::from_le_bytes(buf).mix());
                    }
                }
                TierState::ByteKey { .. } => {
                    for &r in rows {
                        cell.clear();
                        for &c in &self.cols {
                            cp.array(c).extend_cell(r as usize, &mut cell);
                        }
                        let mut h = 0xcbf2_9ce4_8422_2325u64;
                        for &b in &cell {
                            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                        }
                        scratch.hashes.push(mix64(h));
                    }
                }
            }
            for b in &mut scratch.buckets {
                b.clear();
            }
            for (i, &h) in scratch.hashes.iter().enumerate() {
                let part = (h >> (64 - RadixScratch::BITS)) as usize;
                scratch.buckets[part].push(rows[i]);
            }
            return;
        }
        let data = page.raw();
        let rs = page.schema().row_size();
        match &self.state {
            TierState::DenseInt { off, .. } => {
                for &r in rows {
                    scratch
                        .hashes
                        .push(read_i64_at(data, r as usize * rs + off).mix());
                }
            }
            TierState::Packed { .. } => {
                for &r in rows {
                    let row = &data[r as usize * rs..(r as usize + 1) * rs];
                    let mut buf = [0u8; PACK_BYTES];
                    let mut p = 0usize;
                    for &(off, w) in &self.spans {
                        buf[p..p + w].copy_from_slice(&row[off..off + w]);
                        p += w;
                    }
                    scratch.hashes.push(u128::from_le_bytes(buf).mix());
                }
            }
            TierState::ByteKey { .. } => {
                for &r in rows {
                    let row = &data[r as usize * rs..(r as usize + 1) * rs];
                    // FNV-1a over the key spans, SplitMix-finished so the
                    // top radix bits avalanche like the flat tiers'.
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for &(off, w) in &self.spans {
                        for &b in &row[off..off + w] {
                            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                        }
                    }
                    scratch.hashes.push(mix64(h));
                }
            }
        }
        for b in &mut scratch.buckets {
            b.clear();
        }
        for (i, &h) in scratch.hashes.iter().enumerate() {
            let part = (h >> (64 - RadixScratch::BITS)) as usize;
            scratch.buckets[part].push(rows[i]);
        }
    }

    /// [`Self::resolve_batch`] with the per-bucket fan-out of
    /// [`Self::resolve_rows_parallel`].
    pub fn resolve_batch_parallel(
        &mut self,
        batch: &FactBatch,
        pool: &WorkerPool,
        scratch: &mut ParallelScratch,
        out: &mut Vec<u32>,
    ) -> Result<(), EngineError> {
        self.resolve_rows_parallel(batch.page(), batch.sel(), pool, scratch, out)
    }

    /// Parallel twin of [`Self::resolve_rows`]: radix-partition the
    /// batch, resolve every bucket against a private sub-table on its
    /// own pool morsel, then renumber sub-table slots into this table in
    /// original row order — first-touch slot numbering (and therefore
    /// every consumer's output bytes) is identical to the sequential
    /// path, because a global slot is interned exactly when the
    /// sequential loop would first have seen its key. The renumber pass
    /// probes this table once per *distinct group per batch*, not per
    /// row; the per-row probes all happen in the parallel sub-tables.
    ///
    /// Batches under [`PARALLEL_MIN_ROWS`] rows (or a 1-worker pool) use
    /// the sequential path directly — the fan-out costs one partition
    /// pass plus task dispatch, which small batches cannot amortize.
    ///
    /// `Err` means a bucket task panicked or was killed by the
    /// `pool.task` failpoint; `out` holds garbage and the caller must
    /// abort the query (this table's interned groups remain valid —
    /// sub-tables are merged only by the renumber pass, which runs only
    /// when every bucket resolved cleanly).
    pub fn resolve_rows_parallel(
        &mut self,
        page: &Page,
        rows: &[u32],
        pool: &WorkerPool,
        scratch: &mut ParallelScratch,
        out: &mut Vec<u32>,
    ) -> Result<(), EngineError> {
        if pool.workers() <= 1 || rows.len() < PARALLEL_MIN_ROWS {
            self.resolve_rows(page, rows, out);
            return Ok(());
        }
        self.radix_partition(page, rows, &mut scratch.radix);
        let nb = scratch.radix.buckets.len();
        if scratch.subs.len() != nb {
            scratch.subs = (0..nb).map(|_| self.fresh()).collect();
        } else {
            for sub in &mut scratch.subs {
                sub.reset();
            }
        }
        scratch.local.resize_with(nb, Vec::new);
        {
            let ParallelScratch {
                radix, subs, local, ..
            } = scratch;
            let mut tasks: Vec<Task<'_>> = Vec::with_capacity(nb);
            for ((sub, local_b), bucket) in subs
                .iter_mut()
                .zip(local.iter_mut())
                .zip(radix.buckets.iter())
            {
                local_b.clear();
                if bucket.is_empty() {
                    continue;
                }
                tasks.push(Box::new(move || sub.resolve_rows(page, bucket, local_b)));
            }
            pool.run(tasks)?;
        }
        // Renumbering merge: walk the batch in original row order
        // (scratch.radix.hashes is aligned with `rows`; bucket vectors
        // preserve input order, so a per-bucket cursor recovers each
        // row's local slot without any lookup).
        let ParallelScratch {
            radix,
            subs,
            local,
            global_of,
            cursors,
        } = scratch;
        cursors.clear();
        cursors.resize(nb, 0);
        global_of.resize_with(nb, Vec::new);
        for (g, sub) in global_of.iter_mut().zip(subs.iter()) {
            g.clear();
            g.resize(sub.len(), u32::MAX);
        }
        out.clear();
        out.reserve(rows.len());
        for &h in radix.hashes.iter() {
            let b = (h >> (64 - RadixScratch::BITS)) as usize;
            let l = local[b][cursors[b]] as usize;
            cursors[b] += 1;
            let mut g = global_of[b][l];
            if g == u32::MAX {
                g = self.intern_key(subs[b].key_bytes(l));
                global_of[b][l] = g;
            }
            out.push(g);
        }
        Ok(())
    }
}

/// Minimum batch size (surviving rows) for the parallel resolution
/// fan-out; smaller batches stay on the sequential path.
pub const PARALLEL_MIN_ROWS: usize = 1024;

/// Reusable scratch for [`GroupTable::resolve_rows_parallel`]: the radix
/// buckets, the per-bucket private sub-tables (kept allocated across
/// batches), their local slot outputs, and the renumbering maps.
pub struct ParallelScratch {
    radix: RadixScratch,
    subs: Vec<GroupTable>,
    local: Vec<Vec<u32>>,
    global_of: Vec<Vec<u32>>,
    cursors: Vec<usize>,
}

impl ParallelScratch {
    /// Empty scratch; sub-tables are created lazily from the target
    /// table's compiled spec on first parallel batch.
    pub fn new() -> ParallelScratch {
        ParallelScratch {
            radix: RadixScratch::new(),
            subs: Vec::new(),
            local: Vec::new(),
            global_of: Vec::new(),
            cursors: Vec::new(),
        }
    }
}

impl Default for ParallelScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Reusable buckets for [`GroupTable::radix_partition`].
pub struct RadixScratch {
    /// Per-row key hashes of the last partitioned batch.
    pub hashes: Vec<u64>,
    /// Row buckets, `1 << BITS` of them.
    pub buckets: Vec<Vec<u32>>,
}

impl RadixScratch {
    /// Radix width: 16 buckets — enough fan-out for the core counts this
    /// container family sees, small enough that per-batch bucket clears
    /// stay free.
    pub const BITS: usize = 4;

    /// Empty scratch with all buckets allocated.
    pub fn new() -> RadixScratch {
        RadixScratch {
            hashes: Vec::new(),
            buckets: (0..1usize << Self::BITS).map(|_| Vec::new()).collect(),
        }
    }
}

impl Default for RadixScratch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_storage::Value;
    use std::collections::HashMap;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("i", DataType::Int),
            ("d", DataType::Date),
            ("c", DataType::Char(3)),
            ("wide", DataType::Char(20)),
            ("j", DataType::Int),
        ])
    }

    fn page(rows: &[(i64, u32, &str, &str, i64)]) -> Page {
        let vals: Vec<Vec<Value>> = rows
            .iter()
            .map(|&(i, d, c, w, j)| {
                vec![
                    Value::Int(i),
                    Value::Date(d),
                    Value::Str(c.into()),
                    Value::Str(w.into()),
                    Value::Int(j),
                ]
            })
            .collect();
        Page::from_values(&schema(), &vals).unwrap()
    }

    #[test]
    fn tier_selection_by_shape() {
        let s = schema();
        assert_eq!(GroupTable::tier_for(&[0], &s), GroupTier::DenseInt);
        assert_eq!(GroupTable::tier_for(&[4], &s), GroupTier::DenseInt);
        assert_eq!(GroupTable::tier_for(&[1], &s), GroupTier::Packed); // single Date
        assert_eq!(GroupTable::tier_for(&[0, 4], &s), GroupTier::Packed); // 16 B
        assert_eq!(GroupTable::tier_for(&[1, 2], &s), GroupTier::Packed); // 7 B
        assert_eq!(GroupTable::tier_for(&[], &s), GroupTier::Packed); // scalar
        assert_eq!(GroupTable::tier_for(&[3], &s), GroupTier::ByteKey); // 20 B
        assert_eq!(GroupTable::tier_for(&[0, 1, 4], &s), GroupTier::ByteKey); // 20 B
    }

    #[test]
    fn first_touch_order_all_tiers() {
        let p = page(&[
            (5, 20260101, "aa", "left-padded-wide-00", -1),
            (3, 20260102, "bb", "left-padded-wide-01", -1),
            (5, 20260101, "aa", "left-padded-wide-00", -1),
            (i64::MIN, 20260103, "cc", "left-padded-wide-02", 7),
            (3, 20260102, "bb", "left-padded-wide-01", -1),
        ]);
        let rows: Vec<u32> = (0..5).collect();
        for group_by in [vec![0], vec![1, 2], vec![3]] {
            let mut t = GroupTable::compile(&group_by, &schema());
            let mut slots = Vec::new();
            t.resolve_rows(&p, &rows, &mut slots);
            assert_eq!(slots, vec![0, 1, 0, 2, 1], "{group_by:?}");
            assert_eq!(t.len(), 3);
            // Resolving again yields the same slots, no new groups.
            t.resolve_rows(&p, &rows, &mut slots);
            assert_eq!(slots, vec![0, 1, 0, 2, 1]);
            assert_eq!(t.len(), 3);
        }
    }

    #[test]
    fn columnar_resolution_matches_row_major() {
        let p = page(&[
            (5, 20260101, "aa", "left-padded-wide-00", -1),
            (3, 20260102, "bb", "left-padded-wide-01", -1),
            (5, 20260101, "aa", "left-padded-wide-00", -1),
            (i64::MIN, 20260103, "cc", "left-padded-wide-02", 7),
            (3, 20260102, "bb", "left-padded-wide-01", -1),
        ]);
        let c = p.to_columnar();
        let rows: Vec<u32> = (0..5).collect();
        for group_by in [vec![0], vec![1, 2], vec![3]] {
            let mut tr = GroupTable::compile(&group_by, &schema());
            let mut tc = GroupTable::compile_with_hint(&group_by, &schema(), Some(8));
            assert_eq!(tr.tier(), tc.tier());
            let (mut sr, mut sc) = (Vec::new(), Vec::new());
            tr.resolve_rows(&p, &rows, &mut sr);
            tc.resolve_rows(&c, &rows, &mut sc);
            assert_eq!(sr, sc, "{group_by:?}");
            assert_eq!(tr.len(), tc.len());
            for g in 0..tr.len() {
                assert_eq!(tr.key_bytes(g), tc.key_bytes(g));
            }
            let (mut a, mut b) = (RadixScratch::new(), RadixScratch::new());
            tr.radix_partition(&p, &rows, &mut a);
            tc.radix_partition(&c, &rows, &mut b);
            assert_eq!(a.buckets, b.buckets, "{group_by:?}");
        }
    }

    #[test]
    fn key_bytes_roundtrip() {
        let p = page(&[(42, 19991231, "xy", "w", -9)]);
        let mut t = GroupTable::compile(&[0, 1], &schema());
        let mut slots = Vec::new();
        t.resolve_rows(&p, &[0], &mut slots);
        assert_eq!(slots, [0]);
        let key = t.key_bytes(0);
        assert_eq!(key.len(), 12);
        assert_eq!(i64::from_le_bytes(key[..8].try_into().unwrap()), 42);
        assert_eq!(u32::from_le_bytes(key[8..].try_into().unwrap()), 19991231);
    }

    #[test]
    fn intern_key_matches_resolution() {
        let p = page(&[(7, 1, "a", "w", 0)]);
        let mut t = GroupTable::compile(&[0], &schema());
        let slot = t.intern_key(&7i64.to_le_bytes());
        assert_eq!(slot, 0);
        let mut slots = Vec::new();
        t.resolve_rows(&p, &[0], &mut slots);
        assert_eq!(slots, [0]); // same group, not a new slot
        assert_eq!(t.len(), 1);
        // Scalar bootstrap: empty key over an empty-group_by table.
        let mut scalar = GroupTable::compile(&[], &schema());
        assert_eq!(scalar.intern_key(&[]), 0);
        assert_eq!(scalar.intern_key(&[]), 0);
        assert_eq!(scalar.len(), 1);
    }

    #[test]
    fn resolve_batch_uses_selection() {
        let p = Arc::new(page(&[
            (1, 0, "a", "w", 0),
            (2, 0, "a", "w", 0),
            (1, 0, "a", "w", 0),
            (3, 0, "a", "w", 0),
        ]));
        let fb = FactBatch::new(p, vec![1, 3], Vec::new());
        let mut t = GroupTable::compile(&[0], &schema());
        let mut slots = Vec::new();
        t.resolve_batch(&fb, &mut slots);
        assert_eq!(slots, [0, 1]); // keys 2 then 3; row 0/2 never touched
        assert_eq!(t.key_bytes(0), &2i64.to_le_bytes());
    }

    #[test]
    fn parallel_resolution_matches_sequential_slot_for_slot() {
        use crate::metrics::Metrics;
        use crate::pool::WorkerPool;
        // Enough rows to clear PARALLEL_MIN_ROWS, spread over two
        // batches so cross-batch first-touch numbering is exercised.
        let mk_rows = |salt: i64| -> Vec<(i64, u32, &'static str, &'static str, i64)> {
            (0..(PARALLEL_MIN_ROWS as i64 + 500))
                .map(|i| {
                    let k = (i * 7 + salt) % 97;
                    (
                        k,
                        20260101 + (k as u32 % 5),
                        "kk",
                        ["wide-key-payload-aa", "wide-key-payload-bb", "wide-key-payload-cc"]
                            [(k % 3) as usize],
                        i,
                    )
                })
                .collect()
        };
        let p1 = page(&mk_rows(0));
        let p2 = page(&mk_rows(13));
        let all: Vec<u32> = (0..p1.rows() as u32).collect();
        for group_by in [vec![0], vec![0, 1], vec![3], vec![0, 1, 3]] {
            for workers in [2, 4] {
                let pool = WorkerPool::new(workers, Metrics::new());
                let mut seq = GroupTable::compile(&group_by, &schema());
                let mut par = GroupTable::compile(&group_by, &schema());
                let mut scratch = ParallelScratch::new();
                let (mut s_out, mut p_out) = (Vec::new(), Vec::new());
                for p in [&p1, &p2, &p1] {
                    seq.resolve_rows(p, &all, &mut s_out);
                    par.resolve_rows_parallel(p, &all, &pool, &mut scratch, &mut p_out)
                        .unwrap();
                    assert_eq!(s_out, p_out, "{group_by:?} workers={workers}");
                }
                assert_eq!(seq.len(), par.len());
                for g in 0..seq.len() {
                    assert_eq!(seq.key_bytes(g), par.key_bytes(g), "slot {g}");
                }
            }
        }
    }

    #[test]
    fn parallel_resolution_matches_on_columnar_pages() {
        use crate::metrics::Metrics;
        use crate::pool::WorkerPool;
        let rows: Vec<(i64, u32, &str, &str, i64)> = (0..(PARALLEL_MIN_ROWS as i64 * 2))
            .map(|i| (i % 31, 20260101, "aa", "wide-key-payload-xx", i))
            .collect();
        let p = page(&rows).to_columnar();
        let all: Vec<u32> = (0..rows.len() as u32).collect();
        let pool = WorkerPool::new(4, Metrics::new());
        let mut seq = GroupTable::compile(&[0], &schema());
        let mut par = GroupTable::compile(&[0], &schema());
        let mut scratch = ParallelScratch::new();
        let (mut s_out, mut p_out) = (Vec::new(), Vec::new());
        seq.resolve_rows(&p, &all, &mut s_out);
        par.resolve_rows_parallel(&p, &all, &pool, &mut scratch, &mut p_out)
            .unwrap();
        assert_eq!(s_out, p_out);
    }

    #[test]
    fn small_batches_stay_sequential() {
        use crate::metrics::Metrics;
        use crate::pool::WorkerPool;
        let m = Metrics::new();
        let pool = WorkerPool::new(4, m.clone());
        let p = page(&[(1, 0, "a", "w", 0), (2, 0, "a", "w", 0)]);
        let mut t = GroupTable::compile(&[0], &schema());
        let mut scratch = ParallelScratch::new();
        let mut out = Vec::new();
        t.resolve_rows_parallel(&p, &[0, 1], &pool, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, [0, 1]);
        assert_eq!(m.snapshot().pool_tasks, 0, "below-threshold batch must not fan out");
    }

    #[test]
    fn bytekey_arena_interning_survives_hash_chains() {
        // Many distinct wide keys: hash chaining plus arena handles must
        // resolve every one and keep first-touch numbering.
        let rows: Vec<(i64, u32, &str, &str, i64)> = (0..256)
            .map(|i| (i, 0, "aa", "wide-key-payload-xx", i % 17))
            .collect();
        let p = page(&rows);
        let all: Vec<u32> = (0..256).collect();
        // (wide, j) is 28 bytes → ByteKey; wide is constant so slots
        // follow j's first-touch order: 0..17 then repeats.
        let mut t = GroupTable::compile(&[3, 4], &schema());
        assert_eq!(t.tier(), GroupTier::ByteKey);
        let mut out = Vec::new();
        t.resolve_rows(&p, &all, &mut out);
        assert_eq!(t.len(), 17);
        for (i, &s) in out.iter().enumerate() {
            assert_eq!(s as i64, (i as i64) % 17);
        }
        let mut expect = Vec::new();
        expect.extend_from_slice("wide-key-payload-xx ".as_bytes()); // space-padded Char(20)
        expect.extend_from_slice(&3i64.to_le_bytes());
        assert_eq!(t.key_bytes(3), &expect[..]);
    }

    #[test]
    fn radix_partition_is_stable_and_complete() {
        let rows: Vec<(i64, u32, &str, &str, i64)> = (0..64)
            .map(|i| (i % 7, 20260101 + (i as u32 % 3), "kk", "wide-key-payload-xx", i))
            .collect();
        let p = page(&rows);
        let all: Vec<u32> = (0..64).collect();
        for group_by in [vec![0], vec![0, 1], vec![3]] {
            let t = GroupTable::compile(&group_by, &schema());
            let mut scratch = RadixScratch::new();
            t.radix_partition(&p, &all, &mut scratch);
            let mut seen: Vec<u32> =
                scratch.buckets.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, all, "{group_by:?}: buckets must partition the batch");
            // Equal keys must share a bucket: map key → bucket and check.
            let mut by_key: HashMap<Vec<u8>, usize> = HashMap::new();
            for (b, bucket) in scratch.buckets.iter().enumerate() {
                for &r in bucket {
                    let row = p.row(r as usize);
                    let mut key = Vec::new();
                    for &c in &group_by {
                        let off = schema().offset(c);
                        let w = schema().dtype(c).width();
                        key.extend_from_slice(&row.bytes()[off..off + w]);
                    }
                    let prev = by_key.insert(key, b);
                    if let Some(prev) = prev {
                        assert_eq!(prev, b, "equal keys split across buckets");
                    }
                }
            }
        }
    }
}
