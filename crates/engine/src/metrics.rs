//! Execution metrics — the counters the demo GUI plots next to each run
//! (SP hits per stage, copied vs shared pages, CPU busy time).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Stage identifiers (array indices into the per-stage counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum StageKind {
    /// Table scan stage (with pushed-down selection/projection).
    Scan = 0,
    /// Standalone filter stage.
    Filter = 1,
    /// Hash-join stage.
    Join = 2,
    /// Aggregation stage.
    Aggregate = 3,
    /// Sort stage.
    Sort = 4,
    /// Projection stage.
    Project = 5,
    /// Limit stage.
    Limit = 6,
    /// Duplicate-elimination stage.
    Distinct = 7,
    /// Heap-based top-k stage.
    TopK = 8,
    /// The CJOIN global-query-plan stage (mounted by `qs-core`).
    Cjoin = 9,
}

/// Number of stage kinds.
pub const NUM_STAGES: usize = 10;

/// All stage kinds, index-ordered.
pub const ALL_STAGES: [StageKind; NUM_STAGES] = [
    StageKind::Scan,
    StageKind::Filter,
    StageKind::Join,
    StageKind::Aggregate,
    StageKind::Sort,
    StageKind::Project,
    StageKind::Limit,
    StageKind::Distinct,
    StageKind::TopK,
    StageKind::Cjoin,
];

impl StageKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Scan => "scan",
            StageKind::Filter => "filter",
            StageKind::Join => "join",
            StageKind::Aggregate => "aggregate",
            StageKind::Sort => "sort",
            StageKind::Project => "project",
            StageKind::Limit => "limit",
            StageKind::Distinct => "distinct",
            StageKind::TopK => "topk",
            StageKind::Cjoin => "cjoin",
        }
    }
}

/// Live, thread-safe counters. Shared as `Arc<Metrics>` by every operator.
#[derive(Debug, Default)]
pub struct Metrics {
    sp_hits: [AtomicU64; NUM_STAGES],
    sp_misses: [AtomicU64; NUM_STAGES],
    packets: [AtomicU64; NUM_STAGES],
    /// Pages deep-copied by push-based SP (one per extra consumer).
    pub pages_copied: AtomicU64,
    /// Bytes deep-copied by push-based SP.
    pub bytes_copied: AtomicU64,
    /// Pages appended to SPLs (pull-based sharing, zero copies).
    pub pages_shared: AtomicU64,
    /// Bytes made available through SPLs.
    pub bytes_shared: AtomicU64,
    /// Nanoseconds of CPU-governed operator work.
    pub busy_nanos: AtomicU64,
    /// Rows emitted by scans after selection.
    pub rows_scanned: AtomicU64,
    /// Rows emitted by joins.
    pub rows_joined: AtomicU64,
    /// Completed queries.
    pub queries_completed: AtomicU64,
    /// Panics caught by a stage/pipeline worker and converted into a
    /// per-query abort (the worker and its co-runners survived).
    pub panics_contained: AtomicU64,
    /// Queries cancelled via `QueryTicket::cancel` / `CancelHandle`.
    pub queries_cancelled: AtomicU64,
    /// Queries aborted because their submit-time deadline passed.
    pub deadline_aborts: AtomicU64,
    /// Queries shed by admission control instead of being executed.
    pub queries_shed: AtomicU64,
    /// Morsel tasks executed by the shared worker pool.
    pub pool_tasks: AtomicU64,
    /// Pool tasks a worker stole from another worker's queue.
    pub pool_steals: AtomicU64,
}

impl Metrics {
    /// Fresh counters.
    pub fn new() -> std::sync::Arc<Self> {
        std::sync::Arc::new(Metrics::default())
    }

    /// Record an SP subscription (the incoming packet rode an in-flight
    /// one).
    pub fn sp_hit(&self, stage: StageKind) {
        self.sp_hits[stage as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Record an SP lookup that found no shareable packet.
    pub fn sp_miss(&self, stage: StageKind) {
        self.sp_misses[stage as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a packet dispatched to a stage.
    pub fn packet(&self, stage: StageKind) {
        self.packets[stage as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let arr = |a: &[AtomicU64; NUM_STAGES]| -> [u64; NUM_STAGES] {
            std::array::from_fn(|i| a[i].load(Ordering::Relaxed))
        };
        MetricsSnapshot {
            sp_hits: arr(&self.sp_hits),
            sp_misses: arr(&self.sp_misses),
            packets: arr(&self.packets),
            pages_copied: self.pages_copied.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            pages_shared: self.pages_shared.load(Ordering::Relaxed),
            bytes_shared: self.bytes_shared.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            rows_joined: self.rows_joined.load(Ordering::Relaxed),
            queries_completed: self.queries_completed.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            queries_cancelled: self.queries_cancelled.load(Ordering::Relaxed),
            deadline_aborts: self.deadline_aborts.load(Ordering::Relaxed),
            queries_shed: self.queries_shed.load(Ordering::Relaxed),
            pool_tasks: self.pool_tasks.load(Ordering::Relaxed),
            pool_steals: self.pool_steals.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter (between experiment points).
    pub fn reset(&self) {
        for i in 0..NUM_STAGES {
            self.sp_hits[i].store(0, Ordering::Relaxed);
            self.sp_misses[i].store(0, Ordering::Relaxed);
            self.packets[i].store(0, Ordering::Relaxed);
        }
        self.pages_copied.store(0, Ordering::Relaxed);
        self.bytes_copied.store(0, Ordering::Relaxed);
        self.pages_shared.store(0, Ordering::Relaxed);
        self.bytes_shared.store(0, Ordering::Relaxed);
        self.busy_nanos.store(0, Ordering::Relaxed);
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.rows_joined.store(0, Ordering::Relaxed);
        self.queries_completed.store(0, Ordering::Relaxed);
        self.panics_contained.store(0, Ordering::Relaxed);
        self.queries_cancelled.store(0, Ordering::Relaxed);
        self.deadline_aborts.store(0, Ordering::Relaxed);
        self.queries_shed.store(0, Ordering::Relaxed);
        self.pool_tasks.store(0, Ordering::Relaxed);
        self.pool_steals.store(0, Ordering::Relaxed);
    }
}

/// Immutable snapshot of [`Metrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// SP subscriptions per stage.
    pub sp_hits: [u64; NUM_STAGES],
    /// SP lookups that missed, per stage.
    pub sp_misses: [u64; NUM_STAGES],
    /// Packets dispatched per stage.
    pub packets: [u64; NUM_STAGES],
    /// Pages deep-copied (push-based SP fan-out).
    pub pages_copied: u64,
    /// Bytes deep-copied.
    pub bytes_copied: u64,
    /// Pages shared via SPL (no copy).
    pub pages_shared: u64,
    /// Bytes shared via SPL.
    pub bytes_shared: u64,
    /// CPU-governed operator time.
    pub busy_nanos: u64,
    /// Rows surviving scans.
    pub rows_scanned: u64,
    /// Rows produced by joins.
    pub rows_joined: u64,
    /// Completed queries.
    pub queries_completed: u64,
    /// Panics contained to a single query.
    pub panics_contained: u64,
    /// Queries cancelled by their submitter.
    pub queries_cancelled: u64,
    /// Queries aborted on deadline.
    pub deadline_aborts: u64,
    /// Queries shed under overload.
    pub queries_shed: u64,
    /// Morsel tasks executed by the worker pool.
    pub pool_tasks: u64,
    /// Pool tasks executed by a stealing worker.
    pub pool_steals: u64,
}

impl MetricsSnapshot {
    /// Total SP hits across stages.
    pub fn total_sp_hits(&self) -> u64 {
        self.sp_hits.iter().sum()
    }

    /// SP hits for one stage.
    pub fn sp_hits_for(&self, stage: StageKind) -> u64 {
        self.sp_hits[stage as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_counting_per_stage() {
        let m = Metrics::new();
        m.sp_hit(StageKind::Scan);
        m.sp_hit(StageKind::Scan);
        m.sp_hit(StageKind::Aggregate);
        m.sp_miss(StageKind::Join);
        let s = m.snapshot();
        assert_eq!(s.sp_hits_for(StageKind::Scan), 2);
        assert_eq!(s.sp_hits_for(StageKind::Aggregate), 1);
        assert_eq!(s.sp_hits_for(StageKind::Join), 0);
        assert_eq!(s.sp_misses[StageKind::Join as usize], 1);
        assert_eq!(s.total_sp_hits(), 3);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.sp_hit(StageKind::Scan);
        m.pages_copied.store(5, Ordering::Relaxed);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn stage_names_unique() {
        let names: std::collections::HashSet<&str> =
            ALL_STAGES.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), NUM_STAGES);
    }
}
