//! Vectorized aggregation kernels — the batch-at-a-time sibling of
//! [`crate::agg`].
//!
//! [`crate::agg::update_acc`] folds one row at a time: every update
//! re-matches the `(Acc, AggFunc)` enum pair and re-reads the schema
//! offset. With a [`ColumnBatch`] in hand (the representation every
//! post-predicate stage now carries), the dispatch can be hoisted out of
//! the loop entirely: an [`AggKernel`] is the aggregate resolved against
//! the input schema *once*, and its update runs a tight typed loop over a
//! column slice. Accumulators live in structure-of-arrays form
//! ([`AccVec`], one slot per group) so grouped folds index a flat vector
//! instead of chasing a per-group `Vec<Acc>`.
//!
//! Two update shapes cover every consumer:
//!
//! * [`update_grouped`] — `(row, group)` pairs, for hash aggregation
//!   (engine `Aggregate`, CJOIN shared aggregation classes);
//! * [`update_masked`] — a selection mask folding into group 0, for
//!   scalar aggregates over a predicate/bitmap selection.
//!
//! The row-at-a-time `update_acc` stays as the property-test oracle:
//! `crates/engine/tests/kernel_props.rs` pins the kernels to it on
//! arbitrary column data and masks.

use qs_plan::AggFunc;
use qs_storage::{iter_ones, ColumnBatch, ColumnData, DataType, Schema, Value};

/// An aggregate function resolved against its input schema: typed op +
/// column indices, no `Value`s and no per-row type dispatch. Mirrors the
/// accumulator typing rules of [`crate::agg::make_acc`] exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKernel {
    /// `COUNT(*)`.
    Count,
    /// `SUM` over an `Int` column (exact).
    SumI { col: u32 },
    /// `SUM` over a numeric (`Float`/`Date`) column, widened to `f64`.
    SumF { col: u32 },
    /// `AVG` over any numeric column.
    Avg { col: u32 },
    /// `MIN`/`MAX` per input type.
    MinI { col: u32 },
    MaxI { col: u32 },
    MinF { col: u32 },
    MaxF { col: u32 },
    MinD { col: u32 },
    MaxD { col: u32 },
    MinS { col: u32 },
    MaxS { col: u32 },
    /// `SUM(a*b)` — exact when both are `Int`, else widened.
    SumProdI { a: u32, b: u32 },
    SumProdF { a: u32, b: u32 },
    /// `SUM(a-b)` — exact when both are `Int`, else widened.
    SumDiffI { a: u32, b: u32 },
    SumDiffF { a: u32, b: u32 },
}

impl AggKernel {
    /// Resolve `func` against `schema`. The typing rules are identical to
    /// [`crate::agg::make_acc`], so kernel results always match the
    /// row-at-a-time oracle.
    pub fn compile(func: &AggFunc, schema: &Schema) -> AggKernel {
        let is_int = |c: usize| schema.dtype(c) == DataType::Int;
        match *func {
            AggFunc::Count => AggKernel::Count,
            AggFunc::Sum(c) => {
                if is_int(c) {
                    AggKernel::SumI { col: c as u32 }
                } else {
                    AggKernel::SumF { col: c as u32 }
                }
            }
            AggFunc::Avg(c) => AggKernel::Avg { col: c as u32 },
            AggFunc::Min(c) => match schema.dtype(c) {
                DataType::Int => AggKernel::MinI { col: c as u32 },
                DataType::Float => AggKernel::MinF { col: c as u32 },
                DataType::Date => AggKernel::MinD { col: c as u32 },
                DataType::Char(_) => AggKernel::MinS { col: c as u32 },
            },
            AggFunc::Max(c) => match schema.dtype(c) {
                DataType::Int => AggKernel::MaxI { col: c as u32 },
                DataType::Float => AggKernel::MaxF { col: c as u32 },
                DataType::Date => AggKernel::MaxD { col: c as u32 },
                DataType::Char(_) => AggKernel::MaxS { col: c as u32 },
            },
            AggFunc::SumProd(a, b) => {
                if is_int(a) && is_int(b) {
                    AggKernel::SumProdI {
                        a: a as u32,
                        b: b as u32,
                    }
                } else {
                    AggKernel::SumProdF {
                        a: a as u32,
                        b: b as u32,
                    }
                }
            }
            AggFunc::SumDiff(a, b) => {
                if is_int(a) && is_int(b) {
                    AggKernel::SumDiffI {
                        a: a as u32,
                        b: b as u32,
                    }
                } else {
                    AggKernel::SumDiffF {
                        a: a as u32,
                        b: b as u32,
                    }
                }
            }
        }
    }

    /// Append the columns this kernel reads to `out` (callers sort/dedup
    /// the union — the set a [`ColumnBatch`] must decode).
    pub fn input_columns(&self, out: &mut Vec<usize>) {
        match *self {
            AggKernel::Count => {}
            AggKernel::SumI { col }
            | AggKernel::SumF { col }
            | AggKernel::Avg { col }
            | AggKernel::MinI { col }
            | AggKernel::MaxI { col }
            | AggKernel::MinF { col }
            | AggKernel::MaxF { col }
            | AggKernel::MinD { col }
            | AggKernel::MaxD { col }
            | AggKernel::MinS { col }
            | AggKernel::MaxS { col } => out.push(col as usize),
            AggKernel::SumProdI { a, b }
            | AggKernel::SumProdF { a, b }
            | AggKernel::SumDiffI { a, b }
            | AggKernel::SumDiffF { a, b } => {
                out.push(a as usize);
                out.push(b as usize);
            }
        }
    }
}

/// Sorted, deduplicated union of the columns a kernel set reads.
pub fn kernel_columns(kernels: &[AggKernel]) -> Vec<usize> {
    let mut cols = Vec::new();
    for k in kernels {
        k.input_columns(&mut cols);
    }
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// Structure-of-arrays accumulators: one slot per group, typed to match
/// the kernel. Grow-only via [`Self::resize`]; fresh slots hold the
/// neutral element.
#[derive(Debug, Clone)]
pub enum AccVec {
    Count(Vec<i64>),
    SumI(Vec<i64>),
    SumF(Vec<f64>),
    Avg { sum: Vec<f64>, n: Vec<i64> },
    MinI(Vec<Option<i64>>),
    MaxI(Vec<Option<i64>>),
    MinF(Vec<Option<f64>>),
    MaxF(Vec<Option<f64>>),
    MinD(Vec<Option<u32>>),
    MaxD(Vec<Option<u32>>),
    MinS(Vec<Option<String>>),
    MaxS(Vec<Option<String>>),
}

impl AccVec {
    /// Empty accumulator storage matching `kernel`.
    pub fn for_kernel(kernel: &AggKernel) -> AccVec {
        match kernel {
            AggKernel::Count => AccVec::Count(Vec::new()),
            AggKernel::SumI { .. } | AggKernel::SumProdI { .. } | AggKernel::SumDiffI { .. } => {
                AccVec::SumI(Vec::new())
            }
            AggKernel::SumF { .. } | AggKernel::SumProdF { .. } | AggKernel::SumDiffF { .. } => {
                AccVec::SumF(Vec::new())
            }
            AggKernel::Avg { .. } => AccVec::Avg {
                sum: Vec::new(),
                n: Vec::new(),
            },
            AggKernel::MinI { .. } => AccVec::MinI(Vec::new()),
            AggKernel::MaxI { .. } => AccVec::MaxI(Vec::new()),
            AggKernel::MinF { .. } => AccVec::MinF(Vec::new()),
            AggKernel::MaxF { .. } => AccVec::MaxF(Vec::new()),
            AggKernel::MinD { .. } => AccVec::MinD(Vec::new()),
            AggKernel::MaxD { .. } => AccVec::MaxD(Vec::new()),
            AggKernel::MinS { .. } => AccVec::MinS(Vec::new()),
            AggKernel::MaxS { .. } => AccVec::MaxS(Vec::new()),
        }
    }

    /// Number of group slots.
    pub fn len(&self) -> usize {
        match self {
            AccVec::Count(v) | AccVec::SumI(v) => v.len(),
            AccVec::SumF(v) => v.len(),
            AccVec::Avg { n, .. } => n.len(),
            AccVec::MinI(v) | AccVec::MaxI(v) => v.len(),
            AccVec::MinF(v) | AccVec::MaxF(v) => v.len(),
            AccVec::MinD(v) | AccVec::MaxD(v) => v.len(),
            AccVec::MinS(v) | AccVec::MaxS(v) => v.len(),
        }
    }

    /// Whether no group slots exist yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grow to `groups` slots (never shrinks), new slots neutral.
    pub fn resize(&mut self, groups: usize) {
        let groups = groups.max(self.len());
        match self {
            AccVec::Count(v) | AccVec::SumI(v) => v.resize(groups, 0),
            AccVec::SumF(v) => v.resize(groups, 0.0),
            AccVec::Avg { sum, n } => {
                sum.resize(groups, 0.0);
                n.resize(groups, 0);
            }
            AccVec::MinI(v) | AccVec::MaxI(v) => v.resize(groups, None),
            AccVec::MinF(v) | AccVec::MaxF(v) => v.resize(groups, None),
            AccVec::MinD(v) | AccVec::MaxD(v) => v.resize(groups, None),
            AccVec::MinS(v) | AccVec::MaxS(v) => v.resize(groups, None),
        }
    }

    /// Final aggregate value of group `g` — semantics identical to
    /// [`crate::agg::finalize_acc`].
    pub fn finalize(&self, g: usize) -> Value {
        match self {
            AccVec::Count(v) | AccVec::SumI(v) => Value::Int(v[g]),
            AccVec::SumF(v) => Value::Float(v[g]),
            AccVec::Avg { sum, n } => Value::Float(if n[g] == 0 { 0.0 } else { sum[g] / n[g] as f64 }),
            AccVec::MinI(v) | AccVec::MaxI(v) => Value::Int(v[g].unwrap_or(0)),
            AccVec::MinF(v) | AccVec::MaxF(v) => Value::Float(v[g].unwrap_or(0.0)),
            AccVec::MinD(v) | AccVec::MaxD(v) => Value::Date(v[g].unwrap_or(0)),
            AccVec::MinS(v) | AccVec::MaxS(v) => {
                Value::Str(v[g].clone().unwrap_or_default())
            }
        }
    }
}

/// A numeric column view with the widening rule of `RowRef::numeric`
/// (`Int`/`Date` widen to `f64`). The discriminant is loop-invariant, so
/// the per-element branch predicts perfectly; `SumF`-family kernels
/// additionally specialize per variant to keep the inner loop monotyped.
enum NumCol<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
    D(&'a [u32]),
}

impl NumCol<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            NumCol::I(v) => v[i] as f64,
            NumCol::F(v) => v[i],
            NumCol::D(v) => v[i] as f64,
        }
    }
}

fn num_col<'a>(batch: &'a ColumnBatch<'_>, col: u32) -> NumCol<'a> {
    match batch.col(col as usize) {
        ColumnData::I64(v) => NumCol::I(v),
        ColumnData::I64View(v) => NumCol::I(v),
        ColumnData::F64(v) => NumCol::F(v),
        ColumnData::F64View(v) => NumCol::F(v),
        ColumnData::Date(v) => NumCol::D(v),
        ColumnData::DateView(v) => NumCol::D(v),
        other => panic!("numeric kernel over {other:?}"),
    }
}

/// Masked integer sum with a dense-word fast path: an all-ones mask word
/// covers 64 contiguous lanes, which are folded through four independent
/// accumulators (the `std::simd`-shaped form the autovectorizer turns
/// into packed adds). Integer addition is associative, so splitting the
/// accumulator cannot change the result; the `f64` kernels keep their
/// single-accumulator evaluation order because float addition is not.
#[inline]
fn sum_masked_i64(mask: &[u64], len: usize, lane: impl Fn(usize) -> i64) -> i64 {
    let mut acc = 0i64;
    for (wi, &w) in mask.iter().enumerate() {
        let base = wi * 64;
        if w == u64::MAX && base + 64 <= len {
            let (mut a0, mut a1, mut a2, mut a3) = (0i64, 0i64, 0i64, 0i64);
            let mut i = base;
            while i < base + 64 {
                a0 += lane(i);
                a1 += lane(i + 1);
                a2 += lane(i + 2);
                a3 += lane(i + 3);
                i += 4;
            }
            acc += a0 + a1 + a2 + a3;
        } else {
            let mut w = w;
            while w != 0 {
                acc += lane(base + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }
    acc
}

/// Run `f(row, group)` over the zipped pair lists.
#[inline]
fn for_pairs(rows: &[u32], groups: &[u32], mut f: impl FnMut(usize, usize)) {
    debug_assert_eq!(rows.len(), groups.len());
    for (&r, &g) in rows.iter().zip(groups) {
        f(r as usize, g as usize);
    }
}

/// Fold batch rows into grouped accumulators: row `rows[i]` of `batch`
/// updates group slot `groups[i]`. `accs` must be [`AccVec::resize`]d to
/// cover every referenced slot and match the kernel's accumulator shape.
pub fn update_grouped(
    kernel: &AggKernel,
    accs: &mut AccVec,
    batch: &ColumnBatch<'_>,
    rows: &[u32],
    groups: &[u32],
) {
    match (kernel, accs) {
        (AggKernel::Count, AccVec::Count(v)) => for_pairs(rows, groups, |_, g| v[g] += 1),
        (AggKernel::SumI { col }, AccVec::SumI(v)) => {
            let d = batch.col(*col as usize).i64s();
            for_pairs(rows, groups, |r, g| v[g] += d[r]);
        }
        (AggKernel::SumF { col }, AccVec::SumF(v)) => match num_col(batch, *col) {
            NumCol::I(d) => for_pairs(rows, groups, |r, g| v[g] += d[r] as f64),
            NumCol::F(d) => for_pairs(rows, groups, |r, g| v[g] += d[r]),
            NumCol::D(d) => for_pairs(rows, groups, |r, g| v[g] += d[r] as f64),
        },
        (AggKernel::Avg { col }, AccVec::Avg { sum, n }) => {
            let d = num_col(batch, *col);
            for_pairs(rows, groups, |r, g| {
                sum[g] += d.get(r);
                n[g] += 1;
            });
        }
        (AggKernel::MinI { col }, AccVec::MinI(v)) => {
            let d = batch.col(*col as usize).i64s();
            for_pairs(rows, groups, |r, g| {
                let x = d[r];
                v[g] = Some(v[g].map_or(x, |m| m.min(x)));
            });
        }
        (AggKernel::MaxI { col }, AccVec::MaxI(v)) => {
            let d = batch.col(*col as usize).i64s();
            for_pairs(rows, groups, |r, g| {
                let x = d[r];
                v[g] = Some(v[g].map_or(x, |m| m.max(x)));
            });
        }
        (AggKernel::MinF { col }, AccVec::MinF(v)) => {
            let d = batch.col(*col as usize).f64s();
            for_pairs(rows, groups, |r, g| {
                let x = d[r];
                v[g] = Some(v[g].map_or(x, |m| m.min(x)));
            });
        }
        (AggKernel::MaxF { col }, AccVec::MaxF(v)) => {
            let d = batch.col(*col as usize).f64s();
            for_pairs(rows, groups, |r, g| {
                let x = d[r];
                v[g] = Some(v[g].map_or(x, |m| m.max(x)));
            });
        }
        (AggKernel::MinD { col }, AccVec::MinD(v)) => {
            let d = batch.col(*col as usize).dates();
            for_pairs(rows, groups, |r, g| {
                let x = d[r];
                v[g] = Some(v[g].map_or(x, |m| m.min(x)));
            });
        }
        (AggKernel::MaxD { col }, AccVec::MaxD(v)) => {
            let d = batch.col(*col as usize).dates();
            for_pairs(rows, groups, |r, g| {
                let x = d[r];
                v[g] = Some(v[g].map_or(x, |m| m.max(x)));
            });
        }
        (AggKernel::MinS { col }, AccVec::MinS(v)) => {
            let d = batch.col(*col as usize).strs();
            for_pairs(rows, groups, |r, g| {
                let x = d[r];
                match &v[g] {
                    Some(m) if m.as_str() <= x => {}
                    _ => v[g] = Some(x.to_string()),
                }
            });
        }
        (AggKernel::MaxS { col }, AccVec::MaxS(v)) => {
            let d = batch.col(*col as usize).strs();
            for_pairs(rows, groups, |r, g| {
                let x = d[r];
                match &v[g] {
                    Some(m) if m.as_str() >= x => {}
                    _ => v[g] = Some(x.to_string()),
                }
            });
        }
        (AggKernel::SumProdI { a, b }, AccVec::SumI(v)) => {
            let da = batch.col(*a as usize).i64s();
            let db = batch.col(*b as usize).i64s();
            for_pairs(rows, groups, |r, g| v[g] += da[r] * db[r]);
        }
        (AggKernel::SumProdF { a, b }, AccVec::SumF(v)) => {
            let da = num_col(batch, *a);
            let db = num_col(batch, *b);
            for_pairs(rows, groups, |r, g| v[g] += da.get(r) * db.get(r));
        }
        (AggKernel::SumDiffI { a, b }, AccVec::SumI(v)) => {
            let da = batch.col(*a as usize).i64s();
            let db = batch.col(*b as usize).i64s();
            for_pairs(rows, groups, |r, g| v[g] += da[r] - db[r]);
        }
        (AggKernel::SumDiffF { a, b }, AccVec::SumF(v)) => {
            let da = num_col(batch, *a);
            let db = num_col(batch, *b);
            for_pairs(rows, groups, |r, g| v[g] += da.get(r) - db.get(r));
        }
        (k, a) => unreachable!("kernel/accumulator mismatch: {k:?} vs {a:?}"),
    }
}

/// Fold the mask-selected rows of `batch` into group slot 0 — the scalar
/// (no GROUP BY) form. `mask` is a selection mask over batch rows with
/// tail bits clear (as `eval_batch` produces); `accs` must have ≥ 1 slot.
pub fn update_masked(
    kernel: &AggKernel,
    accs: &mut AccVec,
    batch: &ColumnBatch<'_>,
    mask: &[u64],
) {
    // COUNT over a mask is pure popcount — no column read at all.
    if let (AggKernel::Count, AccVec::Count(v)) = (kernel, &mut *accs) {
        v[0] += mask.iter().map(|w| w.count_ones() as i64).sum::<i64>();
        return;
    }
    match (kernel, accs) {
        (AggKernel::SumI { col }, AccVec::SumI(v)) => {
            let d = batch.col(*col as usize).i64s();
            v[0] += sum_masked_i64(mask, d.len(), |r| d[r]);
        }
        (AggKernel::SumF { col }, AccVec::SumF(v)) => {
            let d = num_col(batch, *col);
            let mut acc = 0.0f64;
            for r in iter_ones(mask) {
                acc += d.get(r);
            }
            v[0] += acc;
        }
        (AggKernel::Avg { col }, AccVec::Avg { sum, n }) => {
            let d = num_col(batch, *col);
            let mut acc = 0.0f64;
            let mut cnt = 0i64;
            for r in iter_ones(mask) {
                acc += d.get(r);
                cnt += 1;
            }
            sum[0] += acc;
            n[0] += cnt;
        }
        (AggKernel::MinI { col }, AccVec::MinI(v)) => {
            let d = batch.col(*col as usize).i64s();
            for r in iter_ones(mask) {
                let x = d[r];
                v[0] = Some(v[0].map_or(x, |m| m.min(x)));
            }
        }
        (AggKernel::MaxI { col }, AccVec::MaxI(v)) => {
            let d = batch.col(*col as usize).i64s();
            for r in iter_ones(mask) {
                let x = d[r];
                v[0] = Some(v[0].map_or(x, |m| m.max(x)));
            }
        }
        (AggKernel::MinF { col }, AccVec::MinF(v)) => {
            let d = batch.col(*col as usize).f64s();
            for r in iter_ones(mask) {
                let x = d[r];
                v[0] = Some(v[0].map_or(x, |m| m.min(x)));
            }
        }
        (AggKernel::MaxF { col }, AccVec::MaxF(v)) => {
            let d = batch.col(*col as usize).f64s();
            for r in iter_ones(mask) {
                let x = d[r];
                v[0] = Some(v[0].map_or(x, |m| m.max(x)));
            }
        }
        (AggKernel::MinD { col }, AccVec::MinD(v)) => {
            let d = batch.col(*col as usize).dates();
            for r in iter_ones(mask) {
                let x = d[r];
                v[0] = Some(v[0].map_or(x, |m| m.min(x)));
            }
        }
        (AggKernel::MaxD { col }, AccVec::MaxD(v)) => {
            let d = batch.col(*col as usize).dates();
            for r in iter_ones(mask) {
                let x = d[r];
                v[0] = Some(v[0].map_or(x, |m| m.max(x)));
            }
        }
        (AggKernel::MinS { col }, AccVec::MinS(v)) => {
            let d = batch.col(*col as usize).strs();
            for r in iter_ones(mask) {
                let x = d[r];
                match &v[0] {
                    Some(m) if m.as_str() <= x => {}
                    _ => v[0] = Some(x.to_string()),
                }
            }
        }
        (AggKernel::MaxS { col }, AccVec::MaxS(v)) => {
            let d = batch.col(*col as usize).strs();
            for r in iter_ones(mask) {
                let x = d[r];
                match &v[0] {
                    Some(m) if m.as_str() >= x => {}
                    _ => v[0] = Some(x.to_string()),
                }
            }
        }
        (AggKernel::SumProdI { a, b }, AccVec::SumI(v)) => {
            let da = batch.col(*a as usize).i64s();
            let db = batch.col(*b as usize).i64s();
            v[0] += sum_masked_i64(mask, da.len(), |r| da[r] * db[r]);
        }
        (AggKernel::SumProdF { a, b }, AccVec::SumF(v)) => {
            let da = num_col(batch, *a);
            let db = num_col(batch, *b);
            let mut acc = 0.0f64;
            for r in iter_ones(mask) {
                acc += da.get(r) * db.get(r);
            }
            v[0] += acc;
        }
        (AggKernel::SumDiffI { a, b }, AccVec::SumI(v)) => {
            let da = batch.col(*a as usize).i64s();
            let db = batch.col(*b as usize).i64s();
            v[0] += sum_masked_i64(mask, da.len(), |r| da[r] - db[r]);
        }
        (AggKernel::SumDiffF { a, b }, AccVec::SumF(v)) => {
            let da = num_col(batch, *a);
            let db = num_col(batch, *b);
            let mut acc = 0.0f64;
            for r in iter_ones(mask) {
                acc += da.get(r) - db.get(r);
            }
            v[0] += acc;
        }
        (k, a) => unreachable!("kernel/accumulator mismatch: {k:?} vs {a:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{finalize_acc, make_acc, update_acc};
    use qs_storage::{mask_words, Page};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("g", DataType::Int),
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("d", DataType::Date),
            ("s", DataType::Char(4)),
        ])
    }

    fn page() -> Page {
        Page::from_values(
            &schema(),
            &(0..20)
                .map(|i| {
                    vec![
                        Value::Int(i % 3),
                        Value::Int(i * 7 - 50),
                        Value::Float(i as f64 * 0.25 - 2.0),
                        Value::Date(19970101 + (i as u32 % 9)),
                        Value::Str(format!("s{:02}", (i * 13) % 40)),
                    ]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn all_funcs() -> Vec<AggFunc> {
        vec![
            AggFunc::Count,
            AggFunc::Sum(1),
            AggFunc::Sum(2),
            AggFunc::Avg(1),
            AggFunc::Avg(3),
            AggFunc::Min(1),
            AggFunc::Max(2),
            AggFunc::Min(3),
            AggFunc::Max(3),
            AggFunc::Min(4),
            AggFunc::Max(4),
            AggFunc::SumProd(1, 1),
            AggFunc::SumProd(1, 2),
            AggFunc::SumDiff(1, 1),
            AggFunc::SumDiff(2, 1),
        ]
    }

    #[test]
    fn grouped_kernels_match_row_oracle() {
        let s = schema();
        let p = page();
        let n = p.rows();
        // Group rows by column 0 (values 0..3) with slot = value.
        let rows: Vec<u32> = (0..n as u32).collect();
        let groups: Vec<u32> = p.iter().map(|r| r.i64_col(0) as u32).collect();
        for func in all_funcs() {
            let kernel = AggKernel::compile(&func, &s);
            let mut accs = AccVec::for_kernel(&kernel);
            accs.resize(3);
            let batch = ColumnBatch::from_page(&p, &kernel_columns(&[kernel]));
            update_grouped(&kernel, &mut accs, &batch, &rows, &groups);
            for g in 0..3 {
                let mut oracle = make_acc(&func, &s);
                for row in p.iter().filter(|r| r.i64_col(0) as u32 == g as u32) {
                    update_acc(&mut oracle, &func, &row);
                }
                assert_eq!(accs.finalize(g), finalize_acc(&oracle), "{func:?} group {g}");
            }
        }
    }

    #[test]
    fn masked_kernels_match_row_oracle() {
        let s = schema();
        let p = page();
        let n = p.rows();
        // Every third row selected, plus the last.
        let mut mask = vec![0u64; mask_words(n)];
        for i in (0..n).step_by(3).chain([n - 1]) {
            mask[i / 64] |= 1 << (i % 64);
        }
        for func in all_funcs() {
            let kernel = AggKernel::compile(&func, &s);
            let mut accs = AccVec::for_kernel(&kernel);
            accs.resize(1);
            let batch = ColumnBatch::from_page(&p, &kernel_columns(&[kernel]));
            update_masked(&kernel, &mut accs, &batch, &mask);
            let mut oracle = make_acc(&func, &s);
            for (i, row) in p.iter().enumerate() {
                if mask[i / 64] & (1 << (i % 64)) != 0 {
                    update_acc(&mut oracle, &func, &row);
                }
            }
            assert_eq!(accs.finalize(0), finalize_acc(&oracle), "{func:?}");
        }
    }

    #[test]
    fn empty_selection_finalizes_neutral() {
        let s = schema();
        let p = page();
        for func in all_funcs() {
            let kernel = AggKernel::compile(&func, &s);
            let mut accs = AccVec::for_kernel(&kernel);
            accs.resize(1);
            let batch = ColumnBatch::from_page(&p, &kernel_columns(&[kernel]));
            update_masked(&kernel, &mut accs, &batch, &vec![0u64; mask_words(p.rows())]);
            assert_eq!(
                accs.finalize(0),
                finalize_acc(&make_acc(&func, &s)),
                "{func:?}"
            );
        }
    }

    #[test]
    fn dense_word_sum_matches_scalar_fold() {
        // 150 rows: words 0 and 1 are all-ones (dense 64-lane blocks),
        // the tail word is sparse — both paths of `sum_masked_i64`, on
        // both layouts.
        let s = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let rows: Vec<Vec<Value>> = (0..150i64)
            .map(|i| vec![Value::Int(i * 31 - 1000), Value::Int(7 - i)])
            .collect();
        let p = Page::from_values(&s, &rows).unwrap();
        let mut mask = vec![u64::MAX, u64::MAX, 0u64];
        for i in 128..150 {
            if i % 3 == 0 {
                mask[2] |= 1u64 << (i - 128);
            }
        }
        for page in [p.clone(), p.to_columnar()] {
            for func in [AggFunc::Sum(0), AggFunc::SumProd(0, 1), AggFunc::SumDiff(0, 1)] {
                let kernel = AggKernel::compile(&func, &s);
                let mut accs = AccVec::for_kernel(&kernel);
                accs.resize(1);
                let batch = ColumnBatch::from_page(&page, &[0, 1]);
                update_masked(&kernel, &mut accs, &batch, &mask);
                // Scalar reference: fold selected lanes one at a time.
                let da = batch.col(0).i64s();
                let db = batch.col(1).i64s();
                let expect: i64 = iter_ones(&mask)
                    .map(|r| match func {
                        AggFunc::Sum(_) => da[r],
                        AggFunc::SumProd(..) => da[r] * db[r],
                        _ => da[r] - db[r],
                    })
                    .sum();
                assert_eq!(accs.finalize(0), Value::Int(expect), "{func:?}");
            }
        }
    }

    #[test]
    fn kernel_columns_union() {
        let s = schema();
        let ks = [
            AggKernel::compile(&AggFunc::Count, &s),
            AggKernel::compile(&AggFunc::SumProd(2, 1), &s),
            AggKernel::compile(&AggFunc::Min(1), &s),
        ];
        assert_eq!(kernel_columns(&ks), vec![1, 2]);
    }

    #[test]
    fn resize_grows_only() {
        let mut a = AccVec::Count(vec![5]);
        a.resize(3);
        assert_eq!(a.len(), 3);
        a.resize(1);
        assert_eq!(a.len(), 3);
        assert_eq!(a.finalize(0), Value::Int(5));
        assert_eq!(a.finalize(2), Value::Int(0));
    }
}
