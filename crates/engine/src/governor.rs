//! CPU-parallelism governor — the "bind the server to N cores" knob.
//!
//! The demo binds the database process to 1–32 cores to control available
//! parallelism. We reproduce the knob with a counting semaphore of *core
//! permits*: every CPU-bound unit of operator work (one page's worth of
//! filtering, probing, aggregating, copying) runs while holding a permit,
//! so at most `cores` such units progress concurrently, regardless of how
//! many worker threads exist. Blocking actions (FIFO waits, simulated
//! disk I/O) are done *without* a permit, like a real core that is
//! stalled, not busy.

use crate::metrics::Metrics;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Instant;

/// Counting semaphore of core permits plus busy-time accounting.
pub struct CoreGovernor {
    cores: usize,
    in_use: Mutex<usize>,
    available: Condvar,
    metrics: Arc<Metrics>,
}

impl CoreGovernor {
    /// Governor with `cores` permits; `0` means unlimited (no governing).
    pub fn new(cores: usize, metrics: Arc<Metrics>) -> Arc<Self> {
        Arc::new(CoreGovernor {
            cores,
            in_use: Mutex::new(0),
            available: Condvar::new(),
            metrics,
        })
    }

    /// Configured core count (`0` = unlimited).
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Run `f` while holding a core permit; accumulates its wall time into
    /// `busy_nanos` (the basis of the GUI's CPU-utilization plot).
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        if self.cores == 0 {
            let t = Instant::now();
            let r = f();
            self.metrics.busy_nanos.fetch_add(
                t.elapsed().as_nanos() as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
            return r;
        }
        {
            let mut in_use = self.in_use.lock();
            while *in_use >= self.cores {
                self.available.wait(&mut in_use);
            }
            *in_use += 1;
        }
        let t = Instant::now();
        let r = f();
        self.metrics.busy_nanos.fetch_add(
            t.elapsed().as_nanos() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        {
            let mut in_use = self.in_use.lock();
            *in_use -= 1;
        }
        self.available.notify_one();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn unlimited_governor_never_blocks() {
        let g = CoreGovernor::new(0, Metrics::new());
        let out = g.run(|| 41 + 1);
        assert_eq!(out, 42);
    }

    #[test]
    fn permits_bound_concurrency() {
        let g = CoreGovernor::new(2, Metrics::new());
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let g = g.clone();
                let peak = peak.clone();
                let cur = cur.clone();
                std::thread::spawn(move || {
                    g.run(|| {
                        let c = cur.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(c, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(10));
                        cur.fetch_sub(1, Ordering::SeqCst);
                    });
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {peak:?}");
    }

    #[test]
    fn busy_time_accumulates() {
        let m = Metrics::new();
        let g = CoreGovernor::new(1, m.clone());
        g.run(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(m.snapshot().busy_nanos >= 5_000_000);
    }
}
