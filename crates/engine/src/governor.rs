//! CPU-parallelism governor — the "bind the server to N cores" knob.
//!
//! The demo binds the database process to 1–32 cores to control available
//! parallelism. We reproduce the knob with a counting semaphore of *core
//! permits*: every CPU-bound unit of operator work (one page's worth of
//! filtering, probing, aggregating, copying) runs while holding a permit,
//! so at most `cores` such units progress concurrently, regardless of how
//! many worker threads exist. Blocking actions (FIFO waits, simulated
//! disk I/O) are done *without* a permit, like a real core that is
//! stalled, not busy.

use crate::error::EngineError;
use crate::metrics::Metrics;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counting semaphore of core permits plus busy-time accounting.
pub struct CoreGovernor {
    cores: usize,
    in_use: Mutex<usize>,
    available: Condvar,
    metrics: Arc<Metrics>,
}

impl CoreGovernor {
    /// Governor with `cores` permits; `0` means unlimited (no governing).
    pub fn new(cores: usize, metrics: Arc<Metrics>) -> Arc<Self> {
        Arc::new(CoreGovernor {
            cores,
            in_use: Mutex::new(0),
            available: Condvar::new(),
            metrics,
        })
    }

    /// Configured core count (`0` = unlimited).
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Run `f` while holding a core permit; accumulates its wall time into
    /// `busy_nanos` (the basis of the GUI's CPU-utilization plot).
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        if self.cores == 0 {
            let t = Instant::now();
            let r = f();
            self.metrics.busy_nanos.fetch_add(
                t.elapsed().as_nanos() as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
            return r;
        }
        {
            let mut in_use = self.in_use.lock();
            while *in_use >= self.cores {
                self.available.wait(&mut in_use);
            }
            *in_use += 1;
        }
        let t = Instant::now();
        let r = f();
        self.metrics.busy_nanos.fetch_add(
            t.elapsed().as_nanos() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        {
            let mut in_use = self.in_use.lock();
            *in_use -= 1;
        }
        self.available.notify_one();
        r
    }
}

/// Configuration of the bounded admission queue — the overload valve.
///
/// Up to `max_concurrent` queries hold admission permits at once; the
/// next `max_queued` submitters wait at most `queue_timeout` for a
/// permit. Anything beyond that — queue full, or the wait timing out —
/// is *shed* with [`EngineError::Shed`] instead of piling onto a
/// saturated engine. Shedding is deliberately loud (a typed error, a
/// `queries_shed` tick) rather than a silent stall: under adversarial
/// load the paper's shared pipelines keep their throughput only if
/// excess admission pressure is refused at the door.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Queries allowed to run concurrently.
    pub max_concurrent: usize,
    /// Submitters allowed to wait for a slot before new arrivals are
    /// shed immediately.
    pub max_queued: usize,
    /// Longest a queued submitter waits before being shed.
    pub queue_timeout: Duration,
}

struct AdmissionState {
    running: usize,
    queued: usize,
}

/// The bounded admission queue. Shared as `Arc<AdmissionGate>`; `admit`
/// blocks (bounded by `queue_timeout`) and either returns a permit or
/// sheds the query.
pub struct AdmissionGate {
    config: AdmissionConfig,
    state: Mutex<AdmissionState>,
    freed: Condvar,
    metrics: Arc<Metrics>,
}

impl AdmissionGate {
    /// Gate with the given bounds.
    pub fn new(config: AdmissionConfig, metrics: Arc<Metrics>) -> Arc<Self> {
        Arc::new(AdmissionGate {
            config,
            state: Mutex::new(AdmissionState {
                running: 0,
                queued: 0,
            }),
            freed: Condvar::new(),
            metrics,
        })
    }

    /// The configured bounds.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Currently admitted (permit-holding) queries.
    pub fn running(&self) -> usize {
        self.state.lock().running
    }

    /// Load snapshot: `(running, queued)` under one lock acquisition —
    /// the mode router's live-concurrency signal.
    pub fn load(&self) -> (usize, usize) {
        let state = self.state.lock();
        (state.running, state.queued)
    }

    /// Acquire an admission permit or shed the query. The permit is
    /// released when dropped — tie it to the query's ticket so the slot
    /// frees exactly when the query's results are consumed or abandoned.
    pub fn admit(self: &Arc<Self>) -> Result<AdmissionPermit, EngineError> {
        let mut state = self.state.lock();
        if state.running < self.config.max_concurrent {
            state.running += 1;
            return Ok(AdmissionPermit { gate: self.clone() });
        }
        if state.queued >= self.config.max_queued {
            self.metrics.queries_shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Err(EngineError::Shed(Self::hint(&state)));
        }
        state.queued += 1;
        let deadline = Instant::now() + self.config.queue_timeout;
        loop {
            if state.running < self.config.max_concurrent {
                state.running += 1;
                state.queued -= 1;
                return Ok(AdmissionPermit { gate: self.clone() });
            }
            let now = Instant::now();
            if now >= deadline {
                state.queued -= 1;
                self.metrics.queries_shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Err(EngineError::Shed(Self::hint(&state)));
            }
            self.freed.wait_for(&mut state, deadline - now);
        }
    }

    /// Load snapshot for the [`RetryHint`] attached to a shed, taken
    /// under the state lock so `queue_depth`/`running` are consistent.
    fn hint(state: &AdmissionState) -> crate::error::RetryHint {
        crate::error::RetryHint {
            queue_depth: state.queued,
            running: state.running,
        }
    }

    fn release(&self) {
        {
            let mut state = self.state.lock();
            state.running -= 1;
        }
        self.freed.notify_one();
    }
}

/// A held admission slot; dropping it frees the slot for a queued query.
pub struct AdmissionPermit {
    gate: Arc<AdmissionGate>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn unlimited_governor_never_blocks() {
        let g = CoreGovernor::new(0, Metrics::new());
        let out = g.run(|| 41 + 1);
        assert_eq!(out, 42);
    }

    #[test]
    fn permits_bound_concurrency() {
        let g = CoreGovernor::new(2, Metrics::new());
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let g = g.clone();
                let peak = peak.clone();
                let cur = cur.clone();
                std::thread::spawn(move || {
                    g.run(|| {
                        let c = cur.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(c, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(10));
                        cur.fetch_sub(1, Ordering::SeqCst);
                    });
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {peak:?}");
    }

    #[test]
    fn busy_time_accumulates() {
        let m = Metrics::new();
        let g = CoreGovernor::new(1, m.clone());
        g.run(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(m.snapshot().busy_nanos >= 5_000_000);
    }

    #[test]
    fn admission_sheds_when_queue_full() {
        let m = Metrics::new();
        let gate = AdmissionGate::new(
            AdmissionConfig {
                max_concurrent: 1,
                max_queued: 0,
                queue_timeout: Duration::from_millis(50),
            },
            m.clone(),
        );
        let p = gate.admit().expect("first query admitted");
        // Queue depth 0: the second arrival is shed immediately, and the
        // hint snapshots the gate saturated at its concurrency bound.
        match gate.admit().err() {
            Some(EngineError::Shed(hint)) => {
                assert_eq!(hint.running, 1);
                assert_eq!(hint.queue_depth, 0);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(m.snapshot().queries_shed, 1);
        drop(p);
        // Slot freed: admission works again.
        assert!(gate.admit().is_ok());
    }

    #[test]
    fn admission_sheds_on_queue_timeout() {
        let m = Metrics::new();
        let gate = AdmissionGate::new(
            AdmissionConfig {
                max_concurrent: 1,
                max_queued: 4,
                queue_timeout: Duration::from_millis(20),
            },
            m.clone(),
        );
        let _held = gate.admit().expect("admitted");
        let t = Instant::now();
        assert!(matches!(gate.admit(), Err(EngineError::Shed(_))));
        assert!(t.elapsed() >= Duration::from_millis(20));
        assert_eq!(m.snapshot().queries_shed, 1);
    }

    #[test]
    fn queued_submitter_gets_freed_slot() {
        let m = Metrics::new();
        let gate = AdmissionGate::new(
            AdmissionConfig {
                max_concurrent: 1,
                max_queued: 4,
                queue_timeout: Duration::from_secs(5),
            },
            m.clone(),
        );
        let p = gate.admit().expect("admitted");
        let g2 = gate.clone();
        let waiter = std::thread::spawn(move || g2.admit().map(drop));
        std::thread::sleep(Duration::from_millis(20));
        drop(p); // frees the slot; the queued waiter must get it
        assert!(waiter.join().unwrap().is_ok());
        assert_eq!(m.snapshot().queries_shed, 0);
        assert_eq!(gate.running(), 0);
    }
}
