//! Serial reference evaluator — the testing oracle.
//!
//! A deliberately simple, single-threaded, materializing interpreter of
//! [`LogicalPlan`]s that shares **no code** with the pipelined engine's
//! operators. Integration and property tests compare every execution mode
//! (query-centric, SP-push, SP-pull, GQP, GQP+SP) against this oracle.

use crate::EngineError;
use qs_plan::{AggFunc, AggSpec, LogicalPlan};
use qs_storage::{Catalog, DataType, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A row of decoded values.
pub type Row = Vec<Value>;

/// Hashable/comparable wrapper for group keys over decoded values.
#[derive(Debug, Clone, PartialEq)]
struct Key(Vec<Value>);

impl Eq for Key {}

impl std::hash::Hash for Key {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            match v {
                Value::Int(x) => {
                    state.write_u8(1);
                    state.write_i64(*x);
                }
                Value::Float(x) => {
                    state.write_u8(2);
                    state.write_u64(x.to_bits());
                }
                Value::Date(x) => {
                    state.write_u8(3);
                    state.write_u32(*x);
                }
                Value::Str(s) => {
                    state.write_u8(4);
                    state.write(s.as_bytes());
                }
            }
        }
    }
}

fn num(v: &Value) -> f64 {
    match v {
        Value::Int(x) => *x as f64,
        Value::Float(x) => *x,
        Value::Date(x) => *x as f64,
        Value::Str(_) => panic!("numeric aggregate over string"),
    }
}

fn int(v: &Value) -> i64 {
    match v {
        Value::Int(x) => *x,
        other => panic!("expected Int, got {other:?}"),
    }
}

/// Evaluate `plan` against the raw table pages (bypassing the buffer
/// pool), returning decoded rows.
pub fn eval(plan: &LogicalPlan, catalog: &Catalog) -> Result<Vec<Row>, EngineError> {
    plan.validate(catalog)?;
    eval_inner(plan, catalog)
}

fn eval_inner(plan: &LogicalPlan, catalog: &Catalog) -> Result<Vec<Row>, EngineError> {
    match plan {
        LogicalPlan::Scan {
            table,
            predicate,
            projection,
        } => {
            let t = catalog.get(table)?;
            let mut out = Vec::new();
            for pno in 0..t.page_count() {
                // The oracle walks encoded rows; columnar pages are
                // flipped to row-major first (oracle speed is irrelevant,
                // independence from the columnar read path is the point).
                let page = t.raw_page(pno).to_row_major();
                for row in page.iter() {
                    if let Some(p) = predicate {
                        if !p.eval(&row) {
                            continue;
                        }
                    }
                    let vals = row.values();
                    out.push(match projection {
                        Some(cols) => cols.iter().map(|&c| vals[c].clone()).collect(),
                        None => vals,
                    });
                }
            }
            Ok(out)
        }
        LogicalPlan::Filter { input, predicate } => {
            let in_schema = input.output_schema(catalog)?;
            let rows = eval_inner(input, catalog)?;
            Ok(filter_rows(rows, predicate, &in_schema))
        }
        LogicalPlan::HashJoin {
            build,
            probe,
            build_key,
            probe_key,
        } => {
            let build_rows = eval_inner(build, catalog)?;
            let probe_rows = eval_inner(probe, catalog)?;
            let mut ht: HashMap<i64, Vec<&Row>> = HashMap::new();
            for r in &build_rows {
                ht.entry(int(&r[*build_key])).or_default().push(r);
            }
            let mut out = Vec::new();
            for p in &probe_rows {
                if let Some(matches) = ht.get(&int(&p[*probe_key])) {
                    for b in matches {
                        let mut row = p.clone();
                        row.extend((*b).iter().cloned());
                        out.push(row);
                    }
                }
            }
            Ok(out)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rows = eval_inner(input, catalog)?;
            let in_schema = input.output_schema(catalog)?;
            Ok(aggregate_rows(rows, group_by, aggs, &in_schema))
        }
        LogicalPlan::Sort { input, keys } => {
            let mut rows = eval_inner(input, catalog)?;
            rows.sort_by(|a, b| {
                for &(c, asc) in keys {
                    let ord = a[c].total_cmp(&b[c]);
                    let ord = if asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(rows)
        }
        LogicalPlan::Project { input, columns } => {
            let rows = eval_inner(input, catalog)?;
            Ok(rows
                .into_iter()
                .map(|r| columns.iter().map(|&c| r[c].clone()).collect())
                .collect())
        }
        LogicalPlan::Limit { input, n } => {
            let mut rows = eval_inner(input, catalog)?;
            rows.truncate(*n);
            Ok(rows)
        }
        LogicalPlan::Distinct { input } => {
            let rows = eval_inner(input, catalog)?;
            let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
            // Values lack Eq/Hash (floats); key on the debug rendering,
            // which is injective for the four storage types.
            Ok(rows
                .into_iter()
                .filter(|r| seen.insert(format!("{r:?}")))
                .collect())
        }
        LogicalPlan::TopK { input, keys, n } => {
            // Semantics by definition: full sort, then first n.
            let mut rows = eval_inner(
                &LogicalPlan::Sort {
                    input: input.clone(),
                    keys: keys.clone(),
                },
                catalog,
            )?;
            rows.truncate(*n);
            Ok(rows)
        }
    }
}

fn filter_rows(rows: Vec<Row>, predicate: &qs_plan::Expr, schema: &Arc<Schema>) -> Vec<Row> {
    // Re-encode rows to reuse Expr::eval (which operates on encoded rows);
    // this keeps the oracle's predicate semantics identical by
    // construction while the relational logic stays independent.
    rows.into_iter()
        .filter(|r| {
            let page = qs_storage::Page::from_values(schema, std::slice::from_ref(r))
                .expect("row fits page");
            predicate.eval(&page.row(0))
        })
        .collect()
}

fn aggregate_rows(
    rows: Vec<Row>,
    group_by: &[usize],
    aggs: &[AggSpec],
    in_schema: &Arc<Schema>,
) -> Vec<Row> {
    #[derive(Clone)]
    enum A {
        Count(i64),
        SumI(i64),
        SumF(f64),
        Avg(f64, i64),
        Min(Option<Value>),
        Max(Option<Value>),
        SumProdI(i64),
        SumProdF(f64),
        SumDiffI(i64),
        SumDiffF(f64),
    }
    let is_int = |c: usize| in_schema.dtype(c) == DataType::Int;
    let mk = |f: &AggFunc| match f {
        AggFunc::Count => A::Count(0),
        AggFunc::Sum(c) => {
            if is_int(*c) {
                A::SumI(0)
            } else {
                A::SumF(0.0)
            }
        }
        AggFunc::Avg(_) => A::Avg(0.0, 0),
        AggFunc::Min(_) => A::Min(None),
        AggFunc::Max(_) => A::Max(None),
        AggFunc::SumProd(a, b) => {
            if is_int(*a) && is_int(*b) {
                A::SumProdI(0)
            } else {
                A::SumProdF(0.0)
            }
        }
        AggFunc::SumDiff(a, b) => {
            if is_int(*a) && is_int(*b) {
                A::SumDiffI(0)
            } else {
                A::SumDiffF(0.0)
            }
        }
    };

    let mut groups: HashMap<Key, Vec<A>> = HashMap::new();
    let mut order: Vec<Key> = Vec::new();
    for row in &rows {
        let key = Key(group_by.iter().map(|&g| row[g].clone()).collect());
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter().map(|a| mk(&a.func)).collect()
        });
        for (acc, spec) in accs.iter_mut().zip(aggs) {
            match (acc, &spec.func) {
                (A::Count(n), AggFunc::Count) => *n += 1,
                (A::SumI(s), AggFunc::Sum(c)) => *s += int(&row[*c]),
                (A::SumF(s), AggFunc::Sum(c)) => *s += num(&row[*c]),
                (A::Avg(s, n), AggFunc::Avg(c)) => {
                    *s += num(&row[*c]);
                    *n += 1;
                }
                (A::Min(m), AggFunc::Min(c)) => {
                    let v = row[*c].clone();
                    let replace = m
                        .as_ref()
                        .map(|x| v.total_cmp(x) == std::cmp::Ordering::Less)
                        .unwrap_or(true);
                    if replace {
                        *m = Some(v);
                    }
                }
                (A::Max(m), AggFunc::Max(c)) => {
                    let v = row[*c].clone();
                    let replace = m
                        .as_ref()
                        .map(|x| v.total_cmp(x) == std::cmp::Ordering::Greater)
                        .unwrap_or(true);
                    if replace {
                        *m = Some(v);
                    }
                }
                (A::SumProdI(s), AggFunc::SumProd(a, b)) => {
                    *s += int(&row[*a]) * int(&row[*b])
                }
                (A::SumProdF(s), AggFunc::SumProd(a, b)) => {
                    *s += num(&row[*a]) * num(&row[*b])
                }
                (A::SumDiffI(s), AggFunc::SumDiff(a, b)) => {
                    *s += int(&row[*a]) - int(&row[*b])
                }
                (A::SumDiffF(s), AggFunc::SumDiff(a, b)) => {
                    *s += num(&row[*a]) - num(&row[*b])
                }
                _ => unreachable!("acc/func mismatch"),
            }
        }
    }
    if group_by.is_empty() && groups.is_empty() {
        let key = Key(Vec::new());
        groups.insert(key.clone(), aggs.iter().map(|a| mk(&a.func)).collect());
        order.push(key);
    }

    let fin = |a: &A, f: &AggFunc| -> Value {
        match a {
            A::Count(n) => Value::Int(*n),
            A::SumI(s) => Value::Int(*s),
            A::SumF(s) => Value::Float(*s),
            A::Avg(s, n) => Value::Float(if *n == 0 { 0.0 } else { s / *n as f64 }),
            A::Min(m) | A::Max(m) => m.clone().unwrap_or_else(|| {
                // Empty global aggregate: zero of the column type.
                let c = f.input_col().expect("min/max has a column");
                match in_schema.dtype(c) {
                    DataType::Int => Value::Int(0),
                    DataType::Float => Value::Float(0.0),
                    DataType::Date => Value::Date(0),
                    DataType::Char(_) => Value::Str(String::new()),
                }
            }),
            A::SumProdI(s) | A::SumDiffI(s) => Value::Int(*s),
            A::SumProdF(s) | A::SumDiffF(s) => Value::Float(*s),
        }
    };

    order
        .into_iter()
        .map(|key| {
            let accs = &groups[&key];
            let mut row: Row = key.0;
            for (a, spec) in accs.iter().zip(aggs) {
                row.push(fin(a, &spec.func));
            }
            row
        })
        .collect()
}

/// Canonicalize rows for order-insensitive comparison: sorts by the total
/// order over values.
pub fn canon(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

/// Assert two row sets are equal up to row order, with float tolerance.
/// Panics with a readable diff on mismatch.
pub fn assert_rows_match(actual: Vec<Row>, expected: Vec<Row>, float_tol: f64) {
    let a = canon(actual);
    let e = canon(expected);
    assert_eq!(a.len(), e.len(), "row count: got {}, want {}", a.len(), e.len());
    for (i, (ra, re)) in a.iter().zip(e.iter()).enumerate() {
        assert_eq!(ra.len(), re.len(), "row {i} arity");
        for (j, (va, ve)) in ra.iter().zip(re.iter()).enumerate() {
            let ok = match (va, ve) {
                (Value::Float(x), Value::Float(y)) => {
                    (x - y).abs() <= float_tol * (1.0 + y.abs())
                }
                (x, y) => x == y,
            };
            assert!(ok, "row {i} col {j}: got {va:?}, want {ve:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_plan::{AggSpec, Expr, PlanBuilder};
    use qs_storage::TableBuilder;

    fn catalog() -> Arc<Catalog> {
        let cat = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("g", DataType::Int),
            ("v", DataType::Int),
        ]);
        let mut b = TableBuilder::with_page_bytes("t", schema, 64);
        for i in 0..10i64 {
            b.push_values(&[Value::Int(i), Value::Int(i % 2), Value::Int(i * 10)])
                .unwrap();
        }
        cat.register(b);
        let dim = Schema::from_pairs(&[("dk", DataType::Int), ("label", DataType::Char(3))]);
        let mut b = TableBuilder::new("d", dim);
        b.push_values(&[Value::Int(0), Value::Str("ev".into())]).unwrap();
        b.push_values(&[Value::Int(1), Value::Str("od".into())]).unwrap();
        cat.register(b);
        cat
    }

    #[test]
    fn scan_filter_project() {
        let cat = catalog();
        let plan = PlanBuilder::scan(&cat, "t")
            .unwrap()
            .filter(Expr::ge(0, 5i64))
            .unwrap()
            .project(&["v"])
            .unwrap()
            .build()
            .unwrap();
        let rows = eval(&plan, &cat).unwrap();
        assert_eq!(
            rows,
            (5..10).map(|i| vec![Value::Int(i * 10)]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn join_and_group() {
        let cat = catalog();
        let plan = PlanBuilder::scan(&cat, "t")
            .unwrap()
            .join_dim("d", "g", "dk", None)
            .unwrap()
            .aggregate(
                &["label"],
                vec![
                    AggSpec::new(AggFunc::Sum(2), "sum_v"),
                    AggSpec::new(AggFunc::Count, "n"),
                ],
            )
            .unwrap()
            .build()
            .unwrap();
        let rows = canon(eval(&plan, &cat).unwrap());
        assert_eq!(
            rows,
            vec![
                vec![Value::Str("ev".into()), Value::Int(200), Value::Int(5)],
                vec![Value::Str("od".into()), Value::Int(250), Value::Int(5)],
            ]
        );
    }

    #[test]
    fn sort_limit() {
        let cat = catalog();
        let plan = PlanBuilder::scan(&cat, "t")
            .unwrap()
            .sort(&[("k", false)])
            .unwrap()
            .limit(3)
            .build()
            .unwrap();
        let rows = eval(&plan, &cat).unwrap();
        let keys: Vec<i64> = rows.iter().map(|r| int(&r[0])).collect();
        assert_eq!(keys, vec![9, 8, 7]);
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let cat = catalog();
        let plan = PlanBuilder::scan(&cat, "t")
            .unwrap()
            .filter(Expr::eq(0, 999i64))
            .unwrap()
            .aggregate(
                &[],
                vec![
                    AggSpec::new(AggFunc::Count, "n"),
                    AggSpec::new(AggFunc::Sum(2), "s"),
                    AggSpec::new(AggFunc::Min(2), "m"),
                ],
            )
            .unwrap()
            .build()
            .unwrap();
        let rows = eval(&plan, &cat).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Int(0), Value::Int(0)]]);
    }

    #[test]
    fn assert_rows_match_tolerates_floats() {
        assert_rows_match(
            vec![vec![Value::Float(1.0000000001)]],
            vec![vec![Value::Float(1.0)]],
            1e-6,
        );
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn assert_rows_match_detects_missing_rows() {
        assert_rows_match(vec![], vec![vec![Value::Int(1)]], 0.0);
    }
}
