//! Aggregate accumulators, shared by the query-centric aggregation
//! operator ([`crate::ops`]) and the CJOIN shared-aggregation extension
//! (`qs-cjoin::shared_agg`). Accumulators are monomorphized per input
//! type at creation so the per-row update path is branch-cheap.

use qs_plan::AggFunc;
use qs_storage::{DataType, RowRef, Schema, Value};

#[derive(Debug, Clone)]
/// One accumulator instance per (group, aggregate-spec) pair.
pub enum Acc {
    Count(i64),
    SumI(i64),
    SumF(f64),
    Avg { sum: f64, n: i64 },
    MinI(Option<i64>),
    MaxI(Option<i64>),
    MinF(Option<f64>),
    MaxF(Option<f64>),
    MinD(Option<u32>),
    MaxD(Option<u32>),
    MinS(Option<String>),
    MaxS(Option<String>),
    SumProdI(i64),
    SumProdF(f64),
    SumDiffI(i64),
    SumDiffF(f64),
}

/// Fresh accumulator for `func` over rows of `in_schema`.
pub fn make_acc(func: &AggFunc, in_schema: &Schema) -> Acc {
    let is_int = |c: usize| in_schema.dtype(c) == DataType::Int;
    match func {
        AggFunc::Count => Acc::Count(0),
        AggFunc::Sum(c) => {
            if is_int(*c) {
                Acc::SumI(0)
            } else {
                Acc::SumF(0.0)
            }
        }
        AggFunc::Avg(_) => Acc::Avg { sum: 0.0, n: 0 },
        AggFunc::Min(c) => match in_schema.dtype(*c) {
            DataType::Int => Acc::MinI(None),
            DataType::Float => Acc::MinF(None),
            DataType::Date => Acc::MinD(None),
            DataType::Char(_) => Acc::MinS(None),
        },
        AggFunc::Max(c) => match in_schema.dtype(*c) {
            DataType::Int => Acc::MaxI(None),
            DataType::Float => Acc::MaxF(None),
            DataType::Date => Acc::MaxD(None),
            DataType::Char(_) => Acc::MaxS(None),
        },
        AggFunc::SumProd(a, b) => {
            if is_int(*a) && is_int(*b) {
                Acc::SumProdI(0)
            } else {
                Acc::SumProdF(0.0)
            }
        }
        AggFunc::SumDiff(a, b) => {
            if is_int(*a) && is_int(*b) {
                Acc::SumDiffI(0)
            } else {
                Acc::SumDiffF(0.0)
            }
        }
    }
}

/// Fold one row into `acc`.
#[inline]
pub fn update_acc(acc: &mut Acc, func: &AggFunc, row: &RowRef<'_>) {
    match (acc, func) {
        (Acc::Count(n), AggFunc::Count) => *n += 1,
        (Acc::SumI(s), AggFunc::Sum(c)) => *s += row.i64_col(*c),
        (Acc::SumF(s), AggFunc::Sum(c)) => *s += row.numeric(*c),
        (Acc::Avg { sum, n }, AggFunc::Avg(c)) => {
            *sum += row.numeric(*c);
            *n += 1;
        }
        (Acc::MinI(m), AggFunc::Min(c)) => {
            let v = row.i64_col(*c);
            *m = Some(m.map_or(v, |x| x.min(v)));
        }
        (Acc::MaxI(m), AggFunc::Max(c)) => {
            let v = row.i64_col(*c);
            *m = Some(m.map_or(v, |x| x.max(v)));
        }
        (Acc::MinF(m), AggFunc::Min(c)) => {
            let v = row.f64_col(*c);
            *m = Some(m.map_or(v, |x| x.min(v)));
        }
        (Acc::MaxF(m), AggFunc::Max(c)) => {
            let v = row.f64_col(*c);
            *m = Some(m.map_or(v, |x| x.max(v)));
        }
        (Acc::MinD(m), AggFunc::Min(c)) => {
            let v = row.date_col(*c);
            *m = Some(m.map_or(v, |x| x.min(v)));
        }
        (Acc::MaxD(m), AggFunc::Max(c)) => {
            let v = row.date_col(*c);
            *m = Some(m.map_or(v, |x| x.max(v)));
        }
        (Acc::MinS(m), AggFunc::Min(c)) => {
            let v = row.str_col(*c);
            match m {
                Some(x) if x.as_str() <= v => {}
                _ => *m = Some(v.to_string()),
            }
        }
        (Acc::MaxS(m), AggFunc::Max(c)) => {
            let v = row.str_col(*c);
            match m {
                Some(x) if x.as_str() >= v => {}
                _ => *m = Some(v.to_string()),
            }
        }
        (Acc::SumProdI(s), AggFunc::SumProd(a, b)) => *s += row.i64_col(*a) * row.i64_col(*b),
        (Acc::SumProdF(s), AggFunc::SumProd(a, b)) => *s += row.numeric(*a) * row.numeric(*b),
        (Acc::SumDiffI(s), AggFunc::SumDiff(a, b)) => *s += row.i64_col(*a) - row.i64_col(*b),
        (Acc::SumDiffF(s), AggFunc::SumDiff(a, b)) => *s += row.numeric(*a) - row.numeric(*b),
        (acc, func) => unreachable!("accumulator/function mismatch: {acc:?} vs {func:?}"),
    }
}

/// Final aggregate value.
pub fn finalize_acc(acc: &Acc) -> Value {
    match acc {
        Acc::Count(n) => Value::Int(*n),
        Acc::SumI(s) => Value::Int(*s),
        Acc::SumF(s) => Value::Float(*s),
        Acc::Avg { sum, n } => Value::Float(if *n == 0 { 0.0 } else { sum / *n as f64 }),
        Acc::MinI(m) | Acc::MaxI(m) => Value::Int(m.unwrap_or(0)),
        Acc::MinF(m) | Acc::MaxF(m) => Value::Float(m.unwrap_or(0.0)),
        Acc::MinD(m) | Acc::MaxD(m) => Value::Date(m.unwrap_or(0)),
        Acc::MinS(m) | Acc::MaxS(m) => Value::Str(m.clone().unwrap_or_default()),
        Acc::SumProdI(s) | Acc::SumDiffI(s) => Value::Int(*s),
        Acc::SumProdF(s) | Acc::SumDiffF(s) => Value::Float(*s),
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use qs_storage::Page;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("d", DataType::Date),
            ("s", DataType::Char(4)),
        ])
    }

    fn page() -> Page {
        Page::from_values(
            &schema(),
            &[
                vec![
                    Value::Int(3),
                    Value::Float(1.5),
                    Value::Date(19970105),
                    Value::Str("bb".into()),
                ],
                vec![
                    Value::Int(-2),
                    Value::Float(4.5),
                    Value::Date(19961231),
                    Value::Str("aa".into()),
                ],
                vec![
                    Value::Int(7),
                    Value::Float(0.25),
                    Value::Date(19980820),
                    Value::Str("cc".into()),
                ],
            ],
        )
        .unwrap()
    }

    fn fold(func: AggFunc) -> Value {
        let s = schema();
        let p = page();
        let mut acc = make_acc(&func, &s);
        for row in p.iter() {
            update_acc(&mut acc, &func, &row);
        }
        finalize_acc(&acc)
    }

    #[test]
    fn count_and_sums() {
        assert_eq!(fold(AggFunc::Count), Value::Int(3));
        assert_eq!(fold(AggFunc::Sum(0)), Value::Int(8));
        assert_eq!(fold(AggFunc::Sum(1)), Value::Float(6.25));
    }

    #[test]
    fn min_max_all_types() {
        assert_eq!(fold(AggFunc::Min(0)), Value::Int(-2));
        assert_eq!(fold(AggFunc::Max(0)), Value::Int(7));
        assert_eq!(fold(AggFunc::Min(1)), Value::Float(0.25));
        assert_eq!(fold(AggFunc::Max(1)), Value::Float(4.5));
        assert_eq!(fold(AggFunc::Min(2)), Value::Date(19961231));
        assert_eq!(fold(AggFunc::Max(2)), Value::Date(19980820));
        assert_eq!(fold(AggFunc::Min(3)), Value::Str("aa".into()));
        assert_eq!(fold(AggFunc::Max(3)), Value::Str("cc".into()));
    }

    #[test]
    fn avg_and_two_column_forms() {
        assert_eq!(fold(AggFunc::Avg(0)), Value::Float(8.0 / 3.0));
        // SumProd over (Int, Float) promotes to Float.
        assert_eq!(
            fold(AggFunc::SumProd(0, 1)),
            Value::Float(3.0 * 1.5 + (-2.0) * 4.5 + 7.0 * 0.25)
        );
        // Int-Int stays exact.
        assert_eq!(fold(AggFunc::SumProd(0, 0)), Value::Int(9 + 4 + 49));
        assert_eq!(fold(AggFunc::SumDiff(0, 0)), Value::Int(0));
    }

    #[test]
    fn empty_accumulators_finalize_to_neutral_values() {
        let s = schema();
        for (func, want) in [
            (AggFunc::Count, Value::Int(0)),
            (AggFunc::Sum(0), Value::Int(0)),
            (AggFunc::Sum(1), Value::Float(0.0)),
            (AggFunc::Avg(0), Value::Float(0.0)),
            (AggFunc::Min(0), Value::Int(0)),
            (AggFunc::Max(3), Value::Str(String::new())),
            (AggFunc::Min(2), Value::Date(0)),
        ] {
            let acc = make_acc(&func, &s);
            assert_eq!(finalize_acc(&acc), want, "{func:?}");
        }
    }

    #[test]
    fn accumulator_shape_matches_input_types() {
        let s = schema();
        assert!(matches!(make_acc(&AggFunc::Sum(0), &s), Acc::SumI(_)));
        assert!(matches!(make_acc(&AggFunc::Sum(1), &s), Acc::SumF(_)));
        assert!(matches!(make_acc(&AggFunc::Min(2), &s), Acc::MinD(_)));
        assert!(matches!(make_acc(&AggFunc::Max(3), &s), Acc::MaxS(_)));
        assert!(matches!(
            make_acc(&AggFunc::SumProd(0, 1), &s),
            Acc::SumProdF(_)
        ));
        assert!(matches!(
            make_acc(&AggFunc::SumDiff(0, 0), &s),
            Acc::SumDiffI(_)
        ));
    }
}
