//! Morsel-driven worker pool — the fixed set of threads the engine fans
//! intra-operator work across (SIGMOD-2014-contest style fine-grained
//! task parallelism; see the morsel-driven analysis cited in PAPERS.md).
//!
//! One [`WorkerPool`] is built per engine from the `--workers` knob and
//! shared through [`crate::ops::ExecCtx`] by every consumer: parallel
//! group-slot resolution ([`crate::group::GroupTable`]), the parallel
//! shared scan ([`crate::ops`]), and the CJOIN preprocessor's per-chunk
//! admission evaluation (`qs-cjoin`). The design goals, in order:
//!
//! 1. **Scoped**: [`WorkerPool::run`] accepts closures borrowing the
//!    caller's stack and does not return until every task has finished
//!    executing, so callers hand out disjoint `&mut` output slots with
//!    no `Arc`/channel ceremony per batch.
//! 2. **Deadlock-free under nesting**: the submitting thread always
//!    executes tasks itself while it waits, so a `run` completes even
//!    when every pool thread is busy serving another operator (or when
//!    the pool has no threads at all — `workers = 1` runs everything
//!    inline on the caller).
//! 3. **Contained**: a panicking task is caught with the same
//!    `catch_unwind` discipline as the stage workers; `run` reports it
//!    as an [`EngineError::Aborted`] for the *calling* query only, after
//!    all sibling tasks have still run to completion (their borrows must
//!    not outlive a poisoned early return).
//! 4. **Observable**: `pool_tasks` counts every executed morsel,
//!    `pool_steals` the ones an executor took from another executor's
//!    queue, and the `pool.task` failpoint (delay + abort variants)
//!    injects scheduling stalls and task aborts under the chaos harness.
//!
//! Worker threads are persistent for the life of the pool, so
//! caller-side per-worker scratch (`thread_local!` buffers, or arrays
//! indexed by morsel id) is genuinely reused across batches instead of
//! reallocated per `run`.

use crate::error::EngineError;
use crate::fifo::channel_fault;
use crate::metrics::Metrics;
use crate::stage::panic_message;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// One scoped morsel: a closure borrowing from the submitting stack.
pub type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// Erased task stored while a run is in flight. Safety: consumed before
/// the owning [`WorkerPool::run`] returns (see the transmute there).
type ErasedTask = Box<dyn FnOnce() + Send + 'static>;

struct RunDone {
    completed: usize,
    failed: Option<String>,
}

/// Shared state of one `run` call: per-executor task queues plus the
/// completion latch the submitting thread blocks on.
struct RunState {
    queues: Vec<Mutex<VecDeque<ErasedTask>>>,
    total: usize,
    done: Mutex<RunDone>,
    all_done: Condvar,
    metrics: Arc<Metrics>,
}

impl RunState {
    /// Drain the home queue, then steal from siblings until no task is
    /// left anywhere. Every executor (pool thread or submitter) runs
    /// this; `home` picks the queue it owns.
    fn work(&self, home: usize) {
        let nq = self.queues.len();
        loop {
            let mut ran = false;
            for k in 0..nq {
                let qi = (home + k) % nq;
                let task = self.queues[qi].lock().pop_front();
                if let Some(task) = task {
                    if k != 0 {
                        self.metrics.pool_steals.fetch_add(1, Ordering::Relaxed);
                    }
                    self.exec(task);
                    ran = true;
                    break;
                }
            }
            if !ran {
                return;
            }
        }
    }

    /// Execute one task under the failpoint and the panic belt, then
    /// count it toward the completion latch. A failure never stops the
    /// run: sibling tasks still execute (their borrows stay valid), and
    /// the first failure message becomes the run's error.
    fn exec(&self, task: ErasedTask) {
        self.metrics.pool_tasks.fetch_add(1, Ordering::Relaxed);
        let res = match channel_fault("pool.task.delay", "pool.task.abort") {
            Ok(()) => catch_unwind(AssertUnwindSafe(task)).map_err(|payload| {
                self.metrics.panics_contained.fetch_add(1, Ordering::Relaxed);
                format!("panic in pool task: {}", panic_message(&*payload))
            }),
            // Injected abort: the task is dropped unexecuted and the run
            // fails, exactly like a panic — the caller must discard the
            // batch's outputs either way.
            Err(e) => Err(e.to_string()),
        };
        let mut done = self.done.lock();
        done.completed += 1;
        if let Err(msg) = res {
            done.failed.get_or_insert(msg);
        }
        if done.completed == self.total {
            self.all_done.notify_all();
        }
    }
}

/// Pending (run, home-queue) assignments plus the shutdown flag.
type JobQueue = (VecDeque<(Arc<RunState>, usize)>, bool);

struct PoolShared {
    jobs: Mutex<JobQueue>,
    jobs_available: Condvar,
}

/// Fixed-size morsel worker pool. `new(n)` gives `n`-way parallelism:
/// `n - 1` persistent threads plus the submitting thread, which always
/// works too.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
    workers: usize,
    metrics: Arc<Metrics>,
}

impl WorkerPool {
    /// Pool with `n`-way parallelism (`n` is clamped to at least 1; at
    /// `n = 1` no threads are spawned and every run executes inline).
    pub fn new(n: usize, metrics: Arc<Metrics>) -> Arc<WorkerPool> {
        let workers = n.max(1);
        let shared = Arc::new(PoolShared {
            jobs: Mutex::new((VecDeque::new(), false)),
            jobs_available: Condvar::new(),
        });
        let threads = (0..workers - 1)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("qs-pool-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(WorkerPool {
            shared,
            threads,
            workers,
            metrics,
        })
    }

    /// Configured parallelism (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `tasks` to completion across the pool plus the calling
    /// thread. Returns only after **every** task has finished executing
    /// (so scoped borrows are released), with `Err` if any task panicked
    /// or hit the `pool.task.abort` failpoint — in which case the caller
    /// must treat all task outputs as garbage and abort its query.
    pub fn run(&self, tasks: Vec<Task<'_>>) -> Result<(), EngineError> {
        let total = tasks.len();
        if total == 0 {
            return Ok(());
        }
        // SAFETY: the 'scope → 'static transmute is sound because this
        // function blocks on the completion latch until `completed ==
        // total`, and a task is counted completed only after it returned
        // (or its unwind was caught). No borrow escapes the call.
        let tasks: Vec<ErasedTask> = unsafe {
            std::mem::transmute::<Vec<Task<'_>>, Vec<ErasedTask>>(tasks)
        };
        let n_exec = if total == 1 { 1 } else { self.workers.min(total) };
        let state = Arc::new(RunState {
            queues: (0..n_exec).map(|_| Mutex::new(VecDeque::new())).collect(),
            total,
            done: Mutex::new(RunDone {
                completed: 0,
                failed: None,
            }),
            all_done: Condvar::new(),
            metrics: self.metrics.clone(),
        });
        for (i, task) in tasks.into_iter().enumerate() {
            state.queues[i % n_exec].lock().push_back(task);
        }
        if n_exec > 1 {
            let mut jobs = self.shared.jobs.lock();
            for home in 1..n_exec {
                jobs.0.push_back((state.clone(), home));
            }
            drop(jobs);
            self.shared.jobs_available.notify_all();
        }
        // The submitter owns queue 0 and keeps stealing until nothing is
        // left, then parks on the latch for tasks still in flight.
        state.work(0);
        let mut done = state.done.lock();
        while done.completed < state.total {
            state.all_done.wait(&mut done);
        }
        match done.failed.take() {
            None => Ok(()),
            Some(msg) => Err(EngineError::Aborted(msg)),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut jobs = self.shared.jobs.lock();
            jobs.1 = true;
        }
        self.shared.jobs_available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut jobs = shared.jobs.lock();
            loop {
                if let Some(job) = jobs.0.pop_front() {
                    break Some(job);
                }
                if jobs.1 {
                    break None;
                }
                shared.jobs_available.wait(&mut jobs);
            }
        };
        match job {
            Some((state, home)) => state.work(home),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks_over<'a>(
        slots: &'a mut [u64],
        f: &'a (impl Fn(usize) -> u64 + Send + Sync),
    ) -> Vec<Task<'a>> {
        slots
            .iter_mut()
            .enumerate()
            .map(|(i, s)| {
                let t: Task<'a> = Box::new(move || *s = f(i));
                t
            })
            .collect()
    }

    #[test]
    fn scoped_tasks_write_borrowed_slots() {
        for workers in [1, 2, 4] {
            let m = Metrics::new();
            let pool = WorkerPool::new(workers, m.clone());
            let mut out = vec![0u64; 37];
            let tasks = tasks_over(&mut out, &|i| (i as u64) * 3 + 1);
            pool.run(tasks).unwrap();
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, (i as u64) * 3 + 1, "workers={workers} slot {i}");
            }
            assert_eq!(m.snapshot().pool_tasks, 37, "workers={workers}");
        }
    }

    #[test]
    fn panic_fails_run_but_siblings_complete() {
        let m = Metrics::new();
        let pool = WorkerPool::new(4, m.clone());
        let mut out = [0u64; 8];
        let mut tasks: Vec<Task<'_>> = Vec::new();
        for (i, s) in out.iter_mut().enumerate() {
            if i == 3 {
                tasks.push(Box::new(|| panic!("morsel blew up")));
            } else {
                tasks.push(Box::new(move || *s = 1));
            }
        }
        let err = pool.run(tasks).unwrap_err();
        match err {
            EngineError::Aborted(msg) => assert!(msg.contains("morsel blew up")),
            other => panic!("expected abort, got {other:?}"),
        }
        // Every non-panicking sibling still executed before run returned.
        let done: u64 = out.iter().sum();
        assert_eq!(done, 7);
        assert_eq!(m.snapshot().panics_contained, 1);
        assert_eq!(m.snapshot().pool_tasks, 8);
    }

    #[test]
    fn single_worker_runs_inline() {
        let m = Metrics::new();
        let pool = WorkerPool::new(1, m.clone());
        assert_eq!(pool.workers(), 1);
        let caller = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        let tasks: Vec<Task<'_>> = (0..4)
            .map(|i| {
                let seen = &seen;
                let t: Task<'_> = Box::new(move || {
                    seen.lock().push((i, std::thread::current().id()));
                });
                t
            })
            .collect();
        pool.run(tasks).unwrap();
        let seen = seen.into_inner();
        assert_eq!(seen.len(), 4);
        for (i, (idx, tid)) in seen.iter().enumerate() {
            assert_eq!(*idx, i, "inline path preserves submission order");
            assert_eq!(*tid, caller);
        }
        assert_eq!(m.snapshot().pool_steals, 0);
    }

    #[test]
    fn concurrent_runs_from_many_threads_do_not_deadlock() {
        let m = Metrics::new();
        let pool = WorkerPool::new(2, m.clone());
        std::thread::scope(|s| {
            for _ in 0..6 {
                let pool = &pool;
                s.spawn(move || {
                    for _ in 0..50 {
                        let mut out = vec![0u64; 5];
                        let tasks = tasks_over(&mut out, &|i| i as u64 + 1);
                        pool.run(tasks).unwrap();
                        assert_eq!(out, vec![1, 2, 3, 4, 5]);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().pool_tasks, 6 * 50 * 5);
    }

    #[test]
    fn empty_run_is_a_noop() {
        let pool = WorkerPool::new(3, Metrics::new());
        pool.run(Vec::new()).unwrap();
    }

    #[test]
    fn injected_task_abort_fails_the_run() {
        let _g = qs_storage::fault::test_guard();
        qs_storage::fault::arm(
            7,
            &[("pool.task.abort", qs_storage::fault::FaultSpec::prob(1.0))],
        );
        let m = Metrics::new();
        let pool = WorkerPool::new(2, m.clone());
        let mut out = vec![0u64; 4];
        let tasks = tasks_over(&mut out, &|_| 1);
        let err = pool.run(tasks).unwrap_err();
        match err {
            EngineError::Aborted(msg) => {
                assert!(msg.contains("pool.task.abort"), "{msg}")
            }
            other => panic!("expected abort, got {other:?}"),
        }
        qs_storage::fault::disarm();
        // Disarmed again: the pool works normally.
        let tasks = tasks_over(&mut out, &|_| 2);
        pool.run(tasks).unwrap();
        assert_eq!(out, vec![2, 2, 2, 2]);
    }
}
