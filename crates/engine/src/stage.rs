//! Stages: QPipe's self-contained operator modules.
//!
//! Each relational operator is encapsulated in a stage with a work queue
//! and a local thread pool (grown on demand so that inter-dependent
//! packets can never deadlock waiting for a worker). A query plan is
//! converted into interdependent *packets* dispatched to the stages; data
//! flows between packets through the [`crate::hub::OutputHub`]s.
//!
//! Every stage also carries the **SP registry**: a map from sub-plan
//! signature to the in-flight packet's output hub. When a new packet
//! arrives whose signature matches an in-flight one whose sharing window
//! is still open, the new packet is never executed — it subscribes to the
//! existing output instead (Simultaneous Pipelining).

use crate::ctl::QueryCtl;
use crate::fifo::BatchSource;
use crate::hub::OutputHub;
use crate::metrics::StageKind;
use crate::ops::{execute, ExecCtx, PhysicalOp};
use crate::EngineError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// A unit of work queued at a stage.
pub struct Packet {
    /// Owning query.
    pub query_id: u64,
    /// Operator to run.
    pub op: PhysicalOp,
    /// Input streams (join: `[build, probe]`).
    pub inputs: Vec<Box<dyn BatchSource>>,
    /// Output fan-out point.
    pub hub: Arc<OutputHub>,
    /// Owning query's control block (cancellation/deadline), if any.
    pub ctl: Option<Arc<QueryCtl>>,
    /// Whether this packet belongs to exactly one query. Only exclusive
    /// packets honor `ctl` inside the operator loop — a packet registered
    /// for SP may serve co-runners, and one subscriber's deadline must
    /// not starve the rest.
    pub exclusive: bool,
}

impl Packet {
    /// A packet with no control block, owned by a single query (the
    /// common construction in tests and non-submit paths).
    pub fn new(
        query_id: u64,
        op: PhysicalOp,
        inputs: Vec<Box<dyn BatchSource>>,
        hub: Arc<OutputHub>,
    ) -> Packet {
        Packet {
            query_id,
            op,
            inputs,
            hub,
            ctl: None,
            exclusive: true,
        }
    }
}

/// Per-stage map: sub-plan signature → in-flight packet's hub.
#[derive(Default)]
pub struct SpRegistry {
    inner: Mutex<HashMap<u64, Weak<OutputHub>>>,
}

impl SpRegistry {
    /// Try to ride an in-flight packet with the same signature. `None`
    /// when no such packet exists or its sharing window has closed.
    /// `cap` is the new consumer's FIFO capacity (push mode): bounded for
    /// operator inputs, [`crate::hub::UNBOUNDED_CAPACITY`] for root
    /// tickets — see [`OutputHub::subscribe_with_capacity`].
    pub fn try_subscribe(&self, sig: u64, cap: usize) -> Option<Box<dyn BatchSource>> {
        // Failpoints on the registry lock: `sp.registry.delay` models
        // contention on the shared map; `sp.registry.abort` a failed
        // lookup. Either way the registry degrades to an SP miss — the
        // query builds its own packet, which is always correct — and
        // never to a torn subscription.
        if qs_storage::fault::armed() {
            qs_storage::fault::maybe_delay("sp.registry.delay");
            if qs_storage::fault::should_fire("sp.registry.abort") {
                return None;
            }
        }
        let mut map = self.inner.lock();
        if let Some(weak) = map.get(&sig) {
            if let Some(hub) = weak.upgrade() {
                if let Some(reader) = hub.subscribe_with_capacity(cap) {
                    return Some(reader);
                }
            }
            map.remove(&sig);
        }
        None
    }

    /// Publish a new in-flight packet's hub under its signature.
    pub fn register(&self, sig: u64, hub: &Arc<OutputHub>) {
        // `sp.registry.abort` here skips publication: the packet still
        // runs (its own query drains it) but later identical sub-plans
        // miss instead of sharing — degraded sharing, never lost rows.
        if qs_storage::fault::armed() {
            qs_storage::fault::maybe_delay("sp.registry.delay");
            if qs_storage::fault::should_fire("sp.registry.abort") {
                return;
            }
        }
        let mut map = self.inner.lock();
        map.insert(sig, Arc::downgrade(hub));
        // Opportunistic pruning keeps the map from accumulating dead
        // entries across a long workload.
        if map.len() > 1024 {
            map.retain(|_, w| w.strong_count() > 0);
        }
    }

    /// Number of live registered entries (test/debug).
    pub fn live_entries(&self) -> usize {
        self.inner
            .lock()
            .values()
            .filter(|w| w.strong_count() > 0)
            .count()
    }
}

struct StageInner {
    kind: StageKind,
    rx: Receiver<Packet>,
    /// Number of workers guaranteed to be free (waiting in `recv` with no
    /// packet already earmarked for them). Dispatch consumes one credit
    /// per packet and spawns a worker when none is left, so the pool can
    /// never have more outstanding packets than workers — which would
    /// deadlock when queued packets feed each other through buffers.
    credits: AtomicIsize,
    workers: AtomicUsize,
    max_workers: usize,
    ctx: Arc<ExecCtx>,
}

/// One operator stage: queue + elastic thread pool + SP registry.
pub struct Stage {
    tx: Sender<Packet>,
    registry: Arc<SpRegistry>,
    inner: Arc<StageInner>,
}

impl Stage {
    /// Create the stage and start `initial_workers` threads.
    pub fn new(
        kind: StageKind,
        ctx: Arc<ExecCtx>,
        initial_workers: usize,
        max_workers: usize,
    ) -> Self {
        let (tx, rx) = unbounded();
        let inner = Arc::new(StageInner {
            kind,
            rx,
            credits: AtomicIsize::new(0),
            workers: AtomicUsize::new(0),
            max_workers: max_workers.max(1),
            ctx,
        });
        let stage = Stage {
            tx,
            registry: Arc::new(SpRegistry::default()),
            inner,
        };
        for _ in 0..initial_workers.max(1) {
            Self::spawn_worker(&stage.inner, true);
        }
        stage
    }

    /// This stage's SP registry.
    pub fn registry(&self) -> &SpRegistry {
        &self.registry
    }

    /// Stage kind.
    pub fn kind(&self) -> StageKind {
        self.inner.kind
    }

    /// Current worker-thread count (test/debug).
    pub fn worker_count(&self) -> usize {
        self.inner.workers.load(Ordering::Relaxed)
    }

    /// Queue a packet, growing the pool if no worker is guaranteed free.
    /// Packets at one stage may depend (through their input streams) on
    /// packets at other stages or even queued behind them here, so a
    /// fixed-size pool could deadlock; QPipe's stages grow their local
    /// pools the same way.
    pub fn dispatch(&self, packet: Packet) {
        self.inner.ctx.metrics.packet(self.inner.kind);
        // Claim a free-worker credit; if none remained, spawn a worker
        // dedicated (in the counting sense) to this packet.
        let prev = self.inner.credits.fetch_sub(1, Ordering::AcqRel);
        if prev <= 0 && self.inner.workers.load(Ordering::Acquire) < self.inner.max_workers {
            Self::spawn_worker(&self.inner, false);
        }
        // Send fails only if every worker exited, which only happens when
        // the engine is being dropped; dropping the packet then aborts its
        // consumers via the hub drop chain.
        let _ = self.tx.send(packet);
    }

    fn spawn_worker(inner: &Arc<StageInner>, initial_credit: bool) {
        let inner = inner.clone();
        inner.workers.fetch_add(1, Ordering::Release);
        if initial_credit {
            inner.credits.fetch_add(1, Ordering::AcqRel);
        }
        let name = format!("qpipe-{}", inner.kind.name());
        std::thread::Builder::new()
            .name(name)
            .spawn(move || loop {
                let pkt = inner.rx.recv();
                match pkt {
                    Ok(mut pkt) => {
                        // Panic containment: a packet that unwinds (the PR 6
                        // fuzzer's num_col panic, an injected alloc failure)
                        // must cost exactly one query, not this worker and
                        // every packet queued behind it. The catch converts
                        // the panic into an abort on the packet's own hub;
                        // the drop chain below cancels its upstream, and the
                        // worker (and its credit) survive for co-runners.
                        let ctl = pkt.ctl.clone().filter(|_| pkt.exclusive);
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            execute(&pkt.op, &mut pkt.inputs, &pkt.hub, &inner.ctx, ctl.as_deref())
                        }));
                        match result {
                            Ok(Ok(())) => pkt.hub.finish(),
                            Ok(Err(EngineError::Cancelled)) => {
                                // Every consumer is gone; nothing to tell.
                                pkt.hub.abort("cancelled");
                            }
                            Ok(Err(e)) => pkt.hub.abort(e.to_string()),
                            Err(payload) => {
                                inner
                                    .ctx
                                    .metrics
                                    .panics_contained
                                    .fetch_add(1, Ordering::Relaxed);
                                pkt.hub.abort(format!(
                                    "panic in {} stage: {}",
                                    inner.kind.name(),
                                    panic_message(&payload)
                                ));
                            }
                        }
                        // Dropping the packet drops its input readers,
                        // cascading cancellation upstream if this packet
                        // failed mid-stream.
                        drop(pkt);
                        // This worker is free again: return its credit so
                        // the next dispatch reuses it instead of spawning.
                        inner.credits.fetch_add(1, Ordering::AcqRel);
                    }
                    Err(_) => {
                        inner.workers.fetch_sub(1, Ordering::Release);
                        break; // engine dropped
                    }
                }
            })
            .expect("spawn stage worker");
    }
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::CoreGovernor;
    use crate::hub::ShareMode;
    use crate::metrics::Metrics;
    use qs_storage::{
        BufferPool, BufferPoolConfig, DiskConfig, DiskModel, Schema, TableBuilder, Value,
    };
    use qs_storage::{Catalog, DataType};

    fn ctx() -> (Arc<ExecCtx>, Arc<Catalog>) {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let mut b = TableBuilder::with_page_bytes("t", schema, 64);
        for i in 0..100 {
            b.push_values(&[Value::Int(i)]).unwrap();
        }
        catalog.register(b);
        let metrics = Metrics::new();
        let pool = Arc::new(BufferPool::new(
            BufferPoolConfig::unbounded(),
            Arc::new(DiskModel::new(DiskConfig::memory_resident())),
        ));
        (
            Arc::new(ExecCtx {
                pool,
                governor: CoreGovernor::new(0, metrics.clone()),
                workers: crate::pool::WorkerPool::new(1, metrics.clone()),
                metrics,
                out_page_bytes: 64,
            }),
            catalog,
        )
    }

    fn scan_packet(ctx: &Arc<ExecCtx>, catalog: &Catalog) -> (Packet, Box<dyn BatchSource>) {
        let table = catalog.get("t").unwrap();
        let out_schema = table.schema().clone();
        let (hub, reader) = OutputHub::new(
            ShareMode::Push,
            StageKind::Scan,
            8,
            ctx.metrics.clone(),
            ctx.governor.clone(),
        );
        (
            Packet::new(
                1,
                PhysicalOp::Scan {
                    table,
                    predicate: None,
                    projection: None,
                    out_schema,
                },
                vec![],
                hub,
            ),
            reader,
        )
    }

    #[test]
    fn stage_executes_packets() {
        let (ctx, catalog) = ctx();
        let stage = Stage::new(StageKind::Scan, ctx.clone(), 1, 8);
        let (pkt, mut reader) = scan_packet(&ctx, &catalog);
        stage.dispatch(pkt);
        let mut rows = 0;
        while let Some(b) = reader.next_batch().unwrap() {
            rows += b.len();
        }
        assert_eq!(rows, 100);
    }

    #[test]
    fn pool_grows_under_concurrent_packets() {
        let (ctx, catalog) = ctx();
        let stage = Stage::new(StageKind::Scan, ctx.clone(), 1, 64);
        let mut readers = Vec::new();
        for _ in 0..6 {
            let (pkt, reader) = scan_packet(&ctx, &catalog);
            stage.dispatch(pkt);
            readers.push(reader);
        }
        // All six scans complete even though we started with one worker
        // (the FIFO capacity of 8 pages < 25 pages forces real pipelining).
        for mut r in readers {
            let mut rows = 0;
            while let Some(b) = r.next_batch().unwrap() {
                rows += b.len();
            }
            assert_eq!(rows, 100);
        }
        assert!(stage.worker_count() >= 2);
    }

    #[test]
    fn worker_contains_panics_and_keeps_serving() {
        let _guard = qs_storage::fault::test_guard();
        let (ctx, catalog) = ctx();
        let stage = Stage::new(StageKind::Aggregate, ctx.clone(), 1, 4);

        // Poisoned packet: an aggregate whose output name is the chaos
        // sentinel panics inside the operator while faults are armed.
        qs_storage::fault::arm(1, &[]);
        let table = catalog.get("t").unwrap();
        let out_schema = Schema::from_pairs(&[("n", DataType::Int)]);
        let (hub, mut poisoned_reader) = OutputHub::new(
            ShareMode::Push,
            StageKind::Aggregate,
            8,
            ctx.metrics.clone(),
            ctx.governor.clone(),
        );
        let (scan_hub, scan_reader) = OutputHub::new(
            ShareMode::Push,
            StageKind::Scan,
            crate::hub::UNBOUNDED_CAPACITY,
            ctx.metrics.clone(),
            ctx.governor.clone(),
        );
        // Feed the aggregate from an already-finished scan stream.
        scan_hub
            .push(Arc::new(qs_storage::FactBatch::all(
                ctx.pool.get(&table, 0).unwrap(),
            )))
            .unwrap();
        scan_hub.finish();
        stage.dispatch(Packet::new(
            7,
            PhysicalOp::Aggregate {
                group_by: vec![],
                aggs: vec![qs_plan::AggSpec::new(
                    qs_plan::AggFunc::Count,
                    qs_storage::fault::POISON_AGG_NAME,
                )],
                in_schema: table.schema().clone(),
                out_schema: out_schema.clone(),
                groups_hint: None,
            },
            vec![scan_reader],
            hub,
        ));
        let err = loop {
            match poisoned_reader.next_batch() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("poisoned packet finished cleanly"),
                Err(e) => break e,
            }
        };
        qs_storage::fault::disarm();
        match err {
            EngineError::Aborted(msg) => assert!(msg.contains("panic"), "{msg}"),
            other => panic!("expected Aborted, got {other:?}"),
        }
        assert_eq!(ctx.metrics.snapshot().panics_contained, 1);

        // The same stage (and its possibly-sole worker) still executes
        // healthy packets afterwards.
        let (pkt, mut reader) = scan_packet(&ctx, &catalog);
        let scan_stage = Stage::new(StageKind::Scan, ctx.clone(), 1, 4);
        scan_stage.dispatch(pkt);
        let mut rows = 0;
        while let Some(b) = reader.next_batch().unwrap() {
            rows += b.len();
        }
        assert_eq!(rows, 100);
    }

    #[test]
    fn registry_subscribe_and_expiry() {
        let (ctx, _) = ctx();
        let reg = SpRegistry::default();
        let (hub, _primary) = OutputHub::new(
            ShareMode::Pull,
            StageKind::Scan,
            8,
            ctx.metrics.clone(),
            ctx.governor.clone(),
        );
        reg.register(42, &hub);
        assert!(reg.try_subscribe(42, 8).is_some());
        assert!(reg.try_subscribe(7, 8).is_none());
        assert_eq!(reg.live_entries(), 1);
        drop(hub);
        assert!(reg.try_subscribe(42, 8).is_none(), "dead hub pruned");
        assert_eq!(reg.live_entries(), 0);
    }

    #[test]
    fn push_registry_window_closes_after_start() {
        let (ctx, _) = ctx();
        let reg = SpRegistry::default();
        let (hub, _primary) = OutputHub::new(
            ShareMode::Push,
            StageKind::Scan,
            8,
            ctx.metrics.clone(),
            ctx.governor.clone(),
        );
        reg.register(42, &hub);
        let s = Schema::from_pairs(&[("k", DataType::Int)]);
        hub.push_page(Arc::new(
            qs_storage::Page::from_values(&s, &[vec![Value::Int(1)]]).unwrap(),
        ))
        .unwrap();
        assert!(reg.try_subscribe(42, 8).is_none(), "push window closed");
    }
}
