//! Physical operators: the bodies of stage packets.
//!
//! Each operator is a blocking pull(inputs)/push(hub) loop over
//! [`EngineBatch`]es — shared pages annotated with the selection of
//! surviving rows. Selections flow; row bytes do not: `Scan` and `Filter`
//! emit `(page, selection)` without building intermediate pages, and
//! downstream operators read the tuples they need through gathered views
//! ([`FactBatch::columns`], [`FactBatch::gather_i64_into`],
//! [`FactBatch::tuple_bytes`]). Fresh pages are built only where rows are
//! genuinely new or long-lived: aggregate/join/sort/projection *output*,
//! the join build side, and the client-facing final output.
//!
//! CPU-bound per-batch work runs under a core permit from the
//! [`CoreGovernor`]; waits on inputs, outputs and simulated disk do not
//! hold a permit.

use crate::ctl::QueryCtl;
use crate::error::EngineError;
use crate::fifo::{BatchSource, EngineBatch};
use crate::governor::CoreGovernor;
use crate::group::{GroupTable, ParallelScratch};
use crate::hub::OutputHub;
use crate::kernels::{kernel_columns, update_grouped, AccVec, AggKernel};
use crate::metrics::Metrics;
use crate::pool::{Task, WorkerPool};
use qs_plan::compiled::{refine_selection, selection_from_mask};
use qs_plan::{AggSpec, CompiledPred, Expr, PredScratch};
use qs_storage::{
    BufferPool, CircularCursor, ColumnBatch, DataType, FactBatch, Page, PageBuilder, Schema,
    Table,
};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Shared execution context handed to every packet.
pub struct ExecCtx {
    /// Buffer pool (scans read through it).
    pub pool: Arc<BufferPool>,
    /// CPU-parallelism governor.
    pub governor: Arc<CoreGovernor>,
    /// Metrics sink.
    pub metrics: Arc<Metrics>,
    /// Morsel worker pool shared by every operator (group resolution,
    /// parallel scans, the CJOIN preprocessor).
    pub workers: Arc<WorkerPool>,
    /// Byte budget for operator output pages.
    pub out_page_bytes: usize,
}

/// The physical operator of one packet.
pub enum PhysicalOp {
    /// Circular table scan with optional selection and projection.
    Scan {
        /// Table to scan.
        table: Arc<Table>,
        /// Selection over the table schema.
        predicate: Option<Expr>,
        /// Columns to emit; `None` = all.
        projection: Option<Vec<usize>>,
        /// Output schema (projected or full).
        out_schema: Arc<Schema>,
    },
    /// Standalone selection.
    Filter {
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// Hash equi-join: `inputs[0]` is built, `inputs[1]` probes.
    HashJoin {
        /// Key column in the build schema.
        build_key: usize,
        /// Key column in the probe schema.
        probe_key: usize,
        /// `probe ++ build` output schema.
        out_schema: Arc<Schema>,
    },
    /// Hash aggregation.
    Aggregate {
        /// Group-by columns over the input schema.
        group_by: Vec<usize>,
        /// Aggregate specs.
        aggs: Vec<AggSpec>,
        /// Input schema.
        in_schema: Arc<Schema>,
        /// Output schema (group cols then agg cols).
        out_schema: Arc<Schema>,
        /// Expected group count from table statistics (pre-sizes the
        /// group table); `None` = unknown.
        groups_hint: Option<usize>,
    },
    /// Full sort.
    Sort {
        /// `(column, ascending)` keys.
        keys: Vec<(usize, bool)>,
        /// Row schema (unchanged by sort).
        schema: Arc<Schema>,
    },
    /// Projection.
    Project {
        /// Columns to keep.
        columns: Vec<usize>,
        /// Output schema.
        out_schema: Arc<Schema>,
    },
    /// First-n rows.
    Limit {
        /// Row budget.
        n: usize,
        /// Row schema (unchanged).
        schema: Arc<Schema>,
    },
    /// Whole-row duplicate elimination (first occurrence wins).
    Distinct {
        /// Row schema (unchanged).
        schema: Arc<Schema>,
    },
    /// Heap-based top-n in key order.
    TopK {
        /// `(column, ascending)` keys.
        keys: Vec<(usize, bool)>,
        /// Rows to keep.
        n: usize,
        /// Row schema (unchanged).
        schema: Arc<Schema>,
    },
}

/// Execute one packet body: read `inputs`, write to `hub`. The caller
/// (stage worker) is responsible for `hub.finish()` / `hub.abort()`.
///
/// `ctl` is the owning query's control block, present only when the
/// packet is *exclusive* (not registered for simultaneous pipelining):
/// a shared producer must never be killed by one subscriber's deadline,
/// so shared packets observe control solely at the ticket boundary.
pub fn execute(
    op: &PhysicalOp,
    inputs: &mut [Box<dyn BatchSource>],
    hub: &OutputHub,
    ctx: &ExecCtx,
    ctl: Option<&QueryCtl>,
) -> Result<(), EngineError> {
    match op {
        PhysicalOp::Scan {
            table,
            predicate,
            projection,
            out_schema,
        } => run_scan(table, predicate.as_ref(), projection.as_deref(), out_schema, hub, ctx, ctl),
        PhysicalOp::Filter { predicate } => run_filter(predicate, &mut inputs[0], hub, ctx, ctl),
        PhysicalOp::HashJoin {
            build_key,
            probe_key,
            out_schema,
        } => {
            let (build, probe) = inputs.split_at_mut(1);
            run_hash_join(
                *build_key,
                *probe_key,
                out_schema,
                &mut build[0],
                &mut probe[0],
                hub,
                ctx,
                ctl,
            )
        }
        PhysicalOp::Aggregate {
            group_by,
            aggs,
            in_schema,
            out_schema,
            groups_hint,
        } => run_aggregate(
            group_by,
            aggs,
            in_schema,
            out_schema,
            *groups_hint,
            &mut inputs[0],
            hub,
            ctx,
            ctl,
        ),
        PhysicalOp::Sort { keys, schema } => run_sort(keys, schema, &mut inputs[0], hub, ctx, ctl),
        PhysicalOp::Project { columns, out_schema } => {
            run_project(columns, out_schema, &mut inputs[0], hub, ctx, ctl)
        }
        PhysicalOp::Limit { n, schema } => run_limit(*n, schema, &mut inputs[0], hub, ctx, ctl),
        PhysicalOp::Distinct { schema } => run_distinct(schema, &mut inputs[0], hub, ctx, ctl),
        PhysicalOp::TopK { keys, n, schema } => {
            run_topk(keys, *n, schema, &mut inputs[0], hub, ctx, ctl)
        }
    }
}

/// Batch-boundary control check for exclusive packets; a no-op for
/// shared packets (`ctl == None`).
#[inline]
fn ctl_check(ctl: Option<&QueryCtl>) -> Result<(), EngineError> {
    match ctl {
        Some(c) => c.check(),
        None => Ok(()),
    }
}

/// Precompute the `(byte offset, width)` span of each column — hoists the
/// repeated `schema.offset`/`dtype` lookups out of per-row loops.
fn column_spans(schema: &Schema, columns: &[usize]) -> Vec<(usize, usize)> {
    columns
        .iter()
        .map(|&c| (schema.offset(c), schema.dtype(c).width()))
        .collect()
}

/// Copy precomputed column spans of an encoded row into `buf`.
#[inline]
fn project_spans_into(row: &[u8], spans: &[(usize, usize)], buf: &mut Vec<u8>) {
    buf.clear();
    for &(off, w) in spans {
        buf.extend_from_slice(&row[off..off + w]);
    }
}

/// Flush the emit buffer once the buffered survivors amount to a dense
/// page's worth of tuples…
const EMIT_ROWS: usize = 256;
/// …or once this many batches are buffered (bounds how many upstream
/// pages a selective producer retains before its consumer sees them).
const EMIT_BATCHES: usize = 32;

/// Producer-side grouping of sparse batches.
///
/// A selective scan emits one tiny batch per table page; pushing each one
/// through the hub costs a consumer wakeup that dwarfs the batch's own
/// processing. The buffer accumulates batches until they amount to
/// [`EMIT_ROWS`] survivors (or [`EMIT_BATCHES`] pages) and hands the
/// group to [`OutputHub::push_many`] — one lock, one wakeup. Dense
/// batches meet the row threshold alone and flow through unbuffered.
struct EmitBuffer {
    batches: Vec<EngineBatch>,
    rows: usize,
}

impl EmitBuffer {
    fn new() -> EmitBuffer {
        EmitBuffer {
            batches: Vec::new(),
            rows: 0,
        }
    }

    fn push(&mut self, batch: FactBatch, hub: &OutputHub) -> Result<(), EngineError> {
        self.rows += batch.len();
        self.batches.push(Arc::new(batch));
        if self.rows >= EMIT_ROWS || self.batches.len() >= EMIT_BATCHES {
            self.flush(hub)?;
        }
        Ok(())
    }

    fn flush(&mut self, hub: &OutputHub) -> Result<(), EngineError> {
        self.rows = 0;
        hub.push_many(&mut self.batches)
    }
}

/// Decode the columns a kernel set needs from the batch's surviving
/// tuples: dense pages decode by stride, sparse selections gather.
fn batch_view<'a>(batch: &'a FactBatch, cols: &[usize]) -> ColumnBatch<'a> {
    if batch.is_full() {
        ColumnBatch::from_page(batch.page(), cols)
    } else {
        batch.columns(cols)
    }
}

/// Like [`batch_view`] but for compiled-predicate inputs: on columnar
/// pages, dictionary-coded `Char` columns stay as codes so the predicate
/// evaluates once per dictionary entry instead of once per tuple.
fn pred_view<'a>(batch: &'a FactBatch, cols: &[usize]) -> ColumnBatch<'a> {
    if batch.is_full() {
        ColumnBatch::for_predicate(batch.page(), cols)
    } else {
        batch.columns_for_predicate(cols)
    }
}

fn flush_if_full(
    builder: &mut PageBuilder,
    hub: &OutputHub,
) -> Result<(), EngineError> {
    if builder.is_full() {
        let page = builder.finish_and_reset();
        hub.push_page(Arc::new(page))?;
    }
    Ok(())
}

fn flush_rest(builder: &mut PageBuilder, hub: &OutputHub) -> Result<(), EngineError> {
    if !builder.is_empty() {
        let page = builder.finish_and_reset();
        hub.push_page(Arc::new(page))?;
    }
    Ok(())
}

/// Per-worker scratch for one parallel-scan morsel: predicate state plus
/// the page's surviving-row selection, reused across rounds.
struct ScanSlot {
    scratch: PredScratch,
    mask: Vec<u64>,
    sel: Vec<u32>,
}

fn run_scan(
    table: &Arc<Table>,
    predicate: Option<&Expr>,
    projection: Option<&[usize]>,
    out_schema: &Arc<Schema>,
    hub: &OutputHub,
    ctx: &ExecCtx,
    ctl: Option<&QueryCtl>,
) -> Result<(), EngineError> {
    let mut cursor = CircularCursor::new(table.clone());
    // Predicate fetched from the shared program cache (compiled at most
    // once process-wide per (predicate, schema) — concurrent identical
    // scans share it), evaluated column-wise per page into a selection
    // vector. Only a projecting scan builds fresh rows; a plain selection
    // forwards the table page with the selection attached.
    let compiled = predicate.map(|p| CompiledPred::cached(p, table.schema()));
    let spans = projection.map(|cols| column_spans(table.schema(), cols));
    let mut builder = spans
        .as_ref()
        .map(|_| PageBuilder::with_bytes(out_schema.clone(), ctx.out_page_bytes));
    let mut rowbuf: Vec<u8> = Vec::with_capacity(out_schema.row_size());
    let mut encrow: Vec<u8> = Vec::with_capacity(table.schema().row_size());
    let mut scratch = PredScratch::new();
    let mut mask: Vec<u64> = Vec::new();
    let mut sel: Vec<u32> = Vec::new();
    let mut emit = EmitBuffer::new();
    // Parallel shared scan: with a predicate to evaluate and pool workers
    // available, pages are processed in rounds — up to one page per worker
    // evaluated concurrently, then pushed downstream strictly in page
    // order. Ordered rounds keep the batch stream identical to the
    // sequential scan's (downstream first-touch group slots depend on row
    // order), and the output hub / SPL keeps a single producer.
    if let (Some(c), true) = (&compiled, ctx.workers.workers() > 1) {
        let round = ctx.workers.workers();
        let mut slots: Vec<ScanSlot> = Vec::new();
        slots.resize_with(round, || ScanSlot {
            scratch: PredScratch::new(),
            mask: Vec::new(),
            sel: Vec::new(),
        });
        let mut pages: Vec<Arc<Page>> = Vec::with_capacity(round);
        loop {
            ctl_check(ctl)?;
            pages.clear();
            while pages.len() < round {
                match cursor.next_page(&ctx.pool)? {
                    Some(p) => pages.push(p),
                    None => break,
                }
            }
            if pages.is_empty() {
                break;
            }
            // Evaluate every page of the round under one governed unit:
            // pool parallelism is *within* a core permit — the `--workers`
            // knob is orthogonal to the `--cores` knob.
            ctx.governor.run(|| -> Result<(), EngineError> {
                let mut tasks: Vec<Task> = Vec::with_capacity(pages.len());
                for (slot, page) in slots.iter_mut().zip(&pages) {
                    tasks.push(Box::new(move || {
                        let view = ColumnBatch::for_predicate(page, c.columns());
                        c.eval_batch(&view, &mut slot.scratch, &mut slot.mask);
                        selection_from_mask(&slot.mask, &mut slot.sel);
                    }));
                }
                ctx.workers.run(tasks)
            })?;
            for (slot, page) in slots.iter_mut().zip(&pages) {
                ctx.metrics
                    .rows_scanned
                    .fetch_add(slot.sel.len() as u64, Ordering::Relaxed);
                if let (Some(spans), Some(b)) = (&spans, &mut builder) {
                    let mut pending: Vec<Arc<Page>> = Vec::new();
                    ctx.governor.run(|| {
                        for &r in &slot.sel {
                            let row_bytes: &[u8] = match page.column_page() {
                                Some(_) => {
                                    encrow.clear();
                                    page.encode_row_into(r as usize, &mut encrow);
                                    &encrow
                                }
                                None => page.row(r as usize).bytes(),
                            };
                            project_spans_into(row_bytes, spans, &mut rowbuf);
                            let ok = b.push_encoded(&rowbuf);
                            debug_assert!(ok);
                            if b.is_full() {
                                pending.push(Arc::new(b.finish_and_reset()));
                            }
                        }
                    });
                    for p in pending {
                        hub.push_page(p)?;
                    }
                } else if !slot.sel.is_empty() {
                    emit.push(
                        FactBatch::new(
                            page.clone(),
                            std::mem::take(&mut slot.sel),
                            Vec::new(),
                        ),
                        hub,
                    )?;
                }
            }
        }
        emit.flush(hub)?;
        if let Some(mut b) = builder {
            flush_rest(&mut b, hub)?;
        }
        return Ok(());
    }
    while let Some(page) = cursor.next_page(&ctx.pool)? {
        ctl_check(ctl)?;
        // Fast path: no selection, no projection — forward table pages
        // as-is under an identity selection (zero copy; the whole point of
        // batch-based exchange).
        if compiled.is_none() && spans.is_none() {
            ctx.metrics
                .rows_scanned
                .fetch_add(page.rows() as u64, Ordering::Relaxed);
            hub.push(Arc::new(FactBatch::all(page)))?;
            continue;
        }
        // Process the page under a core permit, pushing outside of it.
        let mut pending: Vec<Arc<Page>> = Vec::new();
        ctx.governor.run(|| {
            match &compiled {
                Some(c) => {
                    let view = ColumnBatch::for_predicate(&page, c.columns());
                    c.eval_batch(&view, &mut scratch, &mut mask);
                    selection_from_mask(&mask, &mut sel);
                }
                None => {
                    sel.clear();
                    sel.extend(0..page.rows() as u32);
                }
            }
            if let (Some(spans), Some(b)) = (&spans, &mut builder) {
                // Projecting scan: the output rows are new (narrower)
                // rows, so this is a materialization point. Columnar
                // pages re-encode each surviving row through a reused
                // scratch; row-major pages slice the arena in place.
                for &r in &sel {
                    let row_bytes: &[u8] = match page.column_page() {
                        Some(_) => {
                            encrow.clear();
                            page.encode_row_into(r as usize, &mut encrow);
                            &encrow
                        }
                        None => page.row(r as usize).bytes(),
                    };
                    project_spans_into(row_bytes, spans, &mut rowbuf);
                    let ok = b.push_encoded(&rowbuf);
                    debug_assert!(ok);
                    if b.is_full() {
                        pending.push(Arc::new(b.finish_and_reset()));
                    }
                }
            }
        });
        ctx.metrics
            .rows_scanned
            .fetch_add(sel.len() as u64, Ordering::Relaxed);
        if spans.is_none() {
            if !sel.is_empty() {
                emit.push(
                    FactBatch::new(page, std::mem::take(&mut sel), Vec::new()),
                    hub,
                )?;
            }
        } else {
            for p in pending {
                hub.push_page(p)?;
            }
        }
    }
    emit.flush(hub)?;
    if let Some(mut b) = builder {
        flush_rest(&mut b, hub)?;
    }
    Ok(())
}

fn run_filter(
    predicate: &Expr,
    input: &mut Box<dyn BatchSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
    ctl: Option<&QueryCtl>,
) -> Result<(), EngineError> {
    // Fetched lazily from the shared program cache against the first
    // batch's schema (identical for the whole stream), then evaluated
    // column-wise over the batch's surviving tuples; the output is the
    // same page with a refined selection — no rows are copied here.
    let mut compiled: Option<Arc<CompiledPred>> = None;
    let mut scratch = PredScratch::new();
    let mut mask: Vec<u64> = Vec::new();
    let mut sel: Vec<u32> = Vec::new();
    let mut emit = EmitBuffer::new();
    while let Some(batch) = input.next_batch()? {
        ctl_check(ctl)?;
        let c = compiled
            .get_or_insert_with(|| CompiledPred::cached(predicate, batch.page().schema()));
        ctx.governor.run(|| {
            // Selection-aware: on a partially-selected batch this gathers
            // the predicate columns over the *surviving* tuples only, so
            // evaluation cost tracks the live row count, not page size.
            let view = pred_view(&batch, c.columns());
            c.eval_batch(&view, &mut scratch, &mut mask);
            // Mask bit i refers to batch tuple i = page row sel[i]: the
            // mask → selection handoff composes the two.
            refine_selection(&mask, batch.sel(), &mut sel);
        });
        if !sel.is_empty() {
            emit.push(
                FactBatch::new(batch.page().clone(), std::mem::take(&mut sel), Vec::new()),
                hub,
            )?;
        }
    }
    emit.flush(hub)
}

#[allow(clippy::too_many_arguments)]
fn run_hash_join(
    build_key: usize,
    probe_key: usize,
    out_schema: &Arc<Schema>,
    build: &mut Box<dyn BatchSource>,
    probe: &mut Box<dyn BatchSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
    ctl: Option<&QueryCtl>,
) -> Result<(), EngineError> {
    // Build phase: hash the (dimension) side. This is a true
    // materialization point — build tuples must outlive their batches, so
    // their encoded bytes are gathered once into a contiguous arena. The
    // key column is gathered per batch into a typed slice; the insert
    // loop never touches row views.
    let mut arena: Vec<u8> = Vec::new();
    let mut build_rs = 0usize;
    let mut ht: HashMap<i64, Vec<u32>> = HashMap::new();
    let mut keys: Vec<i64> = Vec::new();
    let mut tb: Vec<u8> = Vec::new();
    while let Some(batch) = build.next_batch()? {
        ctl_check(ctl)?;
        ctx.governor.run(|| {
            build_rs = batch.page().schema().row_size();
            let base = (arena.len() / build_rs) as u32;
            batch.gather_i64_into(build_key, &mut keys);
            for (i, &k) in keys.iter().enumerate() {
                ht.entry(k).or_default().push(base + i as u32);
            }
            for t in 0..batch.len() {
                arena.extend_from_slice(batch.tuple_bytes_in(t, &mut tb));
            }
        });
    }

    // Probe phase: stream the (fact) side. Keys are batch-gathered from
    // the surviving tuples and probed in a tight loop; matched row bytes
    // are sliced straight out of the shared page and the build arena.
    let mut builder = PageBuilder::with_bytes(out_schema.clone(), ctx.out_page_bytes);
    let mut rowbuf: Vec<u8> = Vec::with_capacity(out_schema.row_size());
    let mut joined = 0u64;
    while let Some(batch) = probe.next_batch()? {
        ctl_check(ctl)?;
        let mut pending: Vec<Arc<Page>> = Vec::new();
        ctx.governor.run(|| {
            batch.gather_i64_into(probe_key, &mut keys);
            for (t, &k) in keys.iter().enumerate() {
                let Some(matches) = ht.get(&k) else {
                    continue;
                };
                let probe_bytes = batch.tuple_bytes_in(t, &mut tb);
                for &bidx in matches {
                    let bidx = bidx as usize;
                    let build_bytes = &arena[bidx * build_rs..(bidx + 1) * build_rs];
                    rowbuf.clear();
                    rowbuf.extend_from_slice(probe_bytes);
                    rowbuf.extend_from_slice(build_bytes);
                    let ok = builder.push_encoded(&rowbuf);
                    debug_assert!(ok);
                    joined += 1;
                    if builder.is_full() {
                        pending.push(Arc::new(builder.finish_and_reset()));
                    }
                }
            }
        });
        for p in pending {
            hub.push_page(p)?;
        }
    }
    ctx.metrics.rows_joined.fetch_add(joined, Ordering::Relaxed);
    flush_rest(&mut builder, hub)
}

#[allow(clippy::too_many_arguments)]
fn run_aggregate(
    group_by: &[usize],
    aggs: &[AggSpec],
    in_schema: &Arc<Schema>,
    out_schema: &Arc<Schema>,
    groups_hint: Option<usize>,
    input: &mut Box<dyn BatchSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
    ctl: Option<&QueryCtl>,
) -> Result<(), EngineError> {
    // Chaos poison plan: while faults are armed, an aggregate output
    // named `POISON_AGG_NAME` panics deliberately — the chaos harness's
    // deterministic stand-in for the fuzzer-found operator panic. The
    // name is part of the plan signature, so SP can never attach a
    // healthy co-runner to a poisoned packet, and the panic is contained
    // by the stage worker into a single-query abort.
    if qs_storage::fault::armed()
        && aggs.iter().any(|a| a.name == qs_storage::fault::POISON_AGG_NAME)
    {
        panic!("chaos poison plan: aggregate `{}`", qs_storage::fault::POISON_AGG_NAME);
    }
    // Batch shape: per batch, the key-resolution pass maps every surviving
    // tuple to a dense group slot (one probe per tuple — the irreducible
    // cost of hash aggregation), then each aggregate folds the whole batch
    // through its typed kernel over the gathered column view. Resolution
    // goes through the tiered [`GroupTable`] — single-`Int` and ≤16-byte
    // fixed-width keys probe flat open-addressing tables straight off the
    // page bytes with zero per-tuple allocation; only arbitrary-shape keys
    // fall back to the byte-key `HashMap` (extracting into one reused
    // scratch buffer). Slots are first-touch ordered, so output stays
    // deterministic given input order. No intermediate pages are built.
    let mut table = GroupTable::compile_with_hint(group_by, in_schema, groups_hint);
    let kernels: Vec<AggKernel> = aggs
        .iter()
        .map(|a| AggKernel::compile(&a.func, in_schema))
        .collect();
    let agg_cols = kernel_columns(&kernels);
    let mut accs: Vec<AccVec> = kernels.iter().map(AccVec::for_kernel).collect();
    if let Some(h) = groups_hint {
        // Stats-driven pre-size: one allocation up front instead of grow
        // checks mid-stream. Slots never shrink and the output loop reads
        // exactly `0..table.len()`, so an over-estimate costs only memory.
        for acc in &mut accs {
            acc.resize(h.clamp(1, 1 << 20));
        }
    }
    // Per-batch scratch: tuple → group slot, plus the identity tuple list
    // the grouped kernels consume. Large batches fan key resolution across
    // the shared worker pool (radix-partitioned sub-tables merged back in
    // first-touch order, so slot numbering is identical to the sequential
    // path); the kernel folds stay on this thread.
    let mut gidx: Vec<u32> = Vec::new();
    let mut rows_idx: Vec<u32> = Vec::new();
    let mut pscratch = ParallelScratch::new();
    while let Some(batch) = input.next_batch()? {
        ctl_check(ctl)?;
        ctx.governor.run(|| -> Result<(), EngineError> {
            table.resolve_batch_parallel(&batch, &ctx.workers, &mut pscratch, &mut gidx)?;
            rows_idx.clear();
            rows_idx.extend(0..batch.len() as u32);
            let view = batch_view(&batch, &agg_cols);
            for (kernel, acc) in kernels.iter().zip(&mut accs) {
                acc.resize(table.len());
                update_grouped(kernel, acc, &view, &rows_idx, &gidx);
            }
            Ok(())
        })?;
    }

    // Global aggregate over empty input still emits one row of zeroes.
    if group_by.is_empty() && table.is_empty() {
        table.intern_key(&[]);
        for acc in &mut accs {
            acc.resize(1);
        }
    }

    let mut builder = PageBuilder::with_bytes(out_schema.clone(), ctx.out_page_bytes);
    let mut rowbuf: Vec<u8> = vec![0u8; out_schema.row_size()];
    for g in 0..table.len() {
        // Group columns occupy the prefix of the output row with identical
        // widths, so the key bytes land directly.
        let key = table.key_bytes(g);
        rowbuf[..key.len()].copy_from_slice(key);
        for (i, acc) in accs.iter().enumerate() {
            let col = group_by.len() + i;
            let v = acc.finalize(g);
            qs_storage::row::encode_value(&mut rowbuf, out_schema, col, &v)
                .map_err(EngineError::Storage)?;
        }
        if !builder.push_encoded(&rowbuf) {
            hub.push_page(Arc::new(builder.finish_and_reset()))?;
            let ok = builder.push_encoded(&rowbuf);
            debug_assert!(ok);
        }
        flush_if_full(&mut builder, hub)?;
    }
    flush_rest(&mut builder, hub)
}

/// Sort-key layout resolved once per operator: `(byte offset, type,
/// ascending)` per key, so row comparisons do no schema lookups.
type KeySpec = Vec<(usize, DataType, bool)>;

fn key_spec(schema: &Schema, keys: &[(usize, bool)]) -> KeySpec {
    keys.iter()
        .map(|&(c, asc)| (schema.offset(c), schema.dtype(c), asc))
        .collect()
}

/// Compare two encoded rows on a precomputed key spec.
fn cmp_encoded(a: &[u8], b: &[u8], keys: &KeySpec) -> std::cmp::Ordering {
    use qs_storage::row::{read_date_at, read_f64_at, read_i64_at, trim_char};
    use std::cmp::Ordering as O;
    for &(off, dt, asc) in keys {
        let ord = match dt {
            DataType::Int => read_i64_at(a, off).cmp(&read_i64_at(b, off)),
            DataType::Float => read_f64_at(a, off).total_cmp(&read_f64_at(b, off)),
            DataType::Date => read_date_at(a, off).cmp(&read_date_at(b, off)),
            DataType::Char(n) => {
                let n = n as usize;
                trim_char(&a[off..off + n]).cmp(trim_char(&b[off..off + n]))
            }
        };
        let ord = if asc { ord } else { ord.reverse() };
        if ord != O::Equal {
            return ord;
        }
    }
    O::Equal
}

fn run_sort(
    keys: &[(usize, bool)],
    schema: &Arc<Schema>,
    input: &mut Box<dyn BatchSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
    ctl: Option<&QueryCtl>,
) -> Result<(), EngineError> {
    // The sort buffer is a true materialization point, but even here no
    // row bytes move on ingest: the buffer is (page handle, row) pairs
    // over the shared input pages; rows are copied once, in sorted order,
    // into the output pages.
    let mut pages: Vec<Arc<Page>> = Vec::new();
    let mut index: Vec<(u32, u32)> = Vec::new();
    while let Some(batch) = input.next_batch()? {
        ctl_check(ctl)?;
        let pidx = pages.len() as u32;
        for &r in batch.sel() {
            index.push((pidx, r));
        }
        // The comparator slices encoded rows in place, so columnar input
        // pages are flipped to row-major once here rather than re-encoding
        // each row O(n log n) times during the sort.
        let page = batch.page();
        if page.column_page().is_some() {
            pages.push(Arc::new(page.to_row_major()));
        } else {
            pages.push(page.clone());
        }
    }
    let spec = key_spec(schema, keys);
    ctx.governor.run(|| {
        index.sort_by(|&(pa, ra), &(pb, rb)| {
            let a = pages[pa as usize].row(ra as usize);
            let b = pages[pb as usize].row(rb as usize);
            cmp_encoded(a.bytes(), b.bytes(), &spec)
        });
    });
    let mut builder = PageBuilder::with_bytes(schema.clone(), ctx.out_page_bytes);
    for &(p, r) in &index {
        let row = pages[p as usize].row(r as usize);
        let ok = builder.push_row(row);
        debug_assert!(ok);
        flush_if_full(&mut builder, hub)?;
    }
    flush_rest(&mut builder, hub)
}

fn run_project(
    columns: &[usize],
    out_schema: &Arc<Schema>,
    input: &mut Box<dyn BatchSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
    ctl: Option<&QueryCtl>,
) -> Result<(), EngineError> {
    let mut builder = PageBuilder::with_bytes(out_schema.clone(), ctx.out_page_bytes);
    let mut rowbuf: Vec<u8> = Vec::with_capacity(out_schema.row_size());
    let mut tb: Vec<u8> = Vec::new();
    let mut spans: Option<Vec<(usize, usize)>> = None;
    while let Some(batch) = input.next_batch()? {
        ctl_check(ctl)?;
        let spans =
            spans.get_or_insert_with(|| column_spans(batch.page().schema(), columns));
        let mut pending: Vec<Arc<Page>> = Vec::new();
        ctx.governor.run(|| {
            for t in 0..batch.len() {
                project_spans_into(batch.tuple_bytes_in(t, &mut tb), spans, &mut rowbuf);
                debug_assert_eq!(rowbuf.len(), out_schema.row_size());
                let ok = builder.push_encoded(&rowbuf);
                debug_assert!(ok);
                if builder.is_full() {
                    pending.push(Arc::new(builder.finish_and_reset()));
                }
            }
        });
        for p in pending {
            hub.push_page(p)?;
        }
    }
    flush_rest(&mut builder, hub)
}

fn run_distinct(
    schema: &Arc<Schema>,
    input: &mut Box<dyn BatchSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
    ctl: Option<&QueryCtl>,
) -> Result<(), EngineError> {
    // Rows are fixed-width encoded, so whole-row dedup is byte equality
    // over tuple bytes read in place from the shared page.
    let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
    let mut builder = PageBuilder::with_bytes(schema.clone(), ctx.out_page_bytes);
    let mut tb: Vec<u8> = Vec::new();
    while let Some(batch) = input.next_batch()? {
        ctl_check(ctl)?;
        let mut pending: Vec<Arc<Page>> = Vec::new();
        ctx.governor.run(|| {
            for t in 0..batch.len() {
                let bytes = batch.tuple_bytes_in(t, &mut tb);
                if seen.insert(bytes.to_vec()) {
                    let ok = builder.push_encoded(bytes);
                    debug_assert!(ok);
                    if builder.is_full() {
                        pending.push(Arc::new(builder.finish_and_reset()));
                    }
                }
            }
        });
        for p in pending {
            hub.push_page(p)?;
        }
    }
    flush_rest(&mut builder, hub)
}

fn run_topk(
    keys: &[(usize, bool)],
    n: usize,
    schema: &Arc<Schema>,
    input: &mut Box<dyn BatchSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
    ctl: Option<&QueryCtl>,
) -> Result<(), EngineError> {
    if n == 0 {
        // Still drain the input so the producer is not blocked forever.
        while input.next_batch()?.is_some() {}
        return Ok(());
    }
    // Bounded selection: keep the n best encoded rows seen so far. A
    // sorted insertion buffer is O(n) per displacing row but n is small
    // (LIMIT clauses); it keeps the common non-displacing row at one
    // comparison against the current cutoff. Only displacing rows are
    // copied out of the shared page.
    let spec = key_spec(schema, keys);
    let mut best: Vec<Vec<u8>> = Vec::with_capacity(n + 1);
    let mut tb: Vec<u8> = Vec::new();
    while let Some(batch) = input.next_batch()? {
        ctl_check(ctl)?;
        ctx.governor.run(|| {
            for t in 0..batch.len() {
                let bytes = batch.tuple_bytes_in(t, &mut tb);
                let full = best.len() == n;
                if full {
                    let worst = best.last().expect("n > 0");
                    if cmp_encoded(bytes, worst, &spec) != std::cmp::Ordering::Less {
                        continue;
                    }
                }
                let pos = best.partition_point(|b| {
                    cmp_encoded(b, bytes, &spec) != std::cmp::Ordering::Greater
                });
                best.insert(pos, bytes.to_vec());
                if best.len() > n {
                    best.pop();
                }
            }
        });
    }
    let mut builder = PageBuilder::with_bytes(schema.clone(), ctx.out_page_bytes);
    for enc in &best {
        let ok = builder.push_encoded(enc);
        debug_assert!(ok);
        flush_if_full(&mut builder, hub)?;
    }
    flush_rest(&mut builder, hub)
}

fn run_limit(
    n: usize,
    _schema: &Arc<Schema>,
    input: &mut Box<dyn BatchSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
    ctl: Option<&QueryCtl>,
) -> Result<(), EngineError> {
    // Limit is pure selection slicing: whole batches are forwarded by
    // `Arc` clone, and the boundary batch is trimmed with
    // [`FactBatch::prefix`] — no builder, no row copies.
    let _ = ctx;
    let mut remaining = n;
    while let Some(batch) = input.next_batch()? {
        ctl_check(ctl)?;
        if remaining == 0 {
            break;
        }
        if batch.len() <= remaining {
            remaining -= batch.len();
            hub.push(batch)?;
        } else {
            let trimmed = batch.prefix(remaining);
            remaining = 0;
            hub.push(Arc::new(trimmed))?;
        }
    }
    Ok(())
}
