//! Physical operators: the bodies of stage packets.
//!
//! Each operator is a blocking pull(inputs)/push(hub) loop. CPU-bound
//! per-page work runs under a core permit from the [`CoreGovernor`]; waits
//! on inputs, outputs and simulated disk do not hold a permit.

use crate::error::EngineError;
use crate::fifo::PageSource;
use crate::governor::CoreGovernor;
use crate::hub::OutputHub;
use crate::kernels::{kernel_columns, update_grouped, AccVec, AggKernel};
use crate::metrics::Metrics;
use qs_plan::compiled::iter_ones;
use qs_plan::{AggSpec, CompiledPred, Expr, PredScratch};
use qs_storage::{
    BufferPool, CircularCursor, ColumnBatch, DataType, Page, PageBuilder, Schema, Table,
};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Shared execution context handed to every packet.
pub struct ExecCtx {
    /// Buffer pool (scans read through it).
    pub pool: Arc<BufferPool>,
    /// CPU-parallelism governor.
    pub governor: Arc<CoreGovernor>,
    /// Metrics sink.
    pub metrics: Arc<Metrics>,
    /// Byte budget for operator output pages.
    pub out_page_bytes: usize,
}

/// The physical operator of one packet.
pub enum PhysicalOp {
    /// Circular table scan with optional selection and projection.
    Scan {
        /// Table to scan.
        table: Arc<Table>,
        /// Selection over the table schema.
        predicate: Option<Expr>,
        /// Columns to emit; `None` = all.
        projection: Option<Vec<usize>>,
        /// Output schema (projected or full).
        out_schema: Arc<Schema>,
    },
    /// Standalone selection.
    Filter {
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// Hash equi-join: `inputs[0]` is built, `inputs[1]` probes.
    HashJoin {
        /// Key column in the build schema.
        build_key: usize,
        /// Key column in the probe schema.
        probe_key: usize,
        /// `probe ++ build` output schema.
        out_schema: Arc<Schema>,
    },
    /// Hash aggregation.
    Aggregate {
        /// Group-by columns over the input schema.
        group_by: Vec<usize>,
        /// Aggregate specs.
        aggs: Vec<AggSpec>,
        /// Input schema.
        in_schema: Arc<Schema>,
        /// Output schema (group cols then agg cols).
        out_schema: Arc<Schema>,
    },
    /// Full sort.
    Sort {
        /// `(column, ascending)` keys.
        keys: Vec<(usize, bool)>,
        /// Row schema (unchanged by sort).
        schema: Arc<Schema>,
    },
    /// Projection.
    Project {
        /// Columns to keep.
        columns: Vec<usize>,
        /// Output schema.
        out_schema: Arc<Schema>,
    },
    /// First-n rows.
    Limit {
        /// Row budget.
        n: usize,
        /// Row schema (unchanged).
        schema: Arc<Schema>,
    },
    /// Whole-row duplicate elimination (first occurrence wins).
    Distinct {
        /// Row schema (unchanged).
        schema: Arc<Schema>,
    },
    /// Heap-based top-n in key order.
    TopK {
        /// `(column, ascending)` keys.
        keys: Vec<(usize, bool)>,
        /// Rows to keep.
        n: usize,
        /// Row schema (unchanged).
        schema: Arc<Schema>,
    },
}

/// Execute one packet body: read `inputs`, write to `hub`. The caller
/// (stage worker) is responsible for `hub.finish()` / `hub.abort()`.
pub fn execute(
    op: &PhysicalOp,
    inputs: &mut [Box<dyn PageSource>],
    hub: &OutputHub,
    ctx: &ExecCtx,
) -> Result<(), EngineError> {
    match op {
        PhysicalOp::Scan {
            table,
            predicate,
            projection,
            out_schema,
        } => run_scan(table, predicate.as_ref(), projection.as_deref(), out_schema, hub, ctx),
        PhysicalOp::Filter { predicate } => run_filter(predicate, &mut inputs[0], hub, ctx),
        PhysicalOp::HashJoin {
            build_key,
            probe_key,
            out_schema,
        } => {
            let (build, probe) = inputs.split_at_mut(1);
            run_hash_join(
                *build_key,
                *probe_key,
                out_schema,
                &mut build[0],
                &mut probe[0],
                hub,
                ctx,
            )
        }
        PhysicalOp::Aggregate {
            group_by,
            aggs,
            in_schema,
            out_schema,
        } => run_aggregate(group_by, aggs, in_schema, out_schema, &mut inputs[0], hub, ctx),
        PhysicalOp::Sort { keys, schema } => run_sort(keys, schema, &mut inputs[0], hub, ctx),
        PhysicalOp::Project { columns, out_schema } => {
            run_project(columns, out_schema, &mut inputs[0], hub, ctx)
        }
        PhysicalOp::Limit { n, schema } => run_limit(*n, schema, &mut inputs[0], hub, ctx),
        PhysicalOp::Distinct { schema } => run_distinct(schema, &mut inputs[0], hub, ctx),
        PhysicalOp::TopK { keys, n, schema } => {
            run_topk(keys, *n, schema, &mut inputs[0], hub, ctx)
        }
    }
}

/// Precompute the `(byte offset, width)` span of each column — hoists the
/// repeated `schema.offset`/`dtype` lookups out of per-row loops.
fn column_spans(schema: &Schema, columns: &[usize]) -> Vec<(usize, usize)> {
    columns
        .iter()
        .map(|&c| (schema.offset(c), schema.dtype(c).width()))
        .collect()
}

/// Copy precomputed column spans of an encoded row into `buf`.
#[inline]
fn project_spans_into(row: &[u8], spans: &[(usize, usize)], buf: &mut Vec<u8>) {
    buf.clear();
    for &(off, w) in spans {
        buf.extend_from_slice(&row[off..off + w]);
    }
}

fn flush_if_full(
    builder: &mut PageBuilder,
    hub: &OutputHub,
) -> Result<(), EngineError> {
    if builder.is_full() {
        let page = builder.finish_and_reset();
        hub.push(Arc::new(page))?;
    }
    Ok(())
}

fn flush_rest(builder: &mut PageBuilder, hub: &OutputHub) -> Result<(), EngineError> {
    if !builder.is_empty() {
        let page = builder.finish_and_reset();
        hub.push(Arc::new(page))?;
    }
    Ok(())
}

fn run_scan(
    table: &Arc<Table>,
    predicate: Option<&Expr>,
    projection: Option<&[usize]>,
    out_schema: &Arc<Schema>,
    hub: &OutputHub,
    ctx: &ExecCtx,
) -> Result<(), EngineError> {
    let mut cursor = CircularCursor::new(table.clone());
    let mut builder = PageBuilder::with_bytes(out_schema.clone(), ctx.out_page_bytes);
    let mut rowbuf: Vec<u8> = Vec::with_capacity(out_schema.row_size());
    // Predicate fetched from the shared program cache (compiled at most
    // once process-wide per (predicate, schema) — concurrent identical
    // scans share it), evaluated column-wise per page; projection spans
    // hoisted out of the per-row loop.
    let compiled = predicate.map(|p| CompiledPred::cached(p, table.schema()));
    let spans = projection.map(|cols| column_spans(table.schema(), cols));
    let mut scratch = PredScratch::new();
    let mut mask: Vec<u64> = Vec::new();
    // Fast path: no selection, no projection — forward table pages as-is
    // (zero copy; the whole point of page-based exchange).
    let passthrough = predicate.is_none() && projection.is_none();
    while let Some(page) = cursor.next_page(&ctx.pool) {
        if passthrough {
            ctx.metrics
                .rows_scanned
                .fetch_add(page.rows() as u64, Ordering::Relaxed);
            hub.push(page)?;
            continue;
        }
        let mut emitted = 0u64;
        // Process the page under a core permit, flushing outside of it.
        let mut pending: Vec<Arc<Page>> = Vec::new();
        ctx.governor.run(|| {
            let mut emit = |row: usize| {
                emitted += 1;
                let ok = match &spans {
                    Some(spans) => {
                        project_spans_into(page.row(row).bytes(), spans, &mut rowbuf);
                        builder.push_encoded(&rowbuf)
                    }
                    None => builder.push_row(page.row(row)),
                };
                debug_assert!(ok);
                if builder.is_full() {
                    pending.push(Arc::new(builder.finish_and_reset()));
                }
            };
            match &compiled {
                Some(c) => {
                    let batch = ColumnBatch::from_page(&page, c.columns());
                    c.eval_batch(&batch, &mut scratch, &mut mask);
                    for i in iter_ones(&mask) {
                        emit(i);
                    }
                }
                None => {
                    for i in 0..page.rows() {
                        emit(i);
                    }
                }
            }
        });
        ctx.metrics.rows_scanned.fetch_add(emitted, Ordering::Relaxed);
        for p in pending {
            hub.push(p)?;
        }
    }
    flush_rest(&mut builder, hub)
}

fn run_filter(
    predicate: &Expr,
    input: &mut Box<dyn PageSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
) -> Result<(), EngineError> {
    let mut builder: Option<PageBuilder> = None;
    // Fetched lazily from the shared program cache against the first
    // page's schema (identical for the whole stream), then evaluated
    // column-wise page-at-a-time; concurrent packets with the identical
    // predicate share one program.
    let mut compiled: Option<Arc<CompiledPred>> = None;
    let mut scratch = PredScratch::new();
    let mut mask: Vec<u64> = Vec::new();
    while let Some(page) = input.next_page()? {
        let b = builder.get_or_insert_with(|| {
            PageBuilder::with_bytes(page.schema().clone(), ctx.out_page_bytes)
        });
        let c = compiled
            .get_or_insert_with(|| CompiledPred::cached(predicate, page.schema()));
        let mut pending: Vec<Arc<Page>> = Vec::new();
        ctx.governor.run(|| {
            let batch = ColumnBatch::from_page(&page, c.columns());
            c.eval_batch(&batch, &mut scratch, &mut mask);
            for i in iter_ones(&mask) {
                let ok = b.push_row(page.row(i));
                debug_assert!(ok);
                if b.is_full() {
                    pending.push(Arc::new(b.finish_and_reset()));
                }
            }
        });
        for p in pending {
            hub.push(p)?;
        }
    }
    if let Some(mut b) = builder {
        flush_rest(&mut b, hub)?;
    }
    Ok(())
}

fn run_hash_join(
    build_key: usize,
    probe_key: usize,
    out_schema: &Arc<Schema>,
    build: &mut Box<dyn PageSource>,
    probe: &mut Box<dyn PageSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
) -> Result<(), EngineError> {
    // Build phase: hash the (dimension) side. The key column is decoded
    // once per page into a typed slice; the insert loop never touches row
    // views.
    let mut build_pages: Vec<Arc<Page>> = Vec::new();
    let mut ht: HashMap<i64, Vec<(u32, u32)>> = HashMap::new();
    while let Some(page) = build.next_page()? {
        let page_idx = build_pages.len() as u32;
        ctx.governor.run(|| {
            let batch = ColumnBatch::from_page(&page, &[build_key]);
            for (i, &k) in batch.col(build_key).i64s().iter().enumerate() {
                ht.entry(k).or_default().push((page_idx, i as u32));
            }
        });
        build_pages.push(page);
    }
    let build_rs = build_pages
        .first()
        .map_or(0, |p| p.schema().row_size());

    // Probe phase: stream the (fact) side. Keys are batch-extracted per
    // page and probed in a tight loop; matched row bytes are sliced
    // straight out of the page arenas.
    let mut builder = PageBuilder::with_bytes(out_schema.clone(), ctx.out_page_bytes);
    let mut rowbuf: Vec<u8> = Vec::with_capacity(out_schema.row_size());
    let mut joined = 0u64;
    while let Some(page) = probe.next_page()? {
        let mut pending: Vec<Arc<Page>> = Vec::new();
        ctx.governor.run(|| {
            let batch = ColumnBatch::from_page(&page, &[probe_key]);
            let probe_raw = page.raw();
            let probe_rs = page.schema().row_size();
            for (i, &k) in batch.col(probe_key).i64s().iter().enumerate() {
                let Some(matches) = ht.get(&k) else {
                    continue;
                };
                let probe_bytes = &probe_raw[i * probe_rs..(i + 1) * probe_rs];
                for &(pidx, ridx) in matches {
                    let ridx = ridx as usize;
                    let build_bytes =
                        &build_pages[pidx as usize].raw()[ridx * build_rs..(ridx + 1) * build_rs];
                    rowbuf.clear();
                    rowbuf.extend_from_slice(probe_bytes);
                    rowbuf.extend_from_slice(build_bytes);
                    let ok = builder.push_encoded(&rowbuf);
                    debug_assert!(ok);
                    joined += 1;
                    if builder.is_full() {
                        pending.push(Arc::new(builder.finish_and_reset()));
                    }
                }
            }
        });
        for p in pending {
            hub.push(p)?;
        }
    }
    ctx.metrics.rows_joined.fetch_add(joined, Ordering::Relaxed);
    flush_rest(&mut builder, hub)
}

fn run_aggregate(
    group_by: &[usize],
    aggs: &[AggSpec],
    in_schema: &Arc<Schema>,
    out_schema: &Arc<Schema>,
    input: &mut Box<dyn PageSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
) -> Result<(), EngineError> {
    // Group key = concatenated raw bytes of the group columns; insertion
    // order is preserved so output is deterministic given input order.
    //
    // Batch shape: per page, the key-resolution pass maps every row to a
    // dense group slot (one hash probe per row — the irreducible cost of
    // hash aggregation), then each aggregate folds the whole page through
    // its typed kernel over the decoded column batch. No per-row
    // `(Acc, AggFunc)` dispatch and no per-row schema lookups survive.
    let group_spans = column_spans(in_schema, group_by);
    let key_size: usize = group_spans.iter().map(|&(_, w)| w).sum();
    let kernels: Vec<AggKernel> = aggs
        .iter()
        .map(|a| AggKernel::compile(&a.func, in_schema))
        .collect();
    let agg_cols = kernel_columns(&kernels);
    let mut accs: Vec<AccVec> = kernels.iter().map(AccVec::for_kernel).collect();
    let mut groups: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut order: Vec<Vec<u8>> = Vec::new();
    // Per-page scratch: row → group slot, plus the identity row list the
    // grouped kernels consume.
    let mut gidx: Vec<u32> = Vec::new();
    let mut rows_idx: Vec<u32> = Vec::new();
    while let Some(page) = input.next_page()? {
        ctx.governor.run(|| {
            let n = page.rows();
            let raw = page.raw();
            let rs = in_schema.row_size();
            gidx.clear();
            for i in 0..n {
                let row = &raw[i * rs..(i + 1) * rs];
                let mut key = Vec::with_capacity(key_size);
                for &(off, w) in &group_spans {
                    key.extend_from_slice(&row[off..off + w]);
                }
                let slot = match groups.get(key.as_slice()) {
                    Some(&s) => s,
                    None => {
                        let s = order.len() as u32;
                        order.push(key.clone());
                        groups.insert(key, s);
                        s
                    }
                };
                gidx.push(slot);
            }
            rows_idx.clear();
            rows_idx.extend(0..n as u32);
            let batch = ColumnBatch::from_page(&page, &agg_cols);
            for (kernel, acc) in kernels.iter().zip(&mut accs) {
                acc.resize(order.len());
                update_grouped(kernel, acc, &batch, &rows_idx, &gidx);
            }
        });
    }

    // Global aggregate over empty input still emits one row of zeroes.
    if group_by.is_empty() && order.is_empty() {
        order.push(Vec::new());
        for acc in &mut accs {
            acc.resize(1);
        }
    }

    let mut builder = PageBuilder::with_bytes(out_schema.clone(), ctx.out_page_bytes);
    let mut rowbuf: Vec<u8> = vec![0u8; out_schema.row_size()];
    for (g, key) in order.iter().enumerate() {
        // Group columns occupy the prefix of the output row with identical
        // widths, so the key bytes land directly.
        rowbuf[..key.len()].copy_from_slice(key);
        for (i, acc) in accs.iter().enumerate() {
            let col = group_by.len() + i;
            let v = acc.finalize(g);
            qs_storage::row::encode_value(&mut rowbuf, out_schema, col, &v)
                .map_err(EngineError::Storage)?;
        }
        if !builder.push_encoded(&rowbuf) {
            hub.push(Arc::new(builder.finish_and_reset()))?;
            let ok = builder.push_encoded(&rowbuf);
            debug_assert!(ok);
        }
        flush_if_full(&mut builder, hub)?;
    }
    flush_rest(&mut builder, hub)
}

/// Sort-key layout resolved once per operator: `(byte offset, type,
/// ascending)` per key, so row comparisons do no schema lookups.
type KeySpec = Vec<(usize, DataType, bool)>;

fn key_spec(schema: &Schema, keys: &[(usize, bool)]) -> KeySpec {
    keys.iter()
        .map(|&(c, asc)| (schema.offset(c), schema.dtype(c), asc))
        .collect()
}

/// Compare two encoded rows on a precomputed key spec.
fn cmp_encoded(a: &[u8], b: &[u8], keys: &KeySpec) -> std::cmp::Ordering {
    use qs_storage::row::{read_date_at, read_f64_at, read_i64_at, trim_char};
    use std::cmp::Ordering as O;
    for &(off, dt, asc) in keys {
        let ord = match dt {
            DataType::Int => read_i64_at(a, off).cmp(&read_i64_at(b, off)),
            DataType::Float => read_f64_at(a, off).total_cmp(&read_f64_at(b, off)),
            DataType::Date => read_date_at(a, off).cmp(&read_date_at(b, off)),
            DataType::Char(n) => {
                let n = n as usize;
                trim_char(&a[off..off + n]).cmp(trim_char(&b[off..off + n]))
            }
        };
        let ord = if asc { ord } else { ord.reverse() };
        if ord != O::Equal {
            return ord;
        }
    }
    O::Equal
}

fn run_sort(
    keys: &[(usize, bool)],
    schema: &Arc<Schema>,
    input: &mut Box<dyn PageSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
) -> Result<(), EngineError> {
    let mut pages: Vec<Arc<Page>> = Vec::new();
    let mut index: Vec<(u32, u32)> = Vec::new();
    while let Some(page) = input.next_page()? {
        let pidx = pages.len() as u32;
        for i in 0..page.rows() {
            index.push((pidx, i as u32));
        }
        pages.push(page);
    }
    let spec = key_spec(schema, keys);
    ctx.governor.run(|| {
        index.sort_by(|&(pa, ra), &(pb, rb)| {
            let a = pages[pa as usize].row(ra as usize);
            let b = pages[pb as usize].row(rb as usize);
            cmp_encoded(a.bytes(), b.bytes(), &spec)
        });
    });
    let mut builder = PageBuilder::with_bytes(schema.clone(), ctx.out_page_bytes);
    for &(p, r) in &index {
        let row = pages[p as usize].row(r as usize);
        let ok = builder.push_row(row);
        debug_assert!(ok);
        flush_if_full(&mut builder, hub)?;
    }
    flush_rest(&mut builder, hub)
}

fn run_project(
    columns: &[usize],
    out_schema: &Arc<Schema>,
    input: &mut Box<dyn PageSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
) -> Result<(), EngineError> {
    let mut builder = PageBuilder::with_bytes(out_schema.clone(), ctx.out_page_bytes);
    let mut rowbuf: Vec<u8> = Vec::with_capacity(out_schema.row_size());
    let mut spans: Option<Vec<(usize, usize)>> = None;
    while let Some(page) = input.next_page()? {
        let spans = spans.get_or_insert_with(|| column_spans(page.schema(), columns));
        let mut pending: Vec<Arc<Page>> = Vec::new();
        ctx.governor.run(|| {
            for row in page.iter() {
                project_spans_into(row.bytes(), spans, &mut rowbuf);
                debug_assert_eq!(rowbuf.len(), out_schema.row_size());
                let ok = builder.push_encoded(&rowbuf);
                debug_assert!(ok);
                if builder.is_full() {
                    pending.push(Arc::new(builder.finish_and_reset()));
                }
            }
        });
        for p in pending {
            hub.push(p)?;
        }
    }
    flush_rest(&mut builder, hub)
}

fn run_distinct(
    schema: &Arc<Schema>,
    input: &mut Box<dyn PageSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
) -> Result<(), EngineError> {
    // Rows are fixed-width encoded, so whole-row dedup is byte equality.
    let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
    let mut builder = PageBuilder::with_bytes(schema.clone(), ctx.out_page_bytes);
    while let Some(page) = input.next_page()? {
        let mut pending: Vec<Arc<Page>> = Vec::new();
        ctx.governor.run(|| {
            for row in page.iter() {
                if seen.insert(row.bytes().to_vec()) {
                    let ok = builder.push_row(row);
                    debug_assert!(ok);
                    if builder.is_full() {
                        pending.push(Arc::new(builder.finish_and_reset()));
                    }
                }
            }
        });
        for p in pending {
            hub.push(p)?;
        }
    }
    flush_rest(&mut builder, hub)
}

fn run_topk(
    keys: &[(usize, bool)],
    n: usize,
    schema: &Arc<Schema>,
    input: &mut Box<dyn PageSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
) -> Result<(), EngineError> {
    if n == 0 {
        // Still drain the input so the producer is not blocked forever.
        while input.next_page()?.is_some() {}
        return Ok(());
    }
    // Bounded selection: keep the n best encoded rows seen so far. A
    // sorted insertion buffer is O(n) per displacing row but n is small
    // (LIMIT clauses); it keeps the common non-displacing row at one
    // comparison against the current cutoff.
    let spec = key_spec(schema, keys);
    let mut best: Vec<Vec<u8>> = Vec::with_capacity(n + 1);
    while let Some(page) = input.next_page()? {
        ctx.governor.run(|| {
            for row in page.iter() {
                let bytes = row.bytes();
                let full = best.len() == n;
                if full {
                    let worst = best.last().expect("n > 0");
                    if cmp_encoded(bytes, worst, &spec) != std::cmp::Ordering::Less {
                        continue;
                    }
                }
                let pos = best.partition_point(|b| {
                    cmp_encoded(b, bytes, &spec) != std::cmp::Ordering::Greater
                });
                best.insert(pos, bytes.to_vec());
                if best.len() > n {
                    best.pop();
                }
            }
        });
    }
    let mut builder = PageBuilder::with_bytes(schema.clone(), ctx.out_page_bytes);
    for enc in &best {
        let ok = builder.push_encoded(enc);
        debug_assert!(ok);
        flush_if_full(&mut builder, hub)?;
    }
    flush_rest(&mut builder, hub)
}

fn run_limit(
    n: usize,
    schema: &Arc<Schema>,
    input: &mut Box<dyn PageSource>,
    hub: &OutputHub,
    ctx: &ExecCtx,
) -> Result<(), EngineError> {
    let mut remaining = n;
    while let Some(page) = input.next_page()? {
        if remaining == 0 {
            break;
        }
        if page.rows() <= remaining {
            remaining -= page.rows();
            hub.push(page)?;
        } else {
            let mut builder = PageBuilder::with_bytes(schema.clone(), ctx.out_page_bytes);
            for row in page.iter().take(remaining) {
                let ok = builder.push_row(row);
                debug_assert!(ok);
            }
            remaining = 0;
            flush_rest(&mut builder, hub)?;
        }
    }
    Ok(())
}
