//! Per-query control block: cooperative cancellation and deadlines.
//!
//! A [`QueryCtl`] is created at submit time and threaded to the query's
//! root ticket and to every *exclusive* packet of its plan (packets
//! registered for simultaneous pipelining are shared property — another
//! query's deadline must never kill a co-runner's producer, so shared
//! packets only observe control at the ticket boundary).
//!
//! Cancellation is cooperative: [`QueryCtl::cancel`] raises a flag that
//! operator loops and `QueryTicket::next_batch` check at batch
//! boundaries, and fires a one-shot hook. The hook is how cancellation
//! reaches subsystems with their own teardown protocol — `qs-core` points
//! it at CJOIN's early-removal path so a cancelled GQP query leaves the
//! shared pipeline instead of merely having its results discarded.

use crate::engine::SharingPolicy;
use crate::error::EngineError;
use crate::metrics::Metrics;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Options accepted alongside a plan at submit time.
#[derive(Debug, Clone, Default)]
pub struct QueryOpts {
    /// Wall-clock budget for the query, measured from submit. Checked at
    /// batch boundaries; an expired query surfaces
    /// [`EngineError::DeadlineExceeded`] at its ticket.
    pub deadline: Option<Duration>,
    /// Per-query sharing policy. `None` uses the engine's configured
    /// policy; `Some` overrides it for this query only — the mode
    /// router's lever for picking QC vs SP push/pull per submission
    /// without rebuilding the engine.
    pub sharing: Option<SharingPolicy>,
}

impl QueryOpts {
    /// Options carrying only a deadline.
    pub fn with_deadline(deadline: Duration) -> QueryOpts {
        QueryOpts {
            deadline: Some(deadline),
            ..QueryOpts::default()
        }
    }

    /// Override the engine's sharing policy for this query.
    pub fn with_sharing(mut self, sharing: SharingPolicy) -> QueryOpts {
        self.sharing = Some(sharing);
        self
    }
}

/// Shared control block for one submitted query.
pub struct QueryCtl {
    cancelled: AtomicBool,
    /// Absolute deadline, fixed when the query was submitted.
    deadline: Option<Instant>,
    metrics: Arc<Metrics>,
    /// Ensures `deadline_aborts` counts each query at most once.
    deadline_counted: AtomicBool,
    /// One-shot teardown hook (e.g. CJOIN early removal).
    hook: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl QueryCtl {
    /// Control block for a query submitted now with `opts`.
    pub fn new(opts: &QueryOpts, metrics: Arc<Metrics>) -> Arc<QueryCtl> {
        Arc::new(QueryCtl {
            cancelled: AtomicBool::new(false),
            deadline: opts.deadline.map(|d| Instant::now() + d),
            metrics,
            deadline_counted: AtomicBool::new(false),
            hook: Mutex::new(None),
        })
    }

    /// Whether `cancel` has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Raise the cancellation flag and fire the teardown hook. Idempotent;
    /// only the first call counts toward `queries_cancelled`.
    pub fn cancel(&self) {
        if !self.cancelled.swap(true, Ordering::AcqRel) {
            self.metrics.queries_cancelled.fetch_add(1, Ordering::Relaxed);
            self.fire_hook();
        }
    }

    /// Install the one-shot teardown hook. If the query was already
    /// cancelled (or its deadline already observed) the hook fires
    /// immediately — the race between submit-side wiring and a concurrent
    /// `cancel` must not lose the teardown.
    pub fn set_hook(&self, hook: Box<dyn FnOnce() + Send>) {
        {
            let mut slot = self.hook.lock().unwrap_or_else(|p| p.into_inner());
            *slot = Some(hook);
        }
        if self.is_cancelled() || self.deadline_counted.load(Ordering::Acquire) {
            self.fire_hook();
        }
    }

    fn fire_hook(&self) {
        let hook = {
            let mut slot = self.hook.lock().unwrap_or_else(|p| p.into_inner());
            slot.take()
        };
        if let Some(hook) = hook {
            hook();
        }
    }

    /// Batch-boundary control check: `Err(Cancelled)` once cancelled,
    /// `Err(DeadlineExceeded)` once past the deadline, `Ok` otherwise.
    /// The first deadline observation counts toward `deadline_aborts` and
    /// fires the teardown hook, exactly like a cancel.
    pub fn check(&self) -> Result<(), EngineError> {
        if self.is_cancelled() {
            return Err(EngineError::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                if !self.deadline_counted.swap(true, Ordering::AcqRel) {
                    self.metrics.deadline_aborts.fetch_add(1, Ordering::Relaxed);
                    self.fire_hook();
                }
                return Err(EngineError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// Clonable handle that can cancel a query from another thread while the
/// submitter is blocked draining the ticket.
#[derive(Clone)]
pub struct CancelHandle {
    ctl: Arc<QueryCtl>,
}

impl CancelHandle {
    pub(crate) fn new(ctl: Arc<QueryCtl>) -> CancelHandle {
        CancelHandle { ctl }
    }

    /// Cancel the query this handle was taken from.
    pub fn cancel(&self) {
        self.ctl.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn cancel_is_idempotent_and_counted_once() {
        let m = Metrics::new();
        let ctl = QueryCtl::new(&QueryOpts::default(), m.clone());
        assert!(ctl.check().is_ok());
        ctl.cancel();
        ctl.cancel();
        assert_eq!(ctl.check(), Err(EngineError::Cancelled));
        assert_eq!(m.snapshot().queries_cancelled, 1);
    }

    #[test]
    fn expired_deadline_counts_once_and_fires_hook() {
        let m = Metrics::new();
        let ctl = QueryCtl::new(&QueryOpts::with_deadline(Duration::ZERO), m.clone());
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        ctl.set_hook(Box::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(ctl.check(), Err(EngineError::DeadlineExceeded));
        assert_eq!(ctl.check(), Err(EngineError::DeadlineExceeded));
        assert_eq!(m.snapshot().deadline_aborts, 1);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn hook_installed_after_cancel_fires_immediately() {
        let m = Metrics::new();
        let ctl = QueryCtl::new(&QueryOpts::default(), m);
        ctl.cancel();
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        ctl.set_hook(Box::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn far_deadline_passes_checks() {
        let m = Metrics::new();
        let ctl = QueryCtl::new(&QueryOpts::with_deadline(Duration::from_secs(3600)), m.clone());
        assert!(ctl.check().is_ok());
        assert_eq!(m.snapshot().deadline_aborts, 0);
    }
}
