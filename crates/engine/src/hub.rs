//! The output hub: one producer, N subscribers, in either sharing mode.
//!
//! Every packet writes its output through an [`OutputHub`]. The currency
//! is the [`EngineBatch`] — a shared page plus the selection of surviving
//! rows — so forwarding a filter's output costs no row copies. The hub is
//! where the paper's two SP mechanics diverge:
//!
//! * **Push mode** (original QPipe): each subscriber has its own bounded
//!   FIFO. The producer hands the original batch to the first live
//!   subscriber and **deep-copies** its page for every additional one — on
//!   the producer's own thread, under a core permit, because the copy is
//!   real CPU work. This loop is the serialization point of push-based SP.
//!   Subscription is only possible before the first batch is produced
//!   (the strict sharing window of push-based SP).
//!
//! * **Pull mode** (SPL): all subscribers share one [`SharedPagesList`];
//!   the producer appends each batch exactly once and subscription is
//!   possible at any time until the producer finishes.
//!
//! With a single subscriber the push-mode hub degenerates to QPipe's plain
//! FIFO pipeline dataflow, so the hub is the *only* output path in the
//! engine — query-centric execution is simply "nobody else subscribed".

use crate::error::EngineError;
use crate::fifo::{BatchSource, EngineBatch, FifoBuffer, FifoReader};
use crate::governor::CoreGovernor;
use crate::metrics::{Metrics, StageKind};
use crate::spl::SharedPagesList;
use parking_lot::Mutex;
use qs_storage::{FactBatch, Page};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// FIFO capacity for passive (client-drained) consumers: effectively
/// unbounded, so a shared producer can never block on a ticket the client
/// has not started draining yet. See [`OutputHub::subscribe_with_capacity`].
pub const UNBOUNDED_CAPACITY: usize = usize::MAX;

/// How intermediate results are distributed to consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareMode {
    /// Per-consumer FIFOs; producer copies (original QPipe SP).
    Push,
    /// One Shared Pages List; consumers pull (the paper's improvement).
    Pull,
}

struct HubState {
    started: bool,
    finished: bool,
    push_subs: Vec<Arc<FifoBuffer>>,
}

/// Producer-side fan-out point for one packet's output.
pub struct OutputHub {
    mode: ShareMode,
    stage: StageKind,
    fifo_capacity: usize,
    metrics: Arc<Metrics>,
    governor: Arc<CoreGovernor>,
    spl: Option<Arc<SharedPagesList>>,
    /// When set, push-mode extra-consumer copies of *sparse* batches
    /// materialize only the selected tuples (selection-proportional cost)
    /// instead of deep-copying the whole page. See
    /// `EngineConfig::compact_push_copies`.
    compact_copies: std::sync::atomic::AtomicBool,
    state: Mutex<HubState>,
}

impl OutputHub {
    /// Create a hub and its primary consumer (the packet's own parent).
    pub fn new(
        mode: ShareMode,
        stage: StageKind,
        fifo_capacity: usize,
        metrics: Arc<Metrics>,
        governor: Arc<CoreGovernor>,
    ) -> (Arc<OutputHub>, Box<dyn BatchSource>) {
        match mode {
            ShareMode::Pull => {
                let spl = SharedPagesList::new();
                let reader = spl.reader();
                let hub = Arc::new(OutputHub {
                    mode,
                    stage,
                    fifo_capacity,
                    metrics,
                    governor,
                    spl: Some(spl),
                    compact_copies: std::sync::atomic::AtomicBool::new(false),
                    state: Mutex::new(HubState {
                        started: false,
                        finished: false,
                        push_subs: Vec::new(),
                    }),
                });
                (hub, Box::new(reader))
            }
            ShareMode::Push => {
                let (fifo, reader) = FifoBuffer::channel(fifo_capacity);
                let hub = Arc::new(OutputHub {
                    mode,
                    stage,
                    fifo_capacity,
                    metrics,
                    governor,
                    spl: None,
                    compact_copies: std::sync::atomic::AtomicBool::new(false),
                    state: Mutex::new(HubState {
                        started: false,
                        finished: false,
                        push_subs: vec![fifo],
                    }),
                });
                (hub, Box::new(reader) as Box<FifoReader> as Box<dyn BatchSource>)
            }
        }
    }

    /// The sharing mode.
    pub fn mode(&self) -> ShareMode {
        self.mode
    }

    /// The stage this hub's producer runs at (metrics label).
    pub fn stage(&self) -> StageKind {
        self.stage
    }

    /// Switch push-mode extra-consumer copies of sparse batches to the
    /// selection-proportional shape (see `EngineConfig::compact_push_copies`).
    pub fn set_compact_copies(&self, on: bool) {
        self.compact_copies.store(on, Ordering::Relaxed);
    }

    /// Attempt to attach an additional consumer (an SP hit), with the
    /// hub's own FIFO capacity.
    ///
    /// Pull mode accepts until the producer has finished; push mode only
    /// before the first batch is produced. `None` means the sharing window
    /// has closed and the caller must evaluate its own packet.
    pub fn subscribe(&self) -> Option<Box<dyn BatchSource>> {
        self.subscribe_with_capacity(self.fifo_capacity)
    }

    /// [`OutputHub::subscribe`] with an explicit FIFO capacity for the new
    /// consumer (push mode only; pull-mode SPL readers are unbuffered).
    ///
    /// Liveness rule: a *passive* consumer — one drained by client code at
    /// an arbitrary pace, i.e. a root [`crate::QueryTicket`] — must use
    /// [`UNBOUNDED_CAPACITY`]. A bounded FIFO here lets the shared
    /// producer block on one sibling while the client waits on another,
    /// deadlocking two queries that share a packet. Operator-input
    /// consumers have dedicated stage workers that always drain, so they
    /// keep bounded FIFOs (pipeline backpressure).
    pub fn subscribe_with_capacity(&self, cap: usize) -> Option<Box<dyn BatchSource>> {
        let mut st = self.state.lock();
        match self.mode {
            ShareMode::Pull => {
                // Pull mode accepts even after the producer finished: the
                // SPL retains the full history, so late sharing is correct.
                self.spl
                    .as_ref()
                    .map(|spl| Box::new(spl.reader()) as Box<dyn BatchSource>)
            }
            ShareMode::Push => {
                if st.started || st.finished {
                    return None;
                }
                let (fifo, reader) = FifoBuffer::channel(cap);
                st.push_subs.push(fifo);
                Some(Box::new(reader))
            }
        }
    }

    /// Number of currently attached consumers.
    pub fn consumers(&self) -> usize {
        match self.mode {
            ShareMode::Pull => 1, // readers are untracked; at least primary
            ShareMode::Push => self.state.lock().push_subs.len(),
        }
    }

    /// Producer convenience: emit a dense page as a full-selection batch
    /// (operators whose output is freshly built pages — aggregates, joins,
    /// sorts — and the CJOIN distributor).
    pub fn push_page(&self, page: Arc<Page>) -> Result<(), EngineError> {
        self.push(Arc::new(FactBatch::all(page)))
    }

    /// Producer: emit a group of batches to every consumer under one
    /// channel synchronization (the group form of [`Self::push`]).
    /// Sparse scans/filters buffer tiny batches and flush them through
    /// here so consumers are not woken once per table page. Drains
    /// `batches`; a no-op when empty.
    pub fn push_many(&self, batches: &mut Vec<EngineBatch>) -> Result<(), EngineError> {
        if batches.is_empty() {
            return Ok(());
        }
        match self.mode {
            ShareMode::Pull => {
                {
                    let mut st = self.state.lock();
                    st.started = true;
                }
                let bytes: u64 = batches.iter().map(|b| b.page().byte_len() as u64).sum();
                self.metrics
                    .pages_shared
                    .fetch_add(batches.len() as u64, Ordering::Relaxed);
                self.metrics.bytes_shared.fetch_add(bytes, Ordering::Relaxed);
                self.spl
                    .as_ref()
                    .expect("pull hub has an SPL")
                    .append_many(batches)
            }
            ShareMode::Push => {
                let subs: Vec<Arc<FifoBuffer>> = {
                    let mut st = self.state.lock();
                    st.started = true;
                    st.push_subs.clone()
                };
                let mut delivered = 0usize;
                let mut dead: Vec<usize> = Vec::new();
                for (i, fifo) in subs.iter().enumerate() {
                    if fifo.reader_gone() {
                        dead.push(i);
                        continue;
                    }
                    // First live consumer receives the original batches;
                    // every further one costs a page copy per batch on
                    // this thread (the push-based SP serialization point,
                    // unchanged by grouping). The copy is a full deep page
                    // copy by default; with `compact_copies` a sparse
                    // batch instead materializes only its selected tuples.
                    let compact = self.compact_copies.load(Ordering::Relaxed);
                    let mut to_send: Vec<EngineBatch> = if delivered == 0 {
                        batches.clone()
                    } else {
                        let copies = self.governor.run(|| {
                            batches
                                .iter()
                                .map(|b| {
                                    Arc::new(if compact && !b.is_full() {
                                        b.compact_copy()
                                    } else {
                                        b.deep_copy()
                                    })
                                })
                                .collect::<Vec<_>>()
                        });
                        let bytes: u64 =
                            copies.iter().map(|b| b.page().byte_len() as u64).sum();
                        self.metrics
                            .pages_copied
                            .fetch_add(copies.len() as u64, Ordering::Relaxed);
                        self.metrics.bytes_copied.fetch_add(bytes, Ordering::Relaxed);
                        copies
                    };
                    match fifo.push_many(&mut to_send) {
                        Ok(()) => delivered += 1,
                        Err(EngineError::Cancelled) => dead.push(i),
                        Err(e) => return Err(e),
                    }
                }
                if !dead.is_empty() {
                    let mut st = self.state.lock();
                    st.push_subs.retain(|f| {
                        !subs
                            .iter()
                            .enumerate()
                            .any(|(i, s)| dead.contains(&i) && Arc::ptr_eq(f, s))
                    });
                }
                batches.clear();
                if delivered == 0 {
                    return Err(EngineError::Cancelled);
                }
                Ok(())
            }
        }
    }

    /// Producer: emit one batch to every consumer (the one-element form
    /// of [`Self::push_many`] — a single delivery path keeps the copy
    /// metering and dead-subscriber pruning in one place).
    pub fn push(&self, batch: EngineBatch) -> Result<(), EngineError> {
        let mut one = vec![batch];
        self.push_many(&mut one)
    }

    /// Producer: end of stream.
    pub fn finish(&self) {
        let subs = {
            let mut st = self.state.lock();
            st.finished = true;
            st.push_subs.clone()
        };
        if let Some(spl) = &self.spl {
            spl.finish();
        }
        for f in subs {
            f.finish();
        }
    }

    /// Producer: abort all consumers with a cause.
    pub fn abort(&self, msg: impl Into<String>) {
        let msg = msg.into();
        let subs = {
            let mut st = self.state.lock();
            st.finished = true;
            st.push_subs.clone()
        };
        if let Some(spl) = &self.spl {
            spl.abort(msg.clone());
        }
        for f in subs {
            f.abort(msg.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_storage::{DataType, Schema, Value};

    fn batch(k: i64) -> EngineBatch {
        let s = Schema::from_pairs(&[("k", DataType::Int)]);
        let page = Arc::new(Page::from_values(&s, &[vec![Value::Int(k)]]).unwrap());
        Arc::new(FactBatch::all(page))
    }

    fn hub(mode: ShareMode) -> (Arc<OutputHub>, Box<dyn BatchSource>, Arc<Metrics>) {
        let m = Metrics::new();
        let g = CoreGovernor::new(0, m.clone());
        let (h, r) = OutputHub::new(mode, StageKind::Scan, 8, m.clone(), g);
        (h, r, m)
    }

    fn drain(mut src: Box<dyn BatchSource>) -> Vec<i64> {
        let mut out = Vec::new();
        while let Some(b) = src.next_batch().unwrap() {
            out.push(b.page().row(b.sel()[0] as usize).i64_col(0));
        }
        out
    }

    #[test]
    fn pull_mode_shares_without_copying() {
        let (h, primary, m) = hub(ShareMode::Pull);
        let sub = h.subscribe().expect("pull subscribe");
        h.push(batch(1)).unwrap();
        h.push(batch(2)).unwrap();
        h.finish();
        assert_eq!(drain(primary), vec![1, 2]);
        assert_eq!(drain(sub), vec![1, 2]);
        let s = m.snapshot();
        assert_eq!(s.pages_shared, 2);
        assert_eq!(s.pages_copied, 0);
    }

    #[test]
    fn pull_mode_allows_mid_stream_subscription() {
        let (h, primary, _) = hub(ShareMode::Pull);
        h.push(batch(1)).unwrap();
        let late = h.subscribe().expect("late pull subscribe");
        h.push(batch(2)).unwrap();
        h.finish();
        assert_eq!(drain(primary), vec![1, 2]);
        assert_eq!(drain(late), vec![1, 2]);
    }

    #[test]
    fn push_mode_copies_per_extra_consumer() {
        let (h, primary, m) = hub(ShareMode::Push);
        let sub1 = h.subscribe().expect("pre-start subscribe");
        let sub2 = h.subscribe().expect("pre-start subscribe 2");
        let producer = {
            let h = h.clone();
            std::thread::spawn(move || {
                h.push(batch(1)).unwrap();
                h.push(batch(2)).unwrap();
                h.finish();
            })
        };
        let a = drain(primary);
        let b = drain(sub1);
        let c = drain(sub2);
        producer.join().unwrap();
        assert_eq!(a, vec![1, 2]);
        assert_eq!(b, a);
        assert_eq!(c, a);
        let s = m.snapshot();
        // 2 batches × 2 extra consumers = 4 deep page copies
        assert_eq!(s.pages_copied, 4);
        assert_eq!(s.pages_shared, 0);
    }

    #[test]
    fn push_mode_window_closes_at_first_batch() {
        let (h, primary, _) = hub(ShareMode::Push);
        h.push(batch(1)).unwrap();
        assert!(h.subscribe().is_none(), "window must be closed");
        h.finish();
        assert_eq!(drain(primary), vec![1]);
    }

    #[test]
    fn push_page_wraps_dense_pages() {
        let (h, mut primary, _) = hub(ShareMode::Push);
        let s = Schema::from_pairs(&[("k", DataType::Int)]);
        let page = Arc::new(
            Page::from_values(&s, &[vec![Value::Int(3)], vec![Value::Int(4)]]).unwrap(),
        );
        h.push_page(page.clone()).unwrap();
        h.finish();
        let b = primary.next_batch().unwrap().unwrap();
        assert!(b.is_full());
        assert_eq!(b.len(), 2);
        assert!(Arc::ptr_eq(b.page(), &page));
    }

    #[test]
    fn abort_propagates_to_all_modes() {
        for mode in [ShareMode::Pull, ShareMode::Push] {
            let (h, mut primary, _) = hub(mode);
            h.abort("nope");
            assert!(matches!(
                primary.next_batch(),
                Err(EngineError::Aborted(_))
            ));
        }
    }

    #[test]
    fn push_mode_survives_one_cancelled_consumer() {
        let (h, primary, _) = hub(ShareMode::Push);
        let sub = h.subscribe().unwrap();
        drop(sub); // consumer cancels before production
        let producer = {
            let h = h.clone();
            std::thread::spawn(move || {
                h.push(batch(5)).unwrap();
                h.finish();
            })
        };
        assert_eq!(drain(primary), vec![5]);
        producer.join().unwrap();
    }

    #[test]
    fn push_mode_all_consumers_gone_cancels_producer() {
        let (h, primary, _) = hub(ShareMode::Push);
        drop(primary);
        assert!(matches!(h.push(batch(1)), Err(EngineError::Cancelled)));
    }

    /// `compact_copies`: a sparse batch's per-consumer copy materializes
    /// only the selected tuples — fewer bytes than the deep page copy —
    /// and the subscriber's values are identical either way.
    #[test]
    fn push_mode_compact_copies_shrink_sparse_batches() {
        let s = Schema::from_pairs(&[("k", DataType::Int)]);
        let rows: Vec<Vec<Value>> = (0..64).map(|i| vec![Value::Int(i)]).collect();
        let page = Arc::new(Page::from_values(&s, &rows).unwrap());
        // 3 of 64 tuples survive: selection-proportional beats page-proportional.
        let sparse = || Arc::new(FactBatch::all(page.clone()).prefix(3));

        let mut observed = Vec::new();
        for compact in [false, true] {
            let (h, primary, m) = hub(ShareMode::Push);
            h.set_compact_copies(compact);
            let sub = h.subscribe().expect("pre-start subscribe");
            let producer = {
                let h = h.clone();
                let b = sparse();
                std::thread::spawn(move || {
                    h.push(b).unwrap();
                    h.finish();
                })
            };
            let first: Vec<i64> = {
                let mut src = primary;
                let mut out = Vec::new();
                while let Some(b) = src.next_batch().unwrap() {
                    for t in 0..b.len() {
                        out.push(b.page().row(b.sel()[t] as usize).i64_col(0));
                    }
                }
                out
            };
            let copied: Vec<i64> = {
                let mut src = sub;
                let mut out = Vec::new();
                while let Some(b) = src.next_batch().unwrap() {
                    for t in 0..b.len() {
                        out.push(b.page().row(b.sel()[t] as usize).i64_col(0));
                    }
                }
                out
            };
            producer.join().unwrap();
            assert_eq!(first, vec![0, 1, 2]);
            assert_eq!(copied, first, "copy shape must be invisible in values");
            observed.push(m.snapshot().bytes_copied);
        }
        assert!(
            observed[1] < observed[0],
            "compact copy ({} B) must be smaller than the deep page copy ({} B)",
            observed[1],
            observed[0]
        );
    }
}
