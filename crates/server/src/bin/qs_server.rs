//! The serving front door as a process: generate SSB, build one shared
//! [`SharingDb`] (engine + CJOIN pipeline constructed once), and listen
//! for line-protocol SQL clients until killed.
//!
//! ```sh
//! cargo run --release -p qs-server --bin qs_server -- \
//!     --addr 127.0.0.1:7878 --mode gqpsp --scale 0.01 --workers 2 \
//!     --max-concurrent 32 --max-queued 64 --queue-timeout-ms 200
//! ```
//!
//! Every flag is `--key value`; defaults below. `--max-concurrent 0`
//! disables admission control (not recommended for untrusted traffic).

use qs_core::{DbConfig, ExecutionMode, SharingDb};
use qs_engine::AdmissionConfig;
use qs_storage::{Catalog, PageLayout};
use qs_workload::ssb::data::{generate_ssb, SsbConfig};
use std::sync::Arc;
use std::time::Duration;

fn arg<T: std::str::FromStr>(key: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{key}"))
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_mode(s: &str) -> ExecutionMode {
    match s.to_ascii_lowercase().as_str() {
        "qc" | "querycentric" => ExecutionMode::QueryCentric,
        "push" | "sppush" => ExecutionMode::SpPush,
        "pull" | "sppull" | "spl" => ExecutionMode::SpPull,
        "gqp" | "cjoin" => ExecutionMode::Gqp,
        "gqpsp" | "gqp+sp" => ExecutionMode::GqpSp,
        "auto" => ExecutionMode::Auto,
        other => {
            eprintln!("unknown mode `{other}`; using gqpsp");
            ExecutionMode::GqpSp
        }
    }
}

fn main() {
    let addr: String = arg("addr", "127.0.0.1:7878".to_string());
    let mode = parse_mode(&arg("mode", "gqpsp".to_string()));
    let scale: f64 = arg("scale", 0.01);
    let seed: u64 = arg("seed", 42);
    let layout: PageLayout = arg("layout", PageLayout::Row);
    let max_concurrent: usize = arg("max-concurrent", 64);
    let max_queued: usize = arg("max-queued", 128);
    let queue_timeout_ms: u64 = arg("queue-timeout-ms", 500);

    eprintln!("qs_server: generating SSB scale {scale} (seed {seed}, {layout:?} layout) ...");
    let catalog = Catalog::new();
    generate_ssb(
        &catalog,
        &SsbConfig {
            scale,
            seed,
            page_bytes: 16 * 1024,
            layout,
        },
    );

    let mut config = DbConfig::new(mode);
    config.cores = arg("cores", config.cores);
    config.workers = arg("workers", config.workers);
    if max_concurrent > 0 {
        config.admission = Some(AdmissionConfig {
            max_concurrent,
            max_queued,
            queue_timeout: Duration::from_millis(queue_timeout_ms),
        });
    }
    eprintln!(
        "qs_server: mode {} cores {} workers {} admission {:?}",
        mode.label(),
        config.cores,
        config.workers,
        config.admission
    );
    let db = Arc::new(SharingDb::new(catalog, config).expect("build shared db"));

    let handle = qs_server::serve(db, &addr).expect("bind listener");
    eprintln!("qs_server: serving on {}", handle.addr());
    handle.join();
}
