//! Always-on SQL serving front door.
//!
//! The paper's shared-execution designs (QPipe SP, CJOIN's global query
//! plan) assume one *always-running* pipeline absorbing many concurrent
//! queries. This crate is that deployment shape: a line-protocol TCP
//! listener over a single [`SharingDb`] — the engine (and, in the GQP
//! modes, the CJOIN pipeline) is constructed once and every connection's
//! SQL is routed into it, so concurrent clients share work exactly as the
//! library benchmarks do.
//!
//! # Protocol
//!
//! One request per line. A line starting with `.` is a meta command:
//!
//! ```text
//! .ping            -> PONG
//! .mode            -> OK mode <label>
//! .routes          -> OK routes qc=N spl=N gqp=N   (AUTO routing counters)
//! .deadline_ms N   -> OK deadline_ms N     (0 clears; applies per query)
//! .quit            -> BYE                  (server closes the connection)
//! ```
//!
//! Any other non-empty line is a SQL `SELECT`. The response is a schema
//! frame, zero or more row frames, and a terminator:
//!
//! ```text
//! SCHEMA col1|col2|...
//! ROW v1|v2|...
//! END <rows> <micros>
//! ```
//!
//! or, terminally, a typed error frame:
//!
//! ```text
//! ERR <KIND> <retry_after_ms|-> <message>
//! ```
//!
//! with `KIND` one of `PARSE`, `BIND`, `PLAN`, `SHED`, `DEADLINE`,
//! `CANCELLED`, `ABORTED`, `STORAGE`, `INTERNAL`, `PROTO`. Only `SHED`
//! carries a Retry-After (computed from the admission gate's
//! [`RetryHint`] snapshot); every other kind sends `-`. An `ERR` frame
//! can follow `ROW` frames (e.g. a deadline expiring mid-stream); it
//! always terminates the request.
//!
//! Fault isolation: each request runs inside a panic belt, so a poisoned
//! statement (or an injected failpoint in the engine underneath) produces
//! an `ERR` frame on one connection — never a dead listener. Rows are
//! streamed batch-at-a-time straight off the engine's zero-copy
//! [`FactBatch`](qs_storage::FactBatch) currency, without re-materializing
//! output pages.

use qs_core::db::SharingDb;
use qs_engine::{AdmissionConfig, EngineError, QueryOpts, RetryHint};
use qs_sql::SqlError;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest accepted request line (bytes). A line that exceeds it gets an
/// `ERR PROTO` frame and the connection is closed — a client streaming an
/// unterminated line must not grow server memory without bound.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Rows per write-buffer flush while streaming a result.
const FLUSH_EVERY_ROWS: u64 = 256;

/// Monotonic counters exposed by a running server (all relaxed; read via
/// [`ServerHandle::stats`]).
#[derive(Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests (SQL statements) received.
    pub requests: AtomicU64,
    /// Requests answered with `END`.
    pub completed: AtomicU64,
    /// Requests answered with an `ERR` frame.
    pub errors: AtomicU64,
    /// `ERR SHED` frames (subset of `errors`).
    pub sheds: AtomicU64,
    /// Panics contained by the per-request belt.
    pub panics_contained: AtomicU64,
}

/// Point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub connections: u64,
    pub requests: u64,
    pub completed: u64,
    pub errors: u64,
    pub sheds: u64,
    pub panics_contained: u64,
}

/// A running listener. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] to stop accepting (connections already open
/// drain until their clients disconnect).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    stats: Arc<ServerStats>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.stats;
        StatsSnapshot {
            connections: s.connections.load(Ordering::Relaxed),
            requests: s.requests.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            errors: s.errors.load(Ordering::Relaxed),
            sheds: s.sheds.load(Ordering::Relaxed),
            panics_contained: s.panics_contained.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting new connections and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block on the accept loop (for a foreground server binary).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Start serving `db` on `addr` (e.g. `"127.0.0.1:0"`). The database —
/// and with it the shared engine/CJOIN pipeline — must already be built;
/// `serve` only adds the listener. One thread per connection; the accept
/// loop and every request are panic-isolated.
pub fn serve(db: Arc<SharingDb>, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());

    let accept_stop = stop.clone();
    let accept_stats = stats.clone();
    let accept_thread = std::thread::Builder::new()
        .name("qs-server-accept".into())
        .spawn(move || {
            let mut conn_id = 0u64;
            while !accept_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        conn_id += 1;
                        accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                        let db = db.clone();
                        let stats = accept_stats.clone();
                        // Connection threads are detached: they end when
                        // their client disconnects or sends `.quit`. A
                        // failed spawn only drops this connection.
                        let _ = std::thread::Builder::new()
                            .name(format!("qs-conn-{conn_id}"))
                            .spawn(move || connection_loop(db, stats, stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        })?;

    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        stats,
    })
}

/// Retry-After for a shed query: one queue-timeout per queued submitter
/// ahead of the shed one (they drain roughly sequentially through the
/// gate), floored at half a timeout and capped at 10 s.
pub fn retry_after_ms(hint: &RetryHint, admission: Option<&AdmissionConfig>) -> u64 {
    let timeout_ms = admission
        .map(|a| a.queue_timeout.as_millis() as u64)
        .unwrap_or(100)
        .max(2);
    (timeout_ms / 2 + timeout_ms * hint.queue_depth as u64).min(10_000)
}

/// Render an [`EngineError`] as a protocol error frame (without the
/// trailing newline).
pub fn engine_error_frame(e: &EngineError, admission: Option<&AdmissionConfig>) -> String {
    let (kind, retry, msg) = match e {
        EngineError::Shed(hint) => (
            "SHED",
            Some(retry_after_ms(hint, admission)),
            format!(
                "overloaded: {} running, {} queued",
                hint.running, hint.queue_depth
            ),
        ),
        EngineError::DeadlineExceeded => ("DEADLINE", None, e.to_string()),
        EngineError::Cancelled => ("CANCELLED", None, e.to_string()),
        EngineError::Aborted(_) => ("ABORTED", None, e.to_string()),
        EngineError::Storage(_) => ("STORAGE", None, e.to_string()),
        EngineError::Plan(_) => ("PLAN", None, e.to_string()),
    };
    err_frame(kind, retry, &msg)
}

fn err_frame(kind: &str, retry_ms: Option<u64>, msg: &str) -> String {
    let retry = match retry_ms {
        Some(ms) => ms.to_string(),
        None => "-".to_string(),
    };
    // An error frame is one line; the message must not smuggle newlines.
    let msg: String = msg
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {kind} {retry} {msg}")
}

fn sql_error_frame(e: &SqlError) -> String {
    match e {
        SqlError::Lex { .. } | SqlError::Parse { .. } => err_frame("PARSE", None, &e.to_string()),
        SqlError::Bind(_) => err_frame("BIND", None, &e.to_string()),
    }
}

/// Read one `\n`-terminated line without letting a hostile client grow
/// the buffer past [`MAX_LINE_BYTES`]. `Ok(None)` = clean EOF;
/// `Err(line-too-long)` is surfaced as `ERR PROTO` by the caller.
fn read_line_capped(reader: &mut BufReader<TcpStream>, buf: &mut Vec<u8>) -> io::Result<Option<()>> {
    buf.clear();
    let n = reader
        .take((MAX_LINE_BYTES + 1) as u64)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.len() > MAX_LINE_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request line exceeds MAX_LINE_BYTES",
        ));
    }
    Ok(Some(()))
}

fn connection_loop(db: Arc<SharingDb>, stats: Arc<ServerStats>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let admission = db.config().admission.clone();
    let mut deadline: Option<Duration> = None;
    let mut linebuf: Vec<u8> = Vec::new();

    loop {
        match read_line_capped(&mut reader, &mut linebuf) {
            Ok(Some(())) => {}
            Ok(None) => return, // clean EOF
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = writeln!(
                    writer,
                    "{}",
                    err_frame("PROTO", None, "request line too long")
                );
                let _ = writer.flush();
                return;
            }
            Err(_) => return,
        }
        let line = String::from_utf8_lossy(&linebuf).trim().to_string();
        if line.is_empty() {
            continue;
        }

        // Meta commands.
        if let Some(meta) = line.strip_prefix('.') {
            let reply = match meta.split_once(' ') {
                None if meta == "ping" => "PONG".to_string(),
                None if meta == "quit" => {
                    let _ = writeln!(writer, "BYE");
                    let _ = writer.flush();
                    return;
                }
                None if meta == "mode" => format!("OK mode {}", db.mode().label()),
                None if meta == "routes" => {
                    // Routing decision counters: all-zero unless the
                    // server runs in AUTO mode.
                    let r = db.router_stats();
                    format!(
                        "OK routes qc={} spl={} gqp={}",
                        r.query_centric, r.sp_pull, r.gqp_sp
                    )
                }
                Some(("deadline_ms", v)) => match v.trim().parse::<u64>() {
                    Ok(0) => {
                        deadline = None;
                        "OK deadline_ms 0".to_string()
                    }
                    Ok(ms) => {
                        deadline = Some(Duration::from_millis(ms));
                        format!("OK deadline_ms {ms}")
                    }
                    Err(_) => err_frame("PROTO", None, "usage: .deadline_ms <millis>"),
                },
                _ => err_frame("PROTO", None, &format!("unknown meta command .{meta}")),
            };
            if writeln!(writer, "{reply}").and_then(|_| writer.flush()).is_err() {
                return;
            }
            continue;
        }

        // SQL request, inside the per-request panic belt: a poisoned
        // statement gets an ERR frame, the connection (and listener)
        // live on.
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            serve_sql(&db, &line, deadline, admission.as_ref(), &mut writer)
        }));
        let disposition = match outcome {
            Ok(d) => d,
            Err(_) => {
                stats.panics_contained.fetch_add(1, Ordering::Relaxed);
                let frame = err_frame("INTERNAL", None, "contained panic while serving request");
                match writeln!(writer, "{frame}").and_then(|_| writer.flush()) {
                    Ok(()) => Disposition::Error,
                    Err(_) => Disposition::Gone,
                }
            }
        };
        match disposition {
            Disposition::Completed => {
                stats.completed.fetch_add(1, Ordering::Relaxed);
            }
            Disposition::Error => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            Disposition::Shed => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                stats.sheds.fetch_add(1, Ordering::Relaxed);
            }
            Disposition::Gone => return, // client went away mid-stream
        }
    }
}

enum Disposition {
    Completed,
    Error,
    Shed,
    /// The client disconnected (write failed); the query was cancelled.
    Gone,
}

/// Execute one SQL statement and stream its frames. Never panics out
/// (the caller's belt is the last resort); IO failure means the client
/// left — cancel the running query and report [`Disposition::Gone`].
fn serve_sql(
    db: &SharingDb,
    sql: &str,
    deadline: Option<Duration>,
    admission: Option<&AdmissionConfig>,
    writer: &mut BufWriter<TcpStream>,
) -> Disposition {
    let started = Instant::now();

    // Front end split so the frame kind distinguishes parse/bind errors
    // (client bugs) from plan/engine errors.
    let plan = match qs_sql::plan_sql(sql, db.catalog()) {
        Ok(p) => p,
        Err(e) => return finish_err(writer, sql_error_frame(&e)),
    };
    let plan = match qs_plan::optimize(plan, db.catalog()) {
        Ok(p) => p,
        Err(e) => {
            return finish_err(writer, engine_error_frame(&EngineError::Plan(e), admission))
        }
    };

    let opts = match deadline {
        Some(d) => QueryOpts::with_deadline(d),
        None => QueryOpts::default(),
    };
    let mut ticket = match db.submit_with(&plan, &opts) {
        Ok(t) => t,
        Err(e) => {
            let shed = matches!(e, EngineError::Shed(_));
            let d = finish_err(writer, engine_error_frame(&e, admission));
            return match (shed, d) {
                (_, Disposition::Gone) => Disposition::Gone,
                (true, _) => Disposition::Shed,
                (false, d) => d,
            };
        }
    };

    // Schema frame.
    let header: Vec<&str> = ticket
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    if writeln!(writer, "SCHEMA {}", header.join("|")).is_err() {
        ticket.cancel();
        return Disposition::Gone;
    }

    // Stream result rows batch-at-a-time off the zero-copy currency: the
    // selection indexes the shared page directly, so sparse batches are
    // not re-materialized into fresh pages just to be printed.
    let mut rows = 0u64;
    let mut cell = String::new();
    loop {
        match ticket.next_batch() {
            Ok(Some(batch)) => {
                let page = batch.page();
                let ncols = page.schema().columns().len();
                for &t in batch.sel() {
                    cell.clear();
                    for c in 0..ncols {
                        if c > 0 {
                            cell.push('|');
                        }
                        use std::fmt::Write as _;
                        let _ = write!(cell, "{}", page.value(t as usize, c));
                    }
                    if writeln!(writer, "ROW {cell}").is_err() {
                        ticket.cancel();
                        return Disposition::Gone;
                    }
                    rows += 1;
                    if rows.is_multiple_of(FLUSH_EVERY_ROWS) && writer.flush().is_err() {
                        ticket.cancel();
                        return Disposition::Gone;
                    }
                }
            }
            Ok(None) => {
                let micros = started.elapsed().as_micros();
                return match writeln!(writer, "END {rows} {micros}")
                    .and_then(|_| writer.flush())
                {
                    Ok(()) => Disposition::Completed,
                    Err(_) => Disposition::Gone,
                };
            }
            Err(e) => {
                return finish_err(writer, engine_error_frame(&e, admission));
            }
        }
    }
}

fn finish_err(writer: &mut BufWriter<TcpStream>, frame: String) -> Disposition {
    match writeln!(writer, "{frame}").and_then(|_| writer.flush()) {
        Ok(()) => {
            if frame.starts_with("ERR SHED") {
                Disposition::Shed
            } else {
                Disposition::Error
            }
        }
        Err(_) => Disposition::Gone,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_scales_with_queue_depth() {
        let admission = AdmissionConfig {
            max_concurrent: 2,
            max_queued: 8,
            queue_timeout: Duration::from_millis(100),
        };
        let at = |queue_depth| {
            retry_after_ms(
                &RetryHint {
                    queue_depth,
                    running: 2,
                },
                Some(&admission),
            )
        };
        assert_eq!(at(0), 50);
        assert_eq!(at(3), 350);
        assert_eq!(at(1000), 10_000, "capped");
        // Without a configured gate the default base still yields a
        // finite, non-zero backoff.
        assert!(retry_after_ms(&RetryHint::default(), None) > 0);
    }

    #[test]
    fn error_frames_are_single_line_and_typed() {
        let f = engine_error_frame(
            &EngineError::Shed(RetryHint {
                queue_depth: 2,
                running: 4,
            }),
            None,
        );
        assert!(f.starts_with("ERR SHED "), "{f}");
        assert!(!f.contains('\n'));
        let f = engine_error_frame(&EngineError::Aborted("x\ny".into()), None);
        assert!(f.starts_with("ERR ABORTED -"), "{f}");
        assert!(!f.contains('\n'), "newlines must be stripped: {f}");
        assert!(engine_error_frame(&EngineError::DeadlineExceeded, None)
            .starts_with("ERR DEADLINE -"));
        assert!(engine_error_frame(&EngineError::Cancelled, None).starts_with("ERR CANCELLED -"));
    }
}
