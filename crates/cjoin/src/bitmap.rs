//! Query bitmaps — the tuple/query correlation mechanism of the GQP.
//!
//! Every tuple flowing through the CJOIN pipeline carries a [`Bitmap`]
//! whose bit `q` means "this tuple is (still) relevant to query `q`".
//! Shared selections set bits; shared hash joins AND the fact tuple's
//! bitmap with the matching dimension tuple's bitmap; a tuple whose bitmap
//! reaches zero is dropped. Dimension-side bitmaps are updated *online*
//! while the pipeline runs (query admission), so they are atomic
//! ([`AtomicBitmap`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Words stored inline before spilling to the heap. Two words cover 128
/// query slots — comfortably above the default `max_queries = 64` — so
/// the per-tuple bitmaps the preprocessor mints by the million are
/// allocation-free.
const INLINE_WORDS: usize = 2;

/// A fixed-width bitmap over query slots.
///
/// Small-inline representation: up to [`INLINE_WORDS`]·64 slots live in
/// the struct itself; wider bitmaps spill to a heap vector. The invariant
/// is canonical (inline words zeroed when spilled, spill empty when
/// inline), so derived equality is structural equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    nwords: u32,
    inline: [u64; INLINE_WORDS],
    spill: Vec<u64>,
}

impl Bitmap {
    /// All-zero bitmap able to hold `nbits` query slots.
    pub fn zeros(nbits: usize) -> Self {
        let nwords = nbits.div_ceil(64).max(1);
        Bitmap {
            nwords: nwords as u32,
            inline: [0; INLINE_WORDS],
            spill: if nwords > INLINE_WORDS {
                vec![0; nwords]
            } else {
                Vec::new()
            },
        }
    }

    /// Build from explicit words (used by [`AtomicBitmap::snapshot`]).
    fn from_words(words: Vec<u64>) -> Self {
        let nwords = words.len().max(1);
        if nwords > INLINE_WORDS {
            Bitmap {
                nwords: nwords as u32,
                inline: [0; INLINE_WORDS],
                spill: words,
            }
        } else {
            let mut inline = [0; INLINE_WORDS];
            inline[..words.len()].copy_from_slice(&words);
            Bitmap {
                nwords: nwords as u32,
                inline,
                spill: Vec::new(),
            }
        }
    }

    /// The backing words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        if self.nwords as usize <= INLINE_WORDS {
            &self.inline[..self.nwords as usize]
        } else {
            &self.spill
        }
    }

    /// The backing words, mutable.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        if self.nwords as usize <= INLINE_WORDS {
            &mut self.inline[..self.nwords as usize]
        } else {
            &mut self.spill
        }
    }

    /// Number of 64-bit words.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.nwords as usize
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words_mut()[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        self.words_mut()[i / 64] &= !(1u64 << (i % 64));
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words()[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self &= other` (the shared hash-join step).
    #[inline]
    pub fn and_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.nwords, other.nwords);
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= *b;
        }
    }

    /// `self &= (other | mask)` in one pass — the join step with a
    /// bypass mask for queries that do not join this dimension.
    #[inline]
    pub fn and_or_assign(&mut self, other: &Bitmap, mask: &Bitmap) {
        debug_assert_eq!(self.nwords, other.nwords);
        debug_assert_eq!(self.nwords, mask.nwords);
        for ((a, b), m) in self
            .words_mut()
            .iter_mut()
            .zip(other.words())
            .zip(mask.words())
        {
            *a &= *b | *m;
        }
    }

    /// `self &= mask` (join step when the key found no dimension match:
    /// only bypassing queries survive).
    #[inline]
    pub fn and_mask(&mut self, mask: &Bitmap) {
        for (a, m) in self.words_mut().iter_mut().zip(mask.words()) {
            *a &= *m;
        }
    }

    /// Any bit set?
    #[inline]
    pub fn any(&self) -> bool {
        self.words().iter().any(|&w| w != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        qs_plan::compiled::iter_ones(self.words())
    }
}

/// A bitmap updated concurrently with readers (dimension hash-table
/// entries and per-stage bypass masks).
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
}

impl AtomicBitmap {
    /// All-zero atomic bitmap for `nbits` slots.
    pub fn zeros(nbits: usize) -> Self {
        AtomicBitmap {
            words: (0..nbits.div_ceil(64).max(1))
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&self, i: usize) {
        self.words[i / 64].fetch_or(1u64 << (i % 64), Ordering::Release);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&self, i: usize) {
        self.words[i / 64].fetch_and(!(1u64 << (i % 64)), Ordering::Release);
    }

    /// Write bit `i` to `value` (admission sets or clears explicitly so
    /// slot reuse never sees stale bits).
    #[inline]
    pub fn write(&self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64].load(Ordering::Acquire) & (1u64 << (i % 64)) != 0
    }

    /// Snapshot into a plain bitmap.
    pub fn snapshot(&self) -> Bitmap {
        Bitmap::from_words(self.words.iter().map(|w| w.load(Ordering::Acquire)).collect())
    }

    /// `dst &= (self | mask)` without allocating (hot join path).
    #[inline]
    pub fn and_or_into(&self, mask: &AtomicBitmap, dst: &mut Bitmap) {
        for (i, d) in dst.words_mut().iter_mut().enumerate() {
            let w = self.words[i].load(Ordering::Acquire);
            let m = mask.words[i].load(Ordering::Acquire);
            *d &= w | m;
        }
    }

    /// `dst &= self` without allocating.
    #[inline]
    pub fn and_into(&self, dst: &mut Bitmap) {
        for (i, d) in dst.words_mut().iter_mut().enumerate() {
            *d &= self.words[i].load(Ordering::Acquire);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::zeros(130);
        assert_eq!(b.word_count(), 3);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn small_widths_stay_inline_wide_ones_spill() {
        // ≤128 slots: no heap allocation behind the bitmap.
        let mut b = Bitmap::zeros(64);
        assert!(b.spill.is_empty());
        b.set(63);
        assert!(b.get(63));
        let b = Bitmap::zeros(128);
        assert!(b.spill.is_empty());
        assert_eq!(b.word_count(), 2);
        // >128 slots: spilled, still fully functional.
        let mut b = Bitmap::zeros(129);
        assert_eq!(b.spill.len(), 3);
        b.set(128);
        assert!(b.get(128) && !b.get(1));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![128]);
    }

    #[test]
    fn snapshot_roundtrips_both_representations() {
        for bits in [64usize, 200] {
            let a = AtomicBitmap::zeros(bits);
            a.set(0);
            a.set(bits - 1);
            let snap = a.snapshot();
            assert_eq!(snap.iter_ones().collect::<Vec<_>>(), vec![0, bits - 1]);
            assert_eq!(snap.word_count(), bits.div_ceil(64));
        }
    }

    #[test]
    fn and_assign_intersects() {
        let mut a = Bitmap::zeros(64);
        let mut b = Bitmap::zeros(64);
        a.set(1);
        a.set(2);
        b.set(2);
        b.set(3);
        a.and_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn and_or_assign_respects_bypass() {
        // q0 joins the dim (match bit set), q1 bypasses it.
        let mut tuple = Bitmap::zeros(64);
        tuple.set(0);
        tuple.set(1);
        let mut dim = Bitmap::zeros(64);
        dim.set(0);
        let mut bypass = Bitmap::zeros(64);
        bypass.set(1);
        tuple.and_or_assign(&dim, &bypass);
        assert_eq!(tuple.iter_ones().collect::<Vec<_>>(), vec![0, 1]);

        // Dim entry NOT matching q0: q0 dies, q1 survives via bypass.
        let mut tuple = Bitmap::zeros(64);
        tuple.set(0);
        tuple.set(1);
        let dim0 = Bitmap::zeros(64);
        tuple.and_or_assign(&dim0, &bypass);
        assert_eq!(tuple.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn and_mask_for_missing_key() {
        let mut tuple = Bitmap::zeros(64);
        tuple.set(0);
        tuple.set(5);
        let mut bypass = Bitmap::zeros(64);
        bypass.set(5);
        tuple.and_mask(&bypass);
        assert_eq!(tuple.iter_ones().collect::<Vec<_>>(), vec![5]);
        assert!(tuple.any());
    }

    #[test]
    fn iter_ones_across_words() {
        let mut b = Bitmap::zeros(200);
        for i in [0, 63, 64, 127, 128, 199] {
            b.set(i);
        }
        assert_eq!(
            b.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 199]
        );
    }

    #[test]
    fn empty_bitmap_any_false() {
        let b = Bitmap::zeros(64);
        assert!(!b.any());
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn atomic_write_and_snapshot() {
        let a = AtomicBitmap::zeros(128);
        a.set(3);
        a.set(100);
        a.write(3, false);
        a.write(7, true);
        assert!(!a.get(3));
        assert!(a.get(7) && a.get(100));
        let snap = a.snapshot();
        assert_eq!(snap.iter_ones().collect::<Vec<_>>(), vec![7, 100]);
    }

    #[test]
    fn atomic_and_or_into_matches_plain() {
        let dim = AtomicBitmap::zeros(128);
        let mask = AtomicBitmap::zeros(128);
        dim.set(1);
        dim.set(70);
        mask.set(2);
        let mut dst = Bitmap::zeros(128);
        dst.set(1);
        dst.set(2);
        dst.set(70);
        dst.set(99);
        dim.and_or_into(&mask, &mut dst);
        assert_eq!(dst.iter_ones().collect::<Vec<_>>(), vec![1, 2, 70]);
    }

    #[test]
    fn concurrent_admission_updates_are_visible() {
        use std::sync::Arc;
        let a = Arc::new(AtomicBitmap::zeros(256));
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let a = a.clone();
                std::thread::spawn(move || {
                    for i in 0..64 {
                        a.set(t * 64 + i);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(a.snapshot().count_ones(), 256);
    }
}
