//! Query bitmaps — the tuple/query correlation mechanism of the GQP.
//!
//! Every tuple flowing through the CJOIN pipeline carries a
//! [`Bitmap`] whose bit `q` means "this tuple is (still) relevant to
//! query `q`". Shared selections set bits; shared hash joins AND the
//! fact tuple's bitmap with the matching dimension tuple's bitmap; a
//! tuple whose bitmap reaches zero is dropped.
//!
//! The plain `Bitmap` now lives in `qs_storage::bitmap` (re-exported
//! here), because [`qs_storage::FactBatch`] made (selection, bitmaps)
//! the post-predicate batch currency of every layer. What remains
//! CJOIN-specific is the [`AtomicBitmap`]: dimension-side bitmaps are
//! updated *online* while the pipeline runs (query admission), so they
//! need atomic words.

pub use qs_storage::bitmap::Bitmap;

use std::sync::atomic::{AtomicU64, Ordering};

/// A bitmap updated concurrently with readers (dimension hash-table
/// entries and per-stage bypass masks).
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
}

impl AtomicBitmap {
    /// All-zero atomic bitmap for `nbits` slots.
    pub fn zeros(nbits: usize) -> Self {
        AtomicBitmap {
            words: (0..nbits.div_ceil(64).max(1))
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&self, i: usize) {
        self.words[i / 64].fetch_or(1u64 << (i % 64), Ordering::Release);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&self, i: usize) {
        self.words[i / 64].fetch_and(!(1u64 << (i % 64)), Ordering::Release);
    }

    /// Write bit `i` to `value` (admission sets or clears explicitly so
    /// slot reuse never sees stale bits).
    #[inline]
    pub fn write(&self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64].load(Ordering::Acquire) & (1u64 << (i % 64)) != 0
    }

    /// Snapshot into a plain bitmap.
    pub fn snapshot(&self) -> Bitmap {
        Bitmap::from_words(self.words.iter().map(|w| w.load(Ordering::Acquire)).collect())
    }

    /// `dst &= (self | mask)` without allocating (hot join path).
    #[inline]
    pub fn and_or_into(&self, mask: &AtomicBitmap, dst: &mut Bitmap) {
        for (i, d) in dst.words_mut().iter_mut().enumerate() {
            let w = self.words[i].load(Ordering::Acquire);
            let m = mask.words[i].load(Ordering::Acquire);
            *d &= w | m;
        }
    }

    /// `dst &= self` without allocating.
    #[inline]
    pub fn and_into(&self, dst: &mut Bitmap) {
        for (i, d) in dst.words_mut().iter_mut().enumerate() {
            *d &= self.words[i].load(Ordering::Acquire);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrips_both_representations() {
        for bits in [64usize, 200] {
            let a = AtomicBitmap::zeros(bits);
            a.set(0);
            a.set(bits - 1);
            let snap = a.snapshot();
            assert_eq!(snap.iter_ones().collect::<Vec<_>>(), vec![0, bits - 1]);
            assert_eq!(snap.word_count(), bits.div_ceil(64));
        }
    }

    #[test]
    fn atomic_write_and_snapshot() {
        let a = AtomicBitmap::zeros(128);
        a.set(3);
        a.set(100);
        a.write(3, false);
        a.write(7, true);
        assert!(!a.get(3));
        assert!(a.get(7) && a.get(100));
        let snap = a.snapshot();
        assert_eq!(snap.iter_ones().collect::<Vec<_>>(), vec![7, 100]);
    }

    #[test]
    fn atomic_and_or_into_matches_plain() {
        let dim = AtomicBitmap::zeros(128);
        let mask = AtomicBitmap::zeros(128);
        dim.set(1);
        dim.set(70);
        mask.set(2);
        let mut dst = Bitmap::zeros(128);
        dst.set(1);
        dst.set(2);
        dst.set(70);
        dst.set(99);
        dim.and_or_into(&mask, &mut dst);
        assert_eq!(dst.iter_ones().collect::<Vec<_>>(), vec![1, 2, 70]);
    }

    #[test]
    fn atomic_and_into_intersects() {
        let dim = AtomicBitmap::zeros(64);
        dim.set(2);
        dim.set(9);
        let mut dst = Bitmap::zeros(64);
        dst.set(2);
        dst.set(3);
        dim.and_into(&mut dst);
        assert_eq!(dst.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn concurrent_admission_updates_are_visible() {
        use std::sync::Arc;
        let a = Arc::new(AtomicBitmap::zeros(256));
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let a = a.clone();
                std::thread::spawn(move || {
                    for i in 0..64 {
                        a.set(t * 64 + i);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(a.snapshot().count_ones(), 256);
    }
}
