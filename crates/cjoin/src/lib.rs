//! # qs-cjoin — the CJOIN global-query-plan operator
//!
//! Reproduction of CJOIN (Candea, Polyzotis, Vingralek, VLDBJ'11), the
//! proactive-sharing system of the SIGMOD'14 demo: all concurrent star
//! queries are evaluated by **one** shared pipeline — a circular scan of
//! the fact table (preprocessor), a chain of shared hash joins that AND
//! query bitmaps, and a distributor routing joined tuples to the queries
//! whose bit survived.
//!
//! * [`bitmap`] — tuple/query correlation bitmaps (plain + atomic).
//! * [`flat`] — the open-addressing dimension key table the shared joins
//!   probe batch-at-a-time (re-exported from `qs_storage::flat`, its
//!   shared home since group-slot resolution in `qs-engine` adopted it).
//! * [`pipeline`] — the pipeline threads, online query admission, and the
//!   per-query output streams.
//! * [`stats`] — the GQP's book-keeping counters.

pub mod bitmap;
pub mod pipeline;
pub mod shared_agg;
pub mod stats;

pub use bitmap::{AtomicBitmap, Bitmap};
pub use qs_storage::flat;
pub use qs_storage::FlatMap;
pub use pipeline::{CjoinCancel, CjoinError, CjoinPipeline, CjoinQuery, DimSpec, PipelineSpec};
pub use shared_agg::{AggPlan, SharedAggregator};
pub use stats::{CjoinMetrics, CjoinStats};
