//! Flat open-addressing `i64 → u32` table for the dimension probe path.
//!
//! `dim_stage_loop` probes the dimension key map once per surviving tuple
//! per batch — the hottest lookup in the GQP. `std::collections::HashMap`
//! pays SipHash plus a bucket indirection per probe; this table stores
//! `(key, value)` pairs inline in one power-of-two array with linear
//! probing, so the batched probe loop is a multiply-shift hash and a
//! cache-linear scan. Semantics match `HashMap<i64, u32>` for the two
//! operations the pipeline uses (`insert` last-wins, `get`), which the
//! property tests in `crates/cjoin/tests/properties.rs` pin against the
//! `HashMap` oracle.

/// Sentinel marking an empty slot. Values must be below it — dimension
/// entry indices are, by construction (a table with `u32::MAX` rows would
/// not fit in memory).
const EMPTY: u32 = u32::MAX;

/// SplitMix64 finalizer: full-avalanche mix of the key into a table index.
#[inline]
fn mix(key: i64) -> u64 {
    let mut z = (key as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Open-addressing `i64 → u32` map with linear probing.
#[derive(Debug, Clone)]
pub struct FlatMap {
    /// Keys, parallel to `vals`; meaningful only where `vals != EMPTY`.
    keys: Vec<i64>,
    /// Values; `EMPTY` marks a free slot.
    vals: Vec<u32>,
    /// `capacity - 1` (capacity is a power of two).
    mask: usize,
    len: usize,
}

impl FlatMap {
    /// An empty map sized for `n` insertions without growing (load factor
    /// kept under ~0.7).
    pub fn with_capacity(n: usize) -> FlatMap {
        let cap = (n.max(4) * 10 / 7 + 1).next_power_of_two();
        FlatMap {
            keys: vec![0; cap],
            vals: vec![EMPTY; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `key → value`, overwriting an existing entry (last wins,
    /// like `HashMap::insert`). `value` must not be `u32::MAX` (reserved
    /// as the empty-slot sentinel).
    pub fn insert(&mut self, key: i64, value: u32) {
        assert_ne!(value, EMPTY, "u32::MAX is the empty-slot sentinel");
        if (self.len + 1) * 10 > (self.mask + 1) * 7 {
            self.grow();
        }
        let mut i = mix(key) as usize & self.mask;
        loop {
            if self.vals[i] == EMPTY {
                self.keys[i] = key;
                self.vals[i] = value;
                self.len += 1;
                return;
            }
            if self.keys[i] == key {
                self.vals[i] = value;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Look up `key`.
    #[inline]
    pub fn get(&self, key: i64) -> Option<u32> {
        let mut i = mix(key) as usize & self.mask;
        loop {
            let v = self.vals[i];
            if v == EMPTY {
                return None;
            }
            if self.keys[i] == key {
                return Some(v);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![0; (self.mask + 1) * 2]);
        let old_vals =
            std::mem::replace(&mut self.vals, vec![EMPTY; (self.mask + 1) * 2]);
        self.mask = self.keys.len() - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if v != EMPTY {
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m = FlatMap::with_capacity(2);
        assert!(m.is_empty());
        m.insert(7, 1);
        m.insert(-3, 2);
        m.insert(i64::MIN, 3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(7), Some(1));
        assert_eq!(m.get(-3), Some(2));
        assert_eq!(m.get(i64::MIN), Some(3));
        assert_eq!(m.get(8), None);
        m.insert(7, 9); // last wins
        assert_eq!(m.get(7), Some(9));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = FlatMap::with_capacity(1);
        for k in 0..10_000i64 {
            m.insert(k * 31, (k % 1000) as u32);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000i64 {
            assert_eq!(m.get(k * 31), Some((k % 1000) as u32));
        }
        assert_eq!(m.get(-1), None);
    }

    #[test]
    fn colliding_keys_probe_linearly() {
        // Keys engineered to collide in a tiny table still resolve.
        let mut m = FlatMap::with_capacity(4);
        let keys: Vec<i64> = (0..6).map(|i| i * 1_000_003).collect();
        for (i, &k) in keys.iter().enumerate() {
            m.insert(k, i as u32);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.get(k), Some(i as u32), "key {k}");
        }
    }
}
