//! Shared aggregation over bitmap-annotated tuples — the GQP extension
//! the demo's related work points at (DataPath and SharedDB advance
//! global query plans beyond shared joins to shared *aggregations*).
//!
//! The CJOIN distributor materializes a separate output stream per query
//! and every query then aggregates its stream with a query-centric
//! operator: `Q` queries touch each joined tuple `Q` times. A shared
//! aggregation instead consumes the *annotated* tuple stream once,
//! **before** routing: for each tuple it extracts each distinct grouping
//! key once and folds the tuple into the accumulator tables of exactly
//! the queries whose bitmap bit survived the join chain.
//!
//! Sharing structure:
//!
//! * Queries with the same `group_by` columns form a **grouping class**;
//!   the (byte-encoded) group key is computed once per class per tuple,
//!   no matter how many queries share it.
//! * Within a class, each query keeps its own accumulator row (its
//!   aggregates may differ), keyed by the shared group key.
//!
//! The trade-off mirrors the paper's shared-operator rule of thumb: one
//! pass over the joined stream (wins at high query counts) versus
//! per-tuple bitmap iteration and hash-map indirection per query
//! (book-keeping that loses at low counts). The `shared_agg` bench
//! regenerates exactly this crossover.

use crate::bitmap::Bitmap;
use qs_engine::agg::{finalize_acc, make_acc, update_acc, Acc};
use qs_plan::AggSpec;
use qs_storage::{Page, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// The aggregation a single query wants over the joined tuple stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AggPlan {
    /// Group-by columns (indices into the joined schema).
    pub group_by: Vec<usize>,
    /// Aggregate outputs.
    pub aggs: Vec<AggSpec>,
}

/// Per-query accumulator table.
struct QueryState {
    /// Query slot (bitmap bit) this state belongs to.
    slot: u32,
    /// Grouping class index (shared key extraction).
    class: usize,
    aggs: Vec<AggSpec>,
    /// group key bytes → accumulators, insertion-ordered via `order`.
    groups: HashMap<Vec<u8>, Vec<Acc>>,
    order: Vec<Vec<u8>>,
}

/// One distinct `group_by` column set.
struct GroupClass {
    group_by: Vec<usize>,
    /// Queries in this class (indices into `queries`).
    members: Vec<usize>,
    /// Scratch buffer for the current tuple's key.
    key_buf: Vec<u8>,
}

/// Shared aggregation operator: single pass over annotated tuples, one
/// accumulator table per admitted query.
pub struct SharedAggregator {
    in_schema: Arc<Schema>,
    queries: Vec<QueryState>,
    classes: Vec<GroupClass>,
    /// slot → query index (dense map; slots are small integers).
    by_slot: HashMap<u32, usize>,
    tuples_seen: u64,
    updates_applied: u64,
}

impl SharedAggregator {
    /// Create an aggregator over tuples of `in_schema` (the joined row
    /// layout the CJOIN distributor produces).
    pub fn new(in_schema: Arc<Schema>) -> Self {
        SharedAggregator {
            in_schema,
            queries: Vec::new(),
            classes: Vec::new(),
            by_slot: HashMap::new(),
            tuples_seen: 0,
            updates_applied: 0,
        }
    }

    /// Register the aggregation of query `slot`. Queries registering a
    /// `group_by` already seen join that grouping class and share its key
    /// extraction work.
    pub fn register(&mut self, slot: u32, plan: AggPlan) {
        let class = match self
            .classes
            .iter()
            .position(|c| c.group_by == plan.group_by)
        {
            Some(i) => i,
            None => {
                self.classes.push(GroupClass {
                    group_by: plan.group_by.clone(),
                    members: Vec::new(),
                    key_buf: Vec::new(),
                });
                self.classes.len() - 1
            }
        };
        let qidx = self.queries.len();
        self.classes[class].members.push(qidx);
        self.by_slot.insert(slot, qidx);
        self.queries.push(QueryState {
            slot,
            class,
            aggs: plan.aggs,
            groups: HashMap::new(),
            order: Vec::new(),
        });
    }

    /// Number of distinct grouping classes (shared key extractions per
    /// tuple).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Registered query count.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Tuples consumed so far.
    pub fn tuples_seen(&self) -> u64 {
        self.tuples_seen
    }

    /// Accumulator updates applied so far (one per relevant (tuple, query)
    /// pair — the shared operator's book-keeping metric).
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Fold one annotated page: `bitmaps[i]` is the surviving bitmap of
    /// row `i`.
    pub fn push_page(&mut self, page: &Page, bitmaps: &[Bitmap]) {
        debug_assert_eq!(page.rows(), bitmaps.len());
        // Disjoint field borrows: classes hold the shared key scratch,
        // queries hold the accumulator tables.
        let classes = &mut self.classes;
        let queries = &mut self.queries;
        let in_schema = &self.in_schema;
        for (i, row) in page.iter().enumerate() {
            let bm = &bitmaps[i];
            if !bm.any() {
                continue;
            }
            self.tuples_seen += 1;
            // Key extraction once per class that has a relevant member.
            for class in classes.iter_mut() {
                let relevant = class
                    .members
                    .iter()
                    .any(|&q| bm.get(queries[q].slot as usize));
                if !relevant {
                    continue;
                }
                class.key_buf.clear();
                for &g in &class.group_by {
                    class.key_buf.extend_from_slice(row.col_bytes(g));
                }
                let key = &class.key_buf;
                for &q in &class.members {
                    let state = &mut queries[q];
                    if !bm.get(state.slot as usize) {
                        continue;
                    }
                    let entry = match state.groups.get_mut(key.as_slice()) {
                        Some(e) => e,
                        None => {
                            state.order.push(key.clone());
                            let accs: Vec<Acc> = state
                                .aggs
                                .iter()
                                .map(|a| make_acc(&a.func, in_schema))
                                .collect();
                            state.groups.entry(key.clone()).or_insert(accs)
                        }
                    };
                    for (acc, spec) in entry.iter_mut().zip(&state.aggs) {
                        update_acc(acc, &spec.func, &row);
                    }
                    self.updates_applied += 1;
                }
            }
        }
    }

    /// Finish query `slot`: its result rows (group values then aggregate
    /// values, groups in first-seen order). Removing the state frees the
    /// slot for the caller's bookkeeping; unknown slots return `None`.
    pub fn finish(&mut self, slot: u32) -> Option<Vec<Vec<Value>>> {
        let qidx = self.by_slot.remove(&slot)?;
        // Swap out the state; leave a tombstone so indices stay stable.
        let class_idx = self.queries[qidx].class;
        let state = std::mem::replace(
            &mut self.queries[qidx],
            QueryState {
                slot: u32::MAX,
                class: class_idx,
                aggs: Vec::new(),
                groups: HashMap::new(),
                order: Vec::new(),
            },
        );
        let class = &self.classes[state.class];
        let group_by = class.group_by.clone();
        let mut out = Vec::with_capacity(state.order.len().max(1));
        // A scalar aggregate over zero tuples still yields one row.
        if group_by.is_empty() && state.order.is_empty() {
            let accs: Vec<Acc> = state
                .aggs
                .iter()
                .map(|a| make_acc(&a.func, &self.in_schema))
                .collect();
            out.push(accs.iter().map(finalize_acc).collect());
            return Some(out);
        }
        for key in &state.order {
            let accs = &state.groups[key];
            let mut row: Vec<Value> = Vec::with_capacity(group_by.len() + accs.len());
            // Decode the group key bytes back into values.
            let mut off = 0usize;
            for &g in &group_by {
                let w = self.in_schema.dtype(g).width();
                row.push(decode_col(&key[off..off + w], self.in_schema.dtype(g)));
                off += w;
            }
            for acc in accs {
                row.push(finalize_acc(acc));
            }
            out.push(row);
        }
        Some(out)
    }
}

/// Decode one fixed-width column value from its row encoding.
fn decode_col(bytes: &[u8], dtype: qs_storage::DataType) -> Value {
    use qs_storage::DataType;
    match dtype {
        DataType::Int => Value::Int(i64::from_le_bytes(
            bytes.try_into().expect("8-byte Int column"),
        )),
        DataType::Float => Value::Float(f64::from_le_bytes(
            bytes.try_into().expect("8-byte Float column"),
        )),
        DataType::Date => Value::Date(u32::from_le_bytes(
            bytes.try_into().expect("4-byte Date column"),
        )),
        DataType::Char(_) => Value::Str(
            std::str::from_utf8(bytes)
                .unwrap_or("")
                .trim_end_matches(' ')
                .to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_plan::{AggFunc, AggSpec};
    use qs_storage::{DataType, Schema};

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("g", DataType::Int),
            ("v", DataType::Int),
            ("f", DataType::Float),
        ])
    }

    fn page(rows: &[(i64, i64, f64)]) -> Page {
        let vals: Vec<Vec<Value>> = rows
            .iter()
            .map(|&(g, v, f)| vec![Value::Int(g), Value::Int(v), Value::Float(f)])
            .collect();
        Page::from_values(&schema(), &vals).unwrap()
    }

    fn bm(n: usize, bits: &[usize]) -> Bitmap {
        let mut b = Bitmap::zeros(n);
        for &i in bits {
            b.set(i);
        }
        b
    }

    #[test]
    fn single_query_matches_plain_aggregation() {
        let mut agg = SharedAggregator::new(schema());
        agg.register(
            0,
            AggPlan {
                group_by: vec![0],
                aggs: vec![
                    AggSpec::new(AggFunc::Sum(1), "s"),
                    AggSpec::new(AggFunc::Count, "n"),
                ],
            },
        );
        let p = page(&[(1, 10, 0.5), (2, 20, 1.5), (1, 30, 2.5)]);
        let bms: Vec<Bitmap> = (0..3).map(|_| bm(4, &[0])).collect();
        agg.push_page(&p, &bms);
        let rows = agg.finish(0).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Int(40), Value::Int(2)],
                vec![Value::Int(2), Value::Int(20), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn bitmap_routes_tuples_per_query() {
        let mut agg = SharedAggregator::new(schema());
        for slot in [0u32, 1u32] {
            agg.register(
                slot,
                AggPlan {
                    group_by: vec![],
                    aggs: vec![AggSpec::new(AggFunc::Count, "n")],
                },
            );
        }
        let p = page(&[(1, 1, 0.0), (2, 2, 0.0), (3, 3, 0.0)]);
        // Row 0 → both; row 1 → only q0; row 2 → only q1.
        let bms = vec![bm(4, &[0, 1]), bm(4, &[0]), bm(4, &[1])];
        agg.push_page(&p, &bms);
        assert_eq!(agg.finish(0).unwrap(), vec![vec![Value::Int(2)]]);
        assert_eq!(agg.finish(1).unwrap(), vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn grouping_classes_shared() {
        let mut agg = SharedAggregator::new(schema());
        // Three queries, two distinct group_by sets.
        agg.register(
            0,
            AggPlan {
                group_by: vec![0],
                aggs: vec![AggSpec::new(AggFunc::Sum(1), "a")],
            },
        );
        agg.register(
            1,
            AggPlan {
                group_by: vec![0],
                aggs: vec![AggSpec::new(AggFunc::Avg(2), "b")],
            },
        );
        agg.register(
            2,
            AggPlan {
                group_by: vec![0, 1],
                aggs: vec![AggSpec::new(AggFunc::Count, "c")],
            },
        );
        assert_eq!(agg.class_count(), 2);
        assert_eq!(agg.query_count(), 3);
    }

    #[test]
    fn zero_bitmap_rows_skipped() {
        let mut agg = SharedAggregator::new(schema());
        agg.register(
            0,
            AggPlan {
                group_by: vec![],
                aggs: vec![AggSpec::new(AggFunc::Count, "n")],
            },
        );
        let p = page(&[(1, 1, 0.0), (2, 2, 0.0)]);
        let bms = vec![bm(4, &[]), bm(4, &[0])];
        agg.push_page(&p, &bms);
        assert_eq!(agg.tuples_seen(), 1);
        assert_eq!(agg.finish(0).unwrap(), vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn scalar_aggregate_over_no_tuples_yields_zero_row() {
        let mut agg = SharedAggregator::new(schema());
        agg.register(
            0,
            AggPlan {
                group_by: vec![],
                aggs: vec![AggSpec::new(AggFunc::Count, "n")],
            },
        );
        assert_eq!(agg.finish(0).unwrap(), vec![vec![Value::Int(0)]]);
        // Double-finish returns None (slot state consumed).
        assert!(agg.finish(0).is_none());
    }

    #[test]
    fn group_key_decoding_all_types() {
        let s = Schema::from_pairs(&[
            ("i", DataType::Int),
            ("d", DataType::Date),
            ("c", DataType::Char(4)),
        ]);
        let p = Page::from_values(
            &s,
            &[vec![
                Value::Int(-7),
                Value::Date(19971231),
                Value::Str("ab".into()),
            ]],
        )
        .unwrap();
        let mut agg = SharedAggregator::new(s);
        agg.register(
            0,
            AggPlan {
                group_by: vec![0, 1, 2],
                aggs: vec![AggSpec::new(AggFunc::Count, "n")],
            },
        );
        agg.push_page(&p, &[bm(1, &[0])]);
        assert_eq!(
            agg.finish(0).unwrap(),
            vec![vec![
                Value::Int(-7),
                Value::Date(19971231),
                Value::Str("ab".into()),
                Value::Int(1)
            ]]
        );
    }

    #[test]
    fn update_accounting() {
        let mut agg = SharedAggregator::new(schema());
        for slot in 0..3u32 {
            agg.register(
                slot,
                AggPlan {
                    group_by: vec![0],
                    aggs: vec![AggSpec::new(AggFunc::Count, "n")],
                },
            );
        }
        let p = page(&[(1, 1, 0.0)]);
        agg.push_page(&p, &[bm(4, &[0, 2])]);
        assert_eq!(agg.tuples_seen(), 1);
        assert_eq!(agg.updates_applied(), 2);
    }
}
