//! Shared aggregation over bitmap-annotated tuples — the GQP extension
//! the demo's related work points at (DataPath and SharedDB advance
//! global query plans beyond shared joins to shared *aggregations*).
//!
//! The CJOIN distributor materializes a separate output stream per query
//! and every query then aggregates its stream with a query-centric
//! operator: `Q` queries touch each joined tuple `Q` times. A shared
//! aggregation instead consumes the *annotated* tuple stream once,
//! **before** routing, batch-at-a-time:
//!
//! * Queries with the same `group_by` columns form a **grouping class**;
//!   the (byte-encoded) group key is extracted and resolved to a dense
//!   group slot once per class per tuple in a *class-level registry*, no
//!   matter how many queries share the class.
//! * Per batch, each query's relevant tuples are routed by bitmap bit
//!   into `(row, group)` pair lists (grouped classes) or a selection
//!   mask (scalar classes), and every aggregate then folds the whole
//!   batch through a typed kernel (`qs_engine::kernels`) over the
//!   decoded column batch — no per-row `(Acc, AggFunc)` dispatch and no
//!   per-tuple column decode.
//!
//! The trade-off mirrors the paper's shared-operator rule of thumb: one
//! pass over the joined stream (wins at high query counts) versus
//! per-tuple bitmap iteration and routing book-keeping per query. The
//! `shared_agg` bench regenerates exactly this crossover, and the
//! `agg_kernels` bench isolates the kernel layer against the
//! row-at-a-time `update_acc` baseline.

use crate::bitmap::Bitmap;
use qs_engine::group::{GroupTable, ParallelScratch};
use qs_engine::kernels::{update_grouped, update_masked, AccVec, AggKernel};
use qs_engine::WorkerPool;
use qs_plan::AggSpec;
use qs_storage::{mask_words, ColumnBatch, FactBatch, Page, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// The aggregation a single query wants over the joined tuple stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AggPlan {
    /// Group-by columns (indices into the joined schema).
    pub group_by: Vec<usize>,
    /// Aggregate outputs.
    pub aggs: Vec<AggSpec>,
}

/// Per-query accumulator state: typed kernels plus structure-of-arrays
/// accumulators indexed by the *class-level* group slot.
struct QueryState {
    /// Query slot (bitmap bit) this state belongs to.
    slot: u32,
    /// Grouping class index (shared key extraction + group registry).
    class: usize,
    kernels: Vec<AggKernel>,
    accs: Vec<AccVec>,
    /// Class group slots this query touched, in first-touch order (the
    /// output row order, matching the old per-query insertion order).
    touched_order: Vec<u32>,
    touched: Vec<bool>,
    /// Per-batch routing scratch.
    rows_scratch: Vec<u32>,
    groups_scratch: Vec<u32>,
    mask_scratch: Vec<u64>,
}

/// One distinct `group_by` column set, with the group registry every
/// member query shares.
struct GroupClass {
    group_by: Vec<usize>,
    /// Queries in this class (indices into `queries`).
    members: Vec<usize>,
    /// OR of the member query slots: a tuple is relevant to the class iff
    /// its bitmap intersects this mask.
    member_mask: Bitmap,
    /// Group key → dense group slot, shared by all members — the tiered
    /// resolver (`qs_engine::group`): single-`Int` and ≤16-byte keys
    /// probe flat open-addressing tables with zero per-tuple allocation,
    /// arbitrary shapes fall back to the byte-key `HashMap`. Slots stay
    /// first-touch ordered, so member result ordering is unchanged.
    table: GroupTable,
    /// Per-batch scratch: relevant batch rows, the matching page rows
    /// (the resolver's input), and the resolved group slots.
    rel_rows: Vec<u32>,
    rel_pagerows: Vec<u32>,
    rel_groups: Vec<u32>,
    /// Scratch for pooled parallel resolution (see
    /// [`GroupTable::resolve_rows_parallel`]).
    pscratch: ParallelScratch,
}

/// Shared aggregation operator: single batch-at-a-time pass over
/// annotated tuples, one accumulator table per admitted query.
pub struct SharedAggregator {
    in_schema: Arc<Schema>,
    queries: Vec<QueryState>,
    classes: Vec<GroupClass>,
    /// slot → query index (dense map; slots are small integers).
    by_slot: HashMap<u32, usize>,
    /// Sorted union of the columns any registered kernel reads — the set
    /// decoded once per batch.
    agg_cols: Vec<usize>,
    /// Selection scratch: batch rows with any query bit set.
    sel_scratch: Vec<u32>,
    /// Morsel pool for parallel class-level group resolution; `None` =
    /// resolve sequentially (the historical behavior).
    workers: Option<Arc<WorkerPool>>,
    tuples_seen: u64,
    updates_applied: u64,
}

impl SharedAggregator {
    /// Create an aggregator over tuples of `in_schema` (the joined row
    /// layout the CJOIN distributor produces).
    pub fn new(in_schema: Arc<Schema>) -> Self {
        SharedAggregator {
            in_schema,
            queries: Vec::new(),
            classes: Vec::new(),
            by_slot: HashMap::new(),
            agg_cols: Vec::new(),
            sel_scratch: Vec::new(),
            workers: None,
            tuples_seen: 0,
            updates_applied: 0,
        }
    }

    /// [`Self::new`] with a morsel pool: class-level group resolution of
    /// large batches fans out across `workers` (slot numbering — and so
    /// every query's output order — is identical either way).
    pub fn with_workers(in_schema: Arc<Schema>, workers: Arc<WorkerPool>) -> Self {
        let mut agg = SharedAggregator::new(in_schema);
        agg.workers = Some(workers);
        agg
    }

    /// Register the aggregation of query `slot`. Queries registering a
    /// `group_by` already seen join that grouping class and share its key
    /// extraction and group registry.
    pub fn register(&mut self, slot: u32, plan: AggPlan) {
        let class = match self
            .classes
            .iter()
            .position(|c| c.group_by == plan.group_by)
        {
            Some(i) => i,
            None => {
                self.classes.push(GroupClass {
                    table: GroupTable::compile(&plan.group_by, &self.in_schema),
                    group_by: plan.group_by.clone(),
                    members: Vec::new(),
                    member_mask: Bitmap::zeros(64),
                    rel_rows: Vec::new(),
                    rel_pagerows: Vec::new(),
                    rel_groups: Vec::new(),
                    pscratch: ParallelScratch::new(),
                });
                self.classes.len() - 1
            }
        };
        let qidx = self.queries.len();
        let cls = &mut self.classes[class];
        cls.members.push(qidx);
        if slot as usize >= cls.member_mask.word_count() * 64 {
            // Widen the mask to cover the new slot.
            let mut words = cls.member_mask.words().to_vec();
            words.resize(mask_words(slot as usize + 1), 0);
            cls.member_mask = Bitmap::from_words(words);
        }
        cls.member_mask.set(slot as usize);
        self.by_slot.insert(slot, qidx);
        let kernels: Vec<AggKernel> = plan
            .aggs
            .iter()
            .map(|a| AggKernel::compile(&a.func, &self.in_schema))
            .collect();
        let mut accs: Vec<AccVec> = kernels.iter().map(AccVec::for_kernel).collect();
        if plan.group_by.is_empty() {
            // Scalar aggregates fold into group slot 0 from the start.
            for a in &mut accs {
                a.resize(1);
            }
        }
        self.queries.push(QueryState {
            slot,
            class,
            kernels,
            accs,
            touched_order: Vec::new(),
            touched: Vec::new(),
            rows_scratch: Vec::new(),
            groups_scratch: Vec::new(),
            mask_scratch: Vec::new(),
        });
        // Maintain the union of kernel input columns.
        let mut cols = std::mem::take(&mut self.agg_cols);
        for k in &self.queries[qidx].kernels {
            k.input_columns(&mut cols);
        }
        cols.sort_unstable();
        cols.dedup();
        self.agg_cols = cols;
    }

    /// Number of distinct grouping classes (shared key extractions per
    /// tuple).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Registered query count.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Tuples consumed so far.
    pub fn tuples_seen(&self) -> u64 {
        self.tuples_seen
    }

    /// Accumulator updates applied so far (one per relevant (tuple, query)
    /// pair — the shared operator's book-keeping metric).
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Fold one annotated page: `bitmaps[i]` is the surviving bitmap of
    /// row `i`.
    pub fn push_page(&mut self, page: &Page, bitmaps: &[Bitmap]) {
        debug_assert_eq!(page.rows(), bitmaps.len());
        let mut sel = std::mem::take(&mut self.sel_scratch);
        sel.clear();
        let mut bms: Vec<&Bitmap> = Vec::with_capacity(bitmaps.len());
        for (i, bm) in bitmaps.iter().enumerate() {
            if bm.any() {
                sel.push(i as u32);
                bms.push(bm);
            }
        }
        self.fold(page, &sel, &bms);
        self.sel_scratch = sel;
    }

    /// Fold a [`FactBatch`] — the post-predicate batch representation the
    /// CJOIN pipeline carries — without re-deriving the selection.
    pub fn push_batch(&mut self, batch: &FactBatch) {
        let bms: Vec<&Bitmap> = batch.bitmaps().iter().collect();
        self.fold(batch.page(), batch.sel(), &bms);
    }

    /// Batch core: `sel` are the page rows with any query bit set and
    /// `bms[i]` annotates page row `sel[i]`.
    fn fold(&mut self, page: &Page, sel: &[u32], bms: &[&Bitmap]) {
        if sel.is_empty() {
            return;
        }
        self.tuples_seen += sel.len() as u64;
        // Decode the union of kernel input columns once for the whole
        // batch (batch row i = page row sel[i]).
        let batch = ColumnBatch::gather(page, sel, &self.agg_cols);
        // Disjoint field borrows: classes hold the shared registries,
        // queries hold the accumulators.
        let classes = &mut self.classes;
        let queries = &mut self.queries;
        let mut updates = 0u64;
        for class in classes.iter_mut() {
            // Key resolution, once per class per relevant tuple: gather
            // the page rows any member query touches, then resolve them
            // batch-at-a-time to dense slots in the shared registry.
            class.rel_rows.clear();
            class.rel_pagerows.clear();
            for (bi, bm) in bms.iter().enumerate() {
                if !bm.intersects(&class.member_mask) {
                    continue;
                }
                class.rel_rows.push(bi as u32);
                class.rel_pagerows.push(sel[bi]);
            }
            if class.rel_rows.is_empty() {
                continue;
            }
            // Pooled parallel resolution when a pool is attached; a pool
            // failure (injected fault / contained task panic) leaves the
            // registry untouched, so falling back to the sequential
            // resolver yields the same slots the clean run would have.
            let resolved = self.workers.as_ref().is_some_and(|pool| {
                class
                    .table
                    .resolve_rows_parallel(
                        page,
                        &class.rel_pagerows,
                        pool,
                        &mut class.pscratch,
                        &mut class.rel_groups,
                    )
                    .is_ok()
            });
            if !resolved {
                class
                    .table
                    .resolve_rows(page, &class.rel_pagerows, &mut class.rel_groups);
            }
            let ngroups = class.table.len();
            let scalar = class.group_by.is_empty();
            for &q in &class.members {
                let state = &mut queries[q];
                if scalar {
                    // Route into a selection mask over batch rows, then
                    // fold each aggregate through its masked kernel.
                    state.mask_scratch.clear();
                    state.mask_scratch.resize(mask_words(batch.rows()), 0);
                    let mut routed = 0u64;
                    for &bi in &class.rel_rows {
                        if bms[bi as usize].get(state.slot as usize) {
                            state.mask_scratch[bi as usize / 64] |= 1u64 << (bi % 64);
                            routed += 1;
                        }
                    }
                    if routed == 0 {
                        continue;
                    }
                    updates += routed;
                    for (kernel, acc) in state.kernels.iter().zip(&mut state.accs) {
                        update_masked(kernel, acc, &batch, &state.mask_scratch);
                    }
                } else {
                    // Route into (row, group) pair lists, then fold each
                    // aggregate through its grouped kernel.
                    state.rows_scratch.clear();
                    state.groups_scratch.clear();
                    if state.touched.len() < ngroups {
                        state.touched.resize(ngroups, false);
                    }
                    for (&bi, &g) in class.rel_rows.iter().zip(&class.rel_groups) {
                        if !bms[bi as usize].get(state.slot as usize) {
                            continue;
                        }
                        state.rows_scratch.push(bi);
                        state.groups_scratch.push(g);
                        if !state.touched[g as usize] {
                            state.touched[g as usize] = true;
                            state.touched_order.push(g);
                        }
                    }
                    if state.rows_scratch.is_empty() {
                        continue;
                    }
                    updates += state.rows_scratch.len() as u64;
                    for (kernel, acc) in state.kernels.iter().zip(&mut state.accs) {
                        acc.resize(ngroups);
                        update_grouped(
                            kernel,
                            acc,
                            &batch,
                            &state.rows_scratch,
                            &state.groups_scratch,
                        );
                    }
                }
            }
        }
        self.updates_applied += updates;
    }

    /// Finish query `slot`: its result rows (group values then aggregate
    /// values, groups in first-seen order). Removing the state frees the
    /// slot for the caller's bookkeeping; unknown slots return `None`.
    pub fn finish(&mut self, slot: u32) -> Option<Vec<Vec<Value>>> {
        let qidx = self.by_slot.remove(&slot)?;
        // Swap out the state; leave a tombstone so indices stay stable.
        let class_idx = self.queries[qidx].class;
        // Retire the query from its class: later pushes must neither
        // route tuples to the tombstone nor consider the slot relevant
        // (the slot number may be reused by a future admission).
        let cls = &mut self.classes[class_idx];
        cls.members.retain(|&q| q != qidx);
        cls.member_mask.clear(slot as usize);
        // Shrink the per-batch decode set back to the live queries'
        // kernels, so long-lived aggregators never keep decoding columns
        // only finished queries read.
        let mut cols = std::mem::take(&mut self.agg_cols);
        cols.clear();
        for &q in self.by_slot.values() {
            for k in &self.queries[q].kernels {
                k.input_columns(&mut cols);
            }
        }
        cols.sort_unstable();
        cols.dedup();
        self.agg_cols = cols;
        let state = std::mem::replace(
            &mut self.queries[qidx],
            QueryState {
                slot: u32::MAX,
                class: class_idx,
                kernels: Vec::new(),
                accs: Vec::new(),
                touched_order: Vec::new(),
                touched: Vec::new(),
                rows_scratch: Vec::new(),
                groups_scratch: Vec::new(),
                mask_scratch: Vec::new(),
            },
        );
        let class = &self.classes[state.class];
        // A scalar aggregate always yields exactly one row, even over
        // zero tuples (the accumulators were sized at registration).
        if class.group_by.is_empty() {
            return Some(vec![state.accs.iter().map(|a| a.finalize(0)).collect()]);
        }
        let mut out = Vec::with_capacity(state.touched_order.len());
        for &g in &state.touched_order {
            let key = class.table.key_bytes(g as usize);
            let mut row: Vec<Value> =
                Vec::with_capacity(class.group_by.len() + state.accs.len());
            // Decode the group key bytes back into values.
            let mut off = 0usize;
            for &gc in &class.group_by {
                let w = self.in_schema.dtype(gc).width();
                row.push(decode_col(&key[off..off + w], self.in_schema.dtype(gc)));
                off += w;
            }
            for acc in &state.accs {
                row.push(acc.finalize(g as usize));
            }
            out.push(row);
        }
        Some(out)
    }
}

/// Decode one fixed-width column value from its row encoding.
fn decode_col(bytes: &[u8], dtype: qs_storage::DataType) -> Value {
    use qs_storage::DataType;
    match dtype {
        DataType::Int => Value::Int(i64::from_le_bytes(
            bytes.try_into().expect("8-byte Int column"),
        )),
        DataType::Float => Value::Float(f64::from_le_bytes(
            bytes.try_into().expect("8-byte Float column"),
        )),
        DataType::Date => Value::Date(u32::from_le_bytes(
            bytes.try_into().expect("4-byte Date column"),
        )),
        DataType::Char(_) => Value::Str(
            std::str::from_utf8(bytes)
                .unwrap_or("")
                .trim_end_matches(' ')
                .to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_plan::{AggFunc, AggSpec};
    use qs_storage::{DataType, Schema};

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("g", DataType::Int),
            ("v", DataType::Int),
            ("f", DataType::Float),
        ])
    }

    fn page(rows: &[(i64, i64, f64)]) -> Page {
        let vals: Vec<Vec<Value>> = rows
            .iter()
            .map(|&(g, v, f)| vec![Value::Int(g), Value::Int(v), Value::Float(f)])
            .collect();
        Page::from_values(&schema(), &vals).unwrap()
    }

    fn bm(n: usize, bits: &[usize]) -> Bitmap {
        let mut b = Bitmap::zeros(n);
        for &i in bits {
            b.set(i);
        }
        b
    }

    #[test]
    fn single_query_matches_plain_aggregation() {
        let mut agg = SharedAggregator::new(schema());
        agg.register(
            0,
            AggPlan {
                group_by: vec![0],
                aggs: vec![
                    AggSpec::new(AggFunc::Sum(1), "s"),
                    AggSpec::new(AggFunc::Count, "n"),
                ],
            },
        );
        let p = page(&[(1, 10, 0.5), (2, 20, 1.5), (1, 30, 2.5)]);
        let bms: Vec<Bitmap> = (0..3).map(|_| bm(4, &[0])).collect();
        agg.push_page(&p, &bms);
        let rows = agg.finish(0).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Int(40), Value::Int(2)],
                vec![Value::Int(2), Value::Int(20), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn bitmap_routes_tuples_per_query() {
        let mut agg = SharedAggregator::new(schema());
        for slot in [0u32, 1u32] {
            agg.register(
                slot,
                AggPlan {
                    group_by: vec![],
                    aggs: vec![AggSpec::new(AggFunc::Count, "n")],
                },
            );
        }
        let p = page(&[(1, 1, 0.0), (2, 2, 0.0), (3, 3, 0.0)]);
        // Row 0 → both; row 1 → only q0; row 2 → only q1.
        let bms = vec![bm(4, &[0, 1]), bm(4, &[0]), bm(4, &[1])];
        agg.push_page(&p, &bms);
        assert_eq!(agg.finish(0).unwrap(), vec![vec![Value::Int(2)]]);
        assert_eq!(agg.finish(1).unwrap(), vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn grouping_classes_shared() {
        let mut agg = SharedAggregator::new(schema());
        // Three queries, two distinct group_by sets.
        agg.register(
            0,
            AggPlan {
                group_by: vec![0],
                aggs: vec![AggSpec::new(AggFunc::Sum(1), "a")],
            },
        );
        agg.register(
            1,
            AggPlan {
                group_by: vec![0],
                aggs: vec![AggSpec::new(AggFunc::Avg(2), "b")],
            },
        );
        agg.register(
            2,
            AggPlan {
                group_by: vec![0, 1],
                aggs: vec![AggSpec::new(AggFunc::Count, "c")],
            },
        );
        assert_eq!(agg.class_count(), 2);
        assert_eq!(agg.query_count(), 3);
    }

    #[test]
    fn zero_bitmap_rows_skipped() {
        let mut agg = SharedAggregator::new(schema());
        agg.register(
            0,
            AggPlan {
                group_by: vec![],
                aggs: vec![AggSpec::new(AggFunc::Count, "n")],
            },
        );
        let p = page(&[(1, 1, 0.0), (2, 2, 0.0)]);
        let bms = vec![bm(4, &[]), bm(4, &[0])];
        agg.push_page(&p, &bms);
        assert_eq!(agg.tuples_seen(), 1);
        assert_eq!(agg.finish(0).unwrap(), vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn scalar_aggregate_over_no_tuples_yields_zero_row() {
        let mut agg = SharedAggregator::new(schema());
        agg.register(
            0,
            AggPlan {
                group_by: vec![],
                aggs: vec![AggSpec::new(AggFunc::Count, "n")],
            },
        );
        assert_eq!(agg.finish(0).unwrap(), vec![vec![Value::Int(0)]]);
        // Double-finish returns None (slot state consumed).
        assert!(agg.finish(0).is_none());
    }

    #[test]
    fn group_key_decoding_all_types() {
        let s = Schema::from_pairs(&[
            ("i", DataType::Int),
            ("d", DataType::Date),
            ("c", DataType::Char(4)),
        ]);
        let p = Page::from_values(
            &s,
            &[vec![
                Value::Int(-7),
                Value::Date(19971231),
                Value::Str("ab".into()),
            ]],
        )
        .unwrap();
        let mut agg = SharedAggregator::new(s);
        agg.register(
            0,
            AggPlan {
                group_by: vec![0, 1, 2],
                aggs: vec![AggSpec::new(AggFunc::Count, "n")],
            },
        );
        agg.push_page(&p, &[bm(1, &[0])]);
        assert_eq!(
            agg.finish(0).unwrap(),
            vec![vec![
                Value::Int(-7),
                Value::Date(19971231),
                Value::Str("ab".into()),
                Value::Int(1)
            ]]
        );
    }

    #[test]
    fn update_accounting() {
        let mut agg = SharedAggregator::new(schema());
        for slot in 0..3u32 {
            agg.register(
                slot,
                AggPlan {
                    group_by: vec![0],
                    aggs: vec![AggSpec::new(AggFunc::Count, "n")],
                },
            );
        }
        let p = page(&[(1, 1, 0.0)]);
        agg.push_page(&p, &[bm(4, &[0, 2])]);
        assert_eq!(agg.tuples_seen(), 1);
        assert_eq!(agg.updates_applied(), 2);
    }

    #[test]
    fn push_batch_matches_push_page() {
        use std::sync::Arc as StdArc;
        let p = StdArc::new(page(&[(1, 10, 0.5), (2, 20, 1.5), (1, 30, 2.5), (2, 5, 0.0)]));
        let bitmaps = vec![bm(4, &[0]), bm(4, &[]), bm(4, &[0, 1]), bm(4, &[1])];
        let plan = || AggPlan {
            group_by: vec![0],
            aggs: vec![
                AggSpec::new(AggFunc::Sum(1), "s"),
                AggSpec::new(AggFunc::Max(2), "m"),
            ],
        };
        let mut via_page = SharedAggregator::new(schema());
        via_page.register(0, plan());
        via_page.register(1, plan());
        via_page.push_page(&p, &bitmaps);

        // The FactBatch form pre-drops dead tuples (as the pipeline does).
        let sel: Vec<u32> = vec![0, 2, 3];
        let bms: Vec<Bitmap> = sel.iter().map(|&i| bitmaps[i as usize].clone()).collect();
        let fact = FactBatch::new(p.clone(), sel, bms);
        let mut via_batch = SharedAggregator::new(schema());
        via_batch.register(0, plan());
        via_batch.register(1, plan());
        via_batch.push_batch(&fact);

        for slot in [0u32, 1] {
            assert_eq!(via_page.finish(slot), via_batch.finish(slot), "slot {slot}");
        }
    }

    #[test]
    fn push_after_finish_leaves_remaining_queries_correct() {
        let mut agg = SharedAggregator::new(schema());
        let plan = || AggPlan {
            group_by: vec![0],
            aggs: vec![AggSpec::new(AggFunc::Count, "n")],
        };
        agg.register(0, plan());
        agg.register(1, plan());
        let p = page(&[(1, 1, 0.0)]);
        agg.push_page(&p, &[bm(4, &[0, 1])]);
        assert_eq!(
            agg.finish(0).unwrap(),
            vec![vec![Value::Int(1), Value::Int(1)]]
        );
        // Tuples still carrying the finished slot's bit must not reach
        // its retired state; the surviving query keeps accumulating.
        agg.push_page(&p, &[bm(4, &[0, 1])]);
        agg.push_page(&p, &[bm(4, &[1])]);
        assert_eq!(
            agg.finish(1).unwrap(),
            vec![vec![Value::Int(1), Value::Int(3)]]
        );
    }

    #[test]
    fn high_slot_queries_route_correctly() {
        // Slots beyond the initial 64-bit member mask must widen it.
        let mut agg = SharedAggregator::new(schema());
        agg.register(
            70,
            AggPlan {
                group_by: vec![0],
                aggs: vec![AggSpec::new(AggFunc::Count, "n")],
            },
        );
        let p = page(&[(5, 1, 0.0), (5, 2, 0.0), (6, 3, 0.0)]);
        // Row 1 carries only an unregistered query's bit: it must not
        // reach slot 70's accumulators.
        let bms = vec![bm(128, &[70]), bm(128, &[3]), bm(128, &[70, 3])];
        agg.push_page(&p, &bms);
        assert_eq!(
            agg.finish(70).unwrap(),
            vec![
                vec![Value::Int(5), Value::Int(1)],
                vec![Value::Int(6), Value::Int(1)]
            ]
        );
    }
}
