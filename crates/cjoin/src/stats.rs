//! CJOIN pipeline counters (the GQP's book-keeping, made visible).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters of one pipeline.
#[derive(Debug, Default)]
pub struct CjoinMetrics {
    /// Queries admitted since creation.
    pub admissions: AtomicU64,
    /// Queries completed (full fact revolution delivered).
    pub completions: AtomicU64,
    /// Fact pages flowed through the preprocessor.
    pub fact_pages: AtomicU64,
    /// Fact tuples entering the pipeline with a non-zero bitmap.
    pub tuples_in: AtomicU64,
    /// Tuples dropped by shared joins (bitmap went to zero).
    pub tuples_dropped: AtomicU64,
    /// (tuple, query) output pairs materialized by the distributor.
    pub rows_out: AtomicU64,
    /// Dimension-entry predicate evaluations performed by admissions.
    pub admission_evals: AtomicU64,
    /// Admissions whose dimension predicate was copied from an active
    /// query with the identical predicate (predicate sharing).
    pub admission_dedup_hits: AtomicU64,
    /// Queries whose output was aborted by a contained fault (predicate
    /// panic, unreadable fact page, early removal after a stage fault)
    /// while the pipeline and its co-runners kept going.
    pub aborts: AtomicU64,
}

impl CjoinMetrics {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> CjoinStats {
        CjoinStats {
            admissions: self.admissions.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            fact_pages: self.fact_pages.load(Ordering::Relaxed),
            tuples_in: self.tuples_in.load(Ordering::Relaxed),
            tuples_dropped: self.tuples_dropped.load(Ordering::Relaxed),
            rows_out: self.rows_out.load(Ordering::Relaxed),
            admission_evals: self.admission_evals.load(Ordering::Relaxed),
            admission_dedup_hits: self.admission_dedup_hits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
        }
    }

    /// Reset the counters.
    pub fn reset(&self) {
        self.admissions.store(0, Ordering::Relaxed);
        self.completions.store(0, Ordering::Relaxed);
        self.fact_pages.store(0, Ordering::Relaxed);
        self.tuples_in.store(0, Ordering::Relaxed);
        self.tuples_dropped.store(0, Ordering::Relaxed);
        self.rows_out.store(0, Ordering::Relaxed);
        self.admission_evals.store(0, Ordering::Relaxed);
        self.admission_dedup_hits.store(0, Ordering::Relaxed);
        self.aborts.store(0, Ordering::Relaxed);
    }
}

/// Immutable snapshot of [`CjoinMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CjoinStats {
    /// Queries admitted.
    pub admissions: u64,
    /// Queries completed.
    pub completions: u64,
    /// Fact pages processed.
    pub fact_pages: u64,
    /// Tuples entering with non-zero bitmaps.
    pub tuples_in: u64,
    /// Tuples dropped mid-pipeline.
    pub tuples_dropped: u64,
    /// Output rows materialized.
    pub rows_out: u64,
    /// Admission predicate evaluations.
    pub admission_evals: u64,
    /// Admission predicate-sharing hits.
    pub admission_dedup_hits: u64,
    /// Query outputs aborted by contained faults.
    pub aborts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let m = CjoinMetrics::default();
        m.admissions.fetch_add(2, Ordering::Relaxed);
        m.rows_out.fetch_add(100, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.admissions, 2);
        assert_eq!(s.rows_out, 100);
        m.reset();
        assert_eq!(m.snapshot(), CjoinStats::default());
    }
}
