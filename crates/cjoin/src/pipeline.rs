//! The CJOIN pipeline: preprocessor → shared hash-joins → distributor.
//!
//! CJOIN (Candea, Polyzotis, Vingralek, VLDBJ'11) evaluates *all*
//! concurrent star queries with one always-on global query plan shaped as
//! a chain:
//!
//! ```text
//!            ┌────────┐   ┌──────┐        ┌──────┐   ┌─────────────┐
//!  admit ──▶ │ preproc │──▶│ ⋈ D1 │──...──▶│ ⋈ Dk │──▶│ distributor │──▶ per-query
//!            │ (circular│  └──────┘        └──────┘   └─────────────┘    outputs
//!            │ fact scan)│  shared hash-joins (bitmap AND)
//!            └────────┘
//! ```
//!
//! * The **preprocessor** runs a circular scan of the fact table,
//!   page-at-a-time: the columns referenced by any active query are
//!   decoded once per page into a column batch, every active query's
//!   *compiled* fact predicate ([`CompiledPred`]) runs column-wise into a
//!   per-query selection mask, and the masks are transposed into the
//!   per-row query bitmaps the joins consume. A query is complete after
//!   one full revolution from its admission point.
//! * Each **shared hash-join** holds the dimension's hash table, with a
//!   per-entry bitmap maintained online by admissions (bit q = the entry
//!   satisfies query q's dimension predicate) and a per-stage *bypass
//!   mask* (bit q = query q does not join this dimension). The join step
//!   is `tuple_bm &= entry_bm | bypass`; tuples whose bitmap reaches zero
//!   are dropped.
//! * The **distributor** materializes, for every surviving tuple and every
//!   set bit, the query's joined row (fact columns, then its dimensions in
//!   the query's join order) and streams pages into the query's output
//!   hub ([`qs_engine::OutputHub`], pull mode — so SP can share CJOIN
//!   outputs, the paper's Figure 2).
//!
//! Admission/termination control flows through the same channels as data
//! (`Msg::Admitted` / `Msg::QueryDone`), so ordering guarantees are free:
//! a query's output hub is installed downstream before its first tuple,
//! and finished after its last.

use crate::bitmap::{AtomicBitmap, Bitmap};
use crate::flat::FlatMap;
use crate::stats::{CjoinMetrics, CjoinStats};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use qs_engine::{BatchSource, ExecCtx, OutputHub, ShareMode, StageKind};
use qs_plan::compiled::{iter_ones, mask_words};
use qs_plan::{CompiledPred, Expr, PredScratch, StarQuery};
use qs_storage::{Catalog, ColumnBatch, FactBatch, Page, PageBuilder, Schema, Table};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Joins the pipeline's stage threads when dropped. Declared *first* in
/// [`CjoinPipeline::new`] so that on an early error return every channel
/// sender (declared later, dropped sooner) is gone before the join —
/// each stage loop then observes a closed channel and exits.
struct JoinOnDrop(Vec<std::thread::JoinHandle<()>>);

impl Drop for JoinOnDrop {
    fn drop(&mut self) {
        for h in self.0.drain(..) {
            let _ = h.join();
        }
    }
}

/// Spawn one stage thread, propagating spawn failure as a typed error
/// instead of panicking mid-construction (satellite of the fault-model
/// work: a resource-exhausted host degrades to a clean `Err`).
fn spawn_stage(
    threads: &mut JoinOnDrop,
    name: String,
    f: impl FnOnce() + Send + 'static,
) -> Result<(), CjoinError> {
    let h = std::thread::Builder::new()
        .name(name.clone())
        .spawn(f)
        .map_err(|e| CjoinError::Spawn(format!("{name}: {e}")))?;
    threads.0.push(h);
    Ok(())
}

/// Top-level panic belt for a stage thread: runs the loop body, and if it
/// unwinds, records the containment and lets the thread exit. The channel
/// cascade then tears the chain down to the distributors, whose drain
/// path aborts every open query hub — co-runners degrade to failed
/// tickets, never to a dead process or a hung reader.
fn contain_stage_panic(metrics: &Arc<qs_engine::Metrics>, stage: &str, f: impl FnOnce()) {
    if catch_unwind(AssertUnwindSafe(f)).is_err() {
        metrics.panics_contained.fetch_add(1, Ordering::Relaxed);
        eprintln!("cjoin: contained panic in {stage} stage; pipeline shutting down");
    }
}

/// Errors surfaced by the CJOIN operator.
#[derive(Debug, Clone, PartialEq)]
pub enum CjoinError {
    /// The star query does not fit this pipeline (wrong fact table or an
    /// unknown (dim, key) pair).
    Incompatible(String),
    /// All query slots are in use.
    Saturated,
    /// Storage failure during construction.
    Storage(qs_storage::StorageError),
    /// A stage thread could not be spawned at construction.
    Spawn(String),
    /// The pipeline's stage chain has terminated (shutdown, or a stage
    /// thread died); no further admissions are possible.
    Down,
    /// Admission-time work for this query failed (e.g. its dimension
    /// predicate panicked while scanning the hash table). The pipeline
    /// and its co-running queries are unaffected.
    Admission(String),
}

impl fmt::Display for CjoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CjoinError::Incompatible(msg) => write!(f, "incompatible star query: {msg}"),
            CjoinError::Saturated => write!(f, "pipeline saturated: no free query slots"),
            CjoinError::Storage(e) => write!(f, "storage: {e}"),
            CjoinError::Spawn(msg) => write!(f, "could not spawn stage thread: {msg}"),
            CjoinError::Down => write!(f, "cjoin pipeline is down"),
            CjoinError::Admission(msg) => write!(f, "admission failed: {msg}"),
        }
    }
}

impl std::error::Error for CjoinError {}

impl From<qs_storage::StorageError> for CjoinError {
    fn from(e: qs_storage::StorageError) -> Self {
        CjoinError::Storage(e)
    }
}

/// One dimension position of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimSpec {
    /// Dimension table name.
    pub table: String,
    /// Fact foreign-key column probing this dimension.
    pub fact_key: usize,
    /// Dimension key column.
    pub dim_key: usize,
}

/// Pipeline construction parameters.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Fact table name.
    pub fact_table: String,
    /// Dimension chain, in pipeline order.
    pub dims: Vec<DimSpec>,
    /// Maximum concurrently admitted queries (bitmap width).
    pub max_queries: usize,
    /// Channel depth between pipeline stages, in batches.
    pub channel_depth: usize,
    /// Byte budget of distributor output pages.
    pub out_page_bytes: usize,
    /// Distributor shards: queries are partitioned by slot across this
    /// many distributor threads, parallelizing the per-(tuple × query)
    /// materialization work the way the CJOIN prototype parallelizes its
    /// pipeline.
    ///
    /// (Preprocessor parallelism — vectorized fact-predicate evaluation
    /// chunked across workers per page — now rides the engine's shared
    /// morsel pool, `ExecCtx::workers`, instead of dedicated helper
    /// threads.)
    pub dist_shards: usize,
}

impl PipelineSpec {
    /// Spec with defaults for `max_queries`/`channel_depth`/page size.
    pub fn new(fact_table: impl Into<String>, dims: Vec<DimSpec>) -> Self {
        PipelineSpec {
            fact_table: fact_table.into(),
            dims,
            max_queries: 64,
            channel_depth: 4,
            out_page_bytes: qs_storage::DEFAULT_PAGE_BYTES,
            dist_shards: 4,
        }
    }
}

struct DimEntry {
    row: Box<[u8]>,
    bitmap: AtomicBitmap,
}

struct DimData {
    spec: DimSpec,
    schema: Arc<Schema>,
    entries: Vec<DimEntry>,
    /// Open-addressing key → entry-index table: the batched probe loop in
    /// [`dim_stage_loop`] is a mix-hash plus a cache-linear scan per key.
    by_key: FlatMap,
    bypass: AtomicBitmap,
}

/// Installed per query at the distributor.
struct QueryOutput {
    hub: Arc<OutputHub>,
    builder: PageBuilder,
    /// Pipeline dim indices in the query's join order.
    dim_order: Vec<u32>,
    out_schema: Arc<Schema>,
}

struct Batch {
    /// The surviving tuples of one fact page: selection + per-tuple query
    /// bitmaps over the shared page, the system-wide post-predicate
    /// currency. The fan-out stage materializes the surviving rows' bytes
    /// once before the distributor shards fan them out per query.
    fact: FactBatch,
    /// `dim_hits[d][i]`: matched entry index at pipeline dim `d` for tuple
    /// `i` (`u32::MAX` = no match, survived via bypass). Filled stage by
    /// stage.
    dim_hits: Vec<Vec<u32>>,
}

enum Msg {
    Batch(Batch),
    Admitted(u32, Box<QueryOutput>),
    QueryDone(u32),
    /// The query at this slot hit a contained fault (predicate panic,
    /// failed fact-page read): stop feeding it and abort — not finish —
    /// its output stream so the client sees a typed error, while every
    /// co-running query continues undisturbed.
    QueryAborted(u32, String),
    /// Mid-chain abort (a dim or fan-out stage lost a batch): abort the
    /// query's output stream, but do NOT release its slot — unlike the
    /// terminal `QueryDone`/`QueryAborted`, which the preprocessor still
    /// owes for this slot and which performs the (single) release. The
    /// faulting stage also requests early removal via `Ctl::Remove`, so
    /// that terminal message arrives promptly.
    StreamAborted(u32, String),
}

/// Messages delivered to distributor shards: batches are broadcast
/// (shared), control messages are routed to the owning shard.
enum DistMsg {
    Batch(Arc<Batch>),
    Admitted(u32, Box<QueryOutput>),
    QueryDone(u32),
    QueryAborted(u32, String),
    /// Mid-chain abort: closes the output stream, never frees the slot.
    StreamAborted(u32, String),
}

enum Ctl {
    Admit {
        slot: u32,
        /// Admission generation (see [`ActiveQuery::gen`]).
        gen: u64,
        /// Fact predicate, compiled once at admission; shared by every
        /// page-of-rows snapshot for the query's whole revolution.
        fact_pred: Option<Arc<CompiledPred>>,
        output: Box<QueryOutput>,
    },
    /// Early removal (cancellation): stop feeding the query and finish its
    /// output at the next page boundary. `gen: Some(g)` removes the
    /// occupant only if it is still admission `g` — a cancel arriving
    /// after natural completion must not kill a successor that reused the
    /// slot. `gen: None` (mid-chain fault paths, whose abort already went
    /// to the stream actively receiving batches) removes whatever is
    /// active in the slot.
    Remove { slot: u32, gen: Option<u64> },
    Shutdown,
}

/// Cancels an admitted query early (before its revolution completes).
/// Cheap to clone and `Send`; cancelling an already-finished query is a
/// no-op.
#[derive(Clone)]
pub struct CjoinCancel {
    ctl_tx: Sender<Ctl>,
    slot: u32,
    gen: u64,
}

impl CjoinCancel {
    /// Request removal. The query's output stream ends (cleanly) at the
    /// next fact-page boundary instead of after the full revolution. The
    /// removal is generation-checked: if this admission already completed
    /// and the slot was reused, the cancel is a no-op rather than a kill
    /// of the slot's new occupant.
    pub fn cancel(&self) {
        let _ = self.ctl_tx.send(Ctl::Remove {
            slot: self.slot,
            gen: Some(self.gen),
        });
    }
}

/// Handle returned by [`CjoinPipeline::admit`].
pub struct CjoinQuery {
    /// Stream of joined pages for this query (fact cols ++ dim cols in the
    /// query's join order). Ends after one full fact revolution.
    pub reader: Box<dyn BatchSource>,
    /// The output hub (pull mode) — `qs-core` registers it for SP so a
    /// second identical CJOIN sub-plan can subscribe instead of being
    /// admitted.
    pub hub: Arc<OutputHub>,
    /// Schema of the joined rows.
    pub schema: Arc<Schema>,
    /// The slot (bitmap bit) this query occupies until completion.
    pub slot: u32,
    /// Early-cancellation handle (paper Fig. 1a's "cancel" arrow, applied
    /// to the CJOIN stage).
    pub cancel: CjoinCancel,
}

/// Per-dimension cache of the predicates of *active* queries, used to
/// de-duplicate admission work: when a new query brings a predicate
/// identical to one already evaluated for an active query on the same
/// dimension, its bits are copied from that query's instead of
/// re-evaluating the predicate over every entry (the CJOIN prototype's
/// predicate-sharing optimization).
type PredCache = Mutex<Vec<HashMap<u64, (Option<Expr>, u32)>>>;

/// The always-on CJOIN operator.
pub struct CjoinPipeline {
    fact: Arc<Table>,
    fact_schema: Arc<Schema>,
    dims: Arc<Vec<DimData>>,
    ctl_tx: Sender<Ctl>,
    free_slots: Arc<Mutex<Vec<u32>>>,
    /// Monotonic admission counter (see [`ActiveQuery::gen`]).
    admit_gen: std::sync::atomic::AtomicU64,
    pred_cache: Arc<PredCache>,
    max_queries: usize,
    out_page_bytes: usize,
    ctx: Arc<ExecCtx>,
    metrics: Arc<CjoinMetrics>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

fn pred_key(pred: &Option<Expr>) -> u64 {
    match pred {
        None => 0x716a_f00d_0000_0001, // sentinel for "no predicate"
        Some(e) => qs_plan::signature::expr_signature(e),
    }
}

impl CjoinPipeline {
    /// Build the pipeline: loads every dimension hash table and starts the
    /// stage threads. The pipeline idles until the first admission.
    pub fn new(
        ctx: Arc<ExecCtx>,
        catalog: &Catalog,
        spec: &PipelineSpec,
    ) -> Result<Self, CjoinError> {
        let fact = catalog.get(&spec.fact_table)?;
        let fact_schema = fact.schema().clone();
        for d in &spec.dims {
            if d.fact_key >= fact_schema.len() {
                return Err(CjoinError::Incompatible(format!(
                    "fact key {} out of range for `{}`",
                    d.fact_key, spec.fact_table
                )));
            }
        }

        // Build dimension hash tables (reading through the buffer pool:
        // this is real, accounted I/O, like CJOIN's startup).
        let mut dims = Vec::with_capacity(spec.dims.len());
        for d in &spec.dims {
            let table = catalog.get(&d.table)?;
            let schema = table.schema().clone();
            if d.dim_key >= schema.len() {
                return Err(CjoinError::Incompatible(format!(
                    "dim key {} out of range for `{}`",
                    d.dim_key, d.table
                )));
            }
            let mut entries = Vec::with_capacity(table.row_count());
            let mut by_key = FlatMap::with_capacity(table.row_count());
            let mut cursor = qs_storage::CircularCursor::from_position(table.clone(), 0);
            let key_off = schema.offset(d.dim_key);
            let mut encrow = Vec::with_capacity(schema.row_size());
            while let Some(page) = cursor.next_page(&ctx.pool)? {
                // Rows are kept as encoded bytes (the join output slices
                // them), so columnar pages re-encode through a scratch —
                // same copy either way.
                for r in 0..page.rows() {
                    encrow.clear();
                    page.encode_row_into(r, &mut encrow);
                    let idx = entries.len() as u32;
                    by_key.insert(qs_storage::row::read_i64_at(&encrow, key_off), idx);
                    entries.push(DimEntry {
                        row: encrow.clone().into_boxed_slice(),
                        bitmap: AtomicBitmap::zeros(spec.max_queries),
                    });
                }
            }
            dims.push(DimData {
                spec: d.clone(),
                schema,
                entries,
                by_key,
                bypass: AtomicBitmap::zeros(spec.max_queries),
            });
        }
        let dims = Arc::new(dims);
        let metrics = Arc::new(CjoinMetrics::default());

        // Stage threads are joined by this guard if construction errors
        // out below; declared before every channel sender so the senders
        // drop first and the loops observe closed channels.
        let mut threads = JoinOnDrop(Vec::new());

        // Wire the chain: preproc -> dim[0] -> ... -> dim[k-1] -> dist.
        let (ctl_tx, ctl_rx) = bounded::<Ctl>(spec.max_queries.max(16));
        let (head_tx, mut prev_rx) = bounded::<Msg>(spec.channel_depth.max(1));

        // Preprocessor thread. Per-page fact-predicate evaluation fans
        // out across the engine's shared morsel pool (`ctx.workers`).
        {
            let fact = fact.clone();
            let ctx = ctx.clone();
            let metrics = metrics.clone();
            let max_queries = spec.max_queries;
            spawn_stage(&mut threads, "cjoin-preproc".into(), move || {
                let m = ctx.metrics.clone();
                contain_stage_panic(&m, "preprocessor", move || {
                    preprocessor_loop(fact, ctx, metrics, max_queries, ctl_rx, head_tx)
                });
            })?;
        }

        // One thread per shared hash-join.
        for dim_idx in 0..dims.len() {
            let (tx, rx) = bounded::<Msg>(spec.channel_depth.max(1));
            let dims = dims.clone();
            let ctx = ctx.clone();
            let metrics = metrics.clone();
            let in_rx = prev_rx;
            let ctl = ctl_tx.clone();
            spawn_stage(&mut threads, format!("cjoin-dim{dim_idx}"), move || {
                let m = ctx.metrics.clone();
                contain_stage_panic(&m, "dim", move || {
                    dim_stage_loop(dim_idx, dims, ctx, metrics, in_rx, tx, ctl)
                });
            })?;
            prev_rx = rx;
        }

        // Distributor shards: slot s is owned by shard s % dist_shards.
        let free_slots: Arc<Mutex<Vec<u32>>> =
            Arc::new(Mutex::new((0..spec.max_queries as u32).rev().collect()));
        let pred_cache: Arc<PredCache> =
            Arc::new(Mutex::new(vec![HashMap::new(); dims.len()]));
        let shards = spec.dist_shards.max(1);
        let mut shard_txs: Vec<Sender<DistMsg>> = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = bounded::<DistMsg>(spec.channel_depth.max(1));
            shard_txs.push(tx);
            let dims = dims.clone();
            let ctx = ctx.clone();
            let metrics = metrics.clone();
            let free = free_slots.clone();
            let cache = pred_cache.clone();
            spawn_stage(&mut threads, format!("cjoin-dist{shard}"), move || {
                distributor_loop(dims, ctx, metrics, free, cache, rx)
            })?;
        }
        // Fan-out thread: broadcasts batches to every shard, routes
        // admissions/completions to the owning shard. Surviving tuples'
        // fact-row bytes are materialized here, once per batch, so the
        // shards fan out from a contiguous buffer instead of each
        // re-reading the page per (tuple × query).
        {
            let ctx = ctx.clone();
            let ctl = ctl_tx.clone();
            spawn_stage(&mut threads, "cjoin-fanout".into(), move || {
                let m = ctx.metrics.clone();
                contain_stage_panic(&m, "fanout", move || {
                    fanout_loop(prev_rx, shard_txs, ctl);
                });
            })?;
        }
        let threads = std::mem::take(&mut threads.0);

        Ok(CjoinPipeline {
            fact,
            fact_schema,
            dims,
            ctl_tx,
            free_slots,
            admit_gen: std::sync::atomic::AtomicU64::new(0),
            pred_cache,
            max_queries: spec.max_queries,
            out_page_bytes: spec.out_page_bytes,
            ctx,
            metrics,
            threads: Mutex::new(threads),
        })
    }

    /// Maximum concurrent queries.
    pub fn capacity(&self) -> usize {
        self.max_queries
    }

    /// Free slots remaining.
    pub fn free_slots(&self) -> usize {
        self.free_slots.lock().len()
    }

    /// Counters.
    pub fn stats(&self) -> CjoinStats {
        self.metrics.snapshot()
    }

    /// Reset counters (between experiment points).
    pub fn reset_stats(&self) {
        self.metrics.reset();
    }

    /// Admit a star query into the GQP. Returns the stream of its joined
    /// tuples; the query is complete when the stream ends (one full fact
    /// revolution).
    pub fn admit(&self, star: &StarQuery) -> Result<CjoinQuery, CjoinError> {
        if star.fact_table != self.fact.name() {
            return Err(CjoinError::Incompatible(format!(
                "fact table `{}` (pipeline serves `{}`)",
                star.fact_table,
                self.fact.name()
            )));
        }
        // Map the query's dims (its join order) onto pipeline positions.
        let mut dim_order = Vec::with_capacity(star.dims.len());
        for d in &star.dims {
            let idx = self
                .dims
                .iter()
                .position(|p| {
                    p.spec.table == d.table
                        && p.spec.fact_key == d.fact_key
                        && p.spec.dim_key == d.dim_key
                })
                .ok_or_else(|| {
                    CjoinError::Incompatible(format!(
                        "join ⋈ {} on fact.{} = dim.{} not in the pipeline",
                        d.table, d.fact_key, d.dim_key
                    ))
                })?;
            if dim_order.contains(&(idx as u32)) {
                return Err(CjoinError::Incompatible(format!(
                    "dimension `{}` joined twice",
                    d.table
                )));
            }
            dim_order.push(idx as u32);
        }

        let slot = self
            .free_slots
            .lock()
            .pop()
            .ok_or(CjoinError::Saturated)?;

        // Update dimension bitmaps and bypass masks *before* the query's
        // bit can appear on any tuple (the admit control message below is
        // what makes the preprocessor start setting it).
        let mut evals = 0u64;
        let mut dedup_hits = 0u64;
        {
            let mut cache = self.pred_cache.lock();
            for (idx, dim) in self.dims.iter().enumerate() {
                match dim_order.iter().position(|&d| d == idx as u32) {
                    Some(pos) => {
                        dim.bypass.write(slot as usize, false);
                        let pred = star.dims[pos].predicate.clone();
                        let key = pred_key(&pred);
                        // Predicate sharing: an *active* query with the
                        // identical predicate on this dimension already
                        // computed these bits — copy them.
                        let source = cache[idx]
                            .get(&key)
                            .filter(|(p, _)| *p == pred)
                            .map(|(_, s)| *s);
                        match source {
                            Some(src) if src != slot => {
                                for e in &dim.entries {
                                    e.bitmap.write(slot as usize, e.bitmap.get(src as usize));
                                }
                                dedup_hits += 1;
                            }
                            _ => {
                                // Contained: a panicking dimension
                                // predicate fails only this admission.
                                // Entry bits already written for the slot
                                // are fully overwritten by the slot's next
                                // occupant, but cache entries pointing at
                                // this slot must not survive (a later
                                // query would copy half-evaluated bits).
                                match catch_unwind(AssertUnwindSafe(|| {
                                    admission_scan(dim, &pred, slot)
                                })) {
                                    Ok(n) => {
                                        evals += n;
                                        cache[idx].insert(key, (pred, slot));
                                    }
                                    Err(_) => {
                                        for per_dim in cache.iter_mut() {
                                            per_dim.retain(|_, (_, s)| *s != slot);
                                        }
                                        drop(cache);
                                        self.free_slots.lock().push(slot);
                                        self.ctx
                                            .metrics
                                            .panics_contained
                                            .fetch_add(1, Ordering::Relaxed);
                                        return Err(CjoinError::Admission(format!(
                                            "dimension predicate on `{}` panicked",
                                            dim.spec.table
                                        )));
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        dim.bypass.write(slot as usize, true);
                        // Entries' bits for this slot are irrelevant
                        // (bypass short-circuits).
                    }
                }
            }
        }
        self.metrics
            .admission_evals
            .fetch_add(evals, Ordering::Relaxed);
        self.metrics
            .admission_dedup_hits
            .fetch_add(dedup_hits, Ordering::Relaxed);

        // Output schema: fact columns, then each dim's columns in the
        // query's join order — identical to the query-centric join chain.
        let mut out_schema = self.fact_schema.clone();
        for &d in &dim_order {
            out_schema = out_schema.join(&self.dims[d as usize].schema);
        }

        let (hub, reader) = OutputHub::new(
            ShareMode::Pull,
            StageKind::Cjoin,
            16,
            self.ctx.metrics.clone(),
            self.ctx.governor.clone(),
        );
        // Output-page allocation runs on the submitter's thread; a panic
        // here (e.g. the `page.alloc` failpoint, or a real OOM-style
        // abort) must degrade to a failed admission, not kill the caller.
        let builder = match catch_unwind(AssertUnwindSafe(|| {
            PageBuilder::with_bytes(out_schema.clone(), self.out_page_bytes)
        })) {
            Ok(b) => b,
            Err(_) => {
                {
                    let mut cache = self.pred_cache.lock();
                    for per_dim in cache.iter_mut() {
                        per_dim.retain(|_, (_, s)| *s != slot);
                    }
                }
                self.free_slots.lock().push(slot);
                self.ctx
                    .metrics
                    .panics_contained
                    .fetch_add(1, Ordering::Relaxed);
                return Err(CjoinError::Admission(
                    "output page allocation panicked".into(),
                ));
            }
        };
        let output = Box::new(QueryOutput {
            hub: hub.clone(),
            builder,
            dim_order,
            out_schema: out_schema.clone(),
        });
        self.metrics.admissions.fetch_add(1, Ordering::Relaxed);
        let fact_pred = star
            .fact_predicate
            .as_ref()
            .map(|e| Arc::new(CompiledPred::compile(e, &self.fact_schema)));
        let gen = self.admit_gen.fetch_add(1, Ordering::Relaxed);
        if self
            .ctl_tx
            .send(Ctl::Admit {
                slot,
                gen,
                fact_pred,
                output,
            })
            .is_err()
        {
            // The preprocessor is gone (pipeline shut down or its thread
            // died): surface a typed error instead of panicking, and give
            // the slot back so a later pipeline rebuild starts clean.
            {
                let mut cache = self.pred_cache.lock();
                for per_dim in cache.iter_mut() {
                    per_dim.retain(|_, (_, s)| *s != slot);
                }
            }
            self.free_slots.lock().push(slot);
            return Err(CjoinError::Down);
        }
        // Slot is returned to the allocator by the distributor when the
        // revolution completes — see `distributor_loop`.
        Ok(CjoinQuery {
            reader,
            hub,
            schema: out_schema,
            slot,
            cancel: CjoinCancel {
                ctl_tx: self.ctl_tx.clone(),
                slot,
                gen,
            },
        })
    }
}

impl Drop for CjoinPipeline {
    fn drop(&mut self) {
        let _ = self.ctl_tx.send(Ctl::Shutdown);
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// Entry chunk size of the batched dimension-admission scan: large enough
/// to amortize the batch decode, small enough to stay cache-resident.
const ADMIT_BATCH_ROWS: usize = 4096;

/// Evaluate a (possibly absent) dimension predicate for `slot` over every
/// hash-table entry, page-at-a-time: the referenced columns of a chunk of
/// entries are decoded once and the compiled predicate runs column-wise,
/// instead of tree-walking `Expr::eval` per entry. Returns the number of
/// entry evaluations performed (the admission-cost metric).
fn admission_scan(dim: &DimData, pred: &Option<Expr>, slot: u32) -> u64 {
    let slot = slot as usize;
    let Some(pred) = pred else {
        for e in &dim.entries {
            e.bitmap.write(slot, true);
        }
        return dim.entries.len() as u64;
    };
    let compiled = CompiledPred::compile(pred, &dim.schema);
    let mut scratch = PredScratch::new();
    let mut mask: Vec<u64> = Vec::new();
    let mut slices: Vec<&[u8]> = Vec::with_capacity(ADMIT_BATCH_ROWS.min(dim.entries.len()));
    for chunk in dim.entries.chunks(ADMIT_BATCH_ROWS) {
        slices.clear();
        slices.extend(chunk.iter().map(|e| &*e.row));
        let batch = ColumnBatch::from_rows(&dim.schema, &slices, compiled.columns());
        compiled.eval_batch(&batch, &mut scratch, &mut mask);
        for (i, e) in chunk.iter().enumerate() {
            e.bitmap.write(slot, mask[i / 64] & (1u64 << (i % 64)) != 0);
        }
    }
    dim.entries.len() as u64
}

// ---------------------------------------------------------------------
// Stage bodies
// ---------------------------------------------------------------------

struct ActiveQuery {
    slot: u32,
    /// Admission generation: distinguishes this occupancy of `slot` from
    /// earlier (freed) ones, so a stale gen-checked removal can't kill a
    /// successor query that reused the slot.
    gen: u64,
    fact_pred: Option<Arc<CompiledPred>>,
    remaining_pages: usize,
}

/// A unit of parallel fact-predicate evaluation: rows `range` of `page`
/// against the compiled-predicate snapshot. One chunk is one morsel task
/// on the engine's shared worker pool; the preprocessor reassembles chunk
/// results in range order.
struct ChunkJob {
    page: Arc<Page>,
    range: std::ops::Range<usize>,
    preds: Arc<Vec<(u32, Option<Arc<CompiledPred>>)>>,
    /// Union of the columns referenced by any active predicate — the set
    /// the batch decodes once for all queries.
    cols: Arc<Vec<usize>>,
    max_queries: usize,
}

/// Reusable buffers for [`eval_chunk`], held per worker thread so
/// steady-state chunk evaluation allocates only the outgoing
/// rows/bitmaps vectors.
#[derive(Default)]
struct ChunkScratch {
    pred: PredScratch,
    /// Flat `nq × words` per-query selection masks.
    masks: Vec<u64>,
    /// OR of all query masks: rows any active query still wants.
    any: Vec<u64>,
    /// Per-query evaluation output before it lands in `masks`.
    qmask: Vec<u64>,
    /// Chunk-row index → survivor index (`u32::MAX` = dropped).
    sel_index: Vec<u32>,
}

/// Page-at-a-time preprocessor step: decode the referenced columns of the
/// chunk once, run every active query's compiled predicate column-wise
/// into a per-query selection mask, then transpose the masks into the
/// per-row query bitmaps the shared joins consume. Dead rows (no query
/// bit set) never materialize a bitmap.
fn eval_chunk(job: &ChunkJob, scratch: &mut ChunkScratch) -> (Vec<u32>, Vec<Bitmap>, Vec<u32>) {
    let n = job.range.len();
    if n == 0 {
        return (Vec::new(), Vec::new(), Vec::new());
    }
    let words = mask_words(n);
    let nq = job.preds.len();
    // Predicate-shaped decode: dictionary-coded Char columns on columnar
    // pages stay as codes, so every active query's string predicate is
    // evaluated once per dictionary entry instead of once per row.
    let batch = ColumnBatch::for_predicate_range(&job.page, job.range.clone(), &job.cols);

    scratch.masks.clear();
    scratch.masks.resize(nq * words, 0);
    scratch.any.clear();
    scratch.any.resize(words, 0);
    let mut poisoned: Vec<u32> = Vec::new();
    for (qi, (slot, pred)) in job.preds.iter().enumerate() {
        let dst = &mut scratch.masks[qi * words..(qi + 1) * words];
        match pred {
            Some(p) => {
                // Per-query containment: one query's panicking predicate
                // must not take down the chunk (and with it every
                // co-runner's rows). The poisoned query keeps an all-zero
                // mask and is reported for abortion.
                let ok = catch_unwind(AssertUnwindSafe(|| {
                    p.eval_batch(&batch, &mut scratch.pred, &mut scratch.qmask)
                }));
                if ok.is_err() {
                    scratch.pred = PredScratch::new(); // state unknown after unwind
                    poisoned.push(*slot);
                    continue;
                }
                dst.copy_from_slice(&scratch.qmask);
            }
            None => {
                // No predicate: the query wants every row.
                dst.fill(u64::MAX);
                if !n.is_multiple_of(64) {
                    dst[words - 1] = (1u64 << (n % 64)) - 1;
                }
            }
        }
        for (a, m) in scratch.any.iter_mut().zip(dst.iter()) {
            *a |= *m;
        }
    }

    // Survivors: rows at least one query wants.
    let mut rows: Vec<u32> = Vec::new();
    scratch.sel_index.clear();
    scratch.sel_index.resize(n, u32::MAX);
    for i in iter_ones(&scratch.any) {
        scratch.sel_index[i] = rows.len() as u32;
        rows.push((job.range.start + i) as u32);
    }
    // Transpose the per-query masks into per-row bitmaps. The bitmaps are
    // inline (≤ 2 words) for the default 64-slot pipeline, so this mints
    // no per-tuple heap allocations.
    let mut bitmaps: Vec<Bitmap> = vec![Bitmap::zeros(job.max_queries); rows.len()];
    for (qi, (slot, _)) in job.preds.iter().enumerate() {
        let m = &scratch.masks[qi * words..(qi + 1) * words];
        for i in iter_ones(m) {
            bitmaps[scratch.sel_index[i] as usize].set(*slot as usize);
        }
    }
    (rows, bitmaps, poisoned)
}

/// Stage-channel failpoints, injected where a stage hands a batch to the
/// next channel. `<point>.delay` stalls the send (stage-channel
/// backpressure); `<point>.abort` fails it — a lost batch. Sites:
/// `cjoin.chan` (preprocessor — aborts every active query, like a
/// poisoned page), `cjoin.dim.chan` (dim hash-join stages) and
/// `cjoin.fanout.chan` (fan-out broadcast), which abort exactly the
/// queries with bits in the lost batch. The pipeline lives on in every
/// case.
fn chan_fault_at(delay: &'static str, abort: &'static str) -> Result<(), String> {
    if !qs_storage::fault::armed() {
        return Ok(());
    }
    qs_storage::fault::maybe_delay(delay);
    if qs_storage::fault::should_fire(abort) {
        return Err(format!("injected fault `{abort}`"));
    }
    Ok(())
}

fn chan_fault() -> Result<(), String> {
    chan_fault_at("cjoin.chan.delay", "cjoin.chan.abort")
}

/// The queries named by any per-tuple bitmap of `batch` — exactly the
/// set whose rows a lost batch would silently drop. Sorted, deduped.
fn affected_slots(batch: &Batch) -> Vec<u32> {
    let mut slots: Vec<u32> = batch
        .fact
        .bitmaps()
        .iter()
        .flat_map(|bm| bm.iter_ones().map(|q| q as u32))
        .collect();
    slots.sort_unstable();
    slots.dedup();
    slots
}

fn preprocessor_loop(
    fact: Arc<Table>,
    ctx: Arc<ExecCtx>,
    metrics: Arc<CjoinMetrics>,
    max_queries: usize,
    ctl_rx: Receiver<Ctl>,
    out: Sender<Msg>,
) {
    let mut active: Vec<ActiveQuery> = Vec::new();
    let mut pos = 0usize;
    let pages = fact.page_count();
    let mut inline_scratch = ChunkScratch::default();
    // Per-chunk scratch and result slots for the pooled parallel path,
    // reused across pages: surviving rows, their bitmaps, eval counts.
    type ChunkResult = (Vec<u32>, Vec<Bitmap>, Vec<u32>);
    let mut chunk_scratch: Vec<ChunkScratch> = Vec::new();
    let mut chunk_out: Vec<Option<ChunkResult>> = Vec::new();
    // Predicate snapshot shared with the worker pool, plus the union of
    // referenced columns; invariant between admissions/removals, so it is
    // rebuilt only when `active` changes, not per page.
    type PredSnapshot = (
        Arc<Vec<(u32, Option<Arc<CompiledPred>>)>>,
        Arc<Vec<usize>>,
    );
    let mut snapshot: Option<PredSnapshot> = None;
    'outer: loop {
        // Apply pending control messages; block when idle.
        loop {
            let ctl = if active.is_empty() {
                match ctl_rx.recv() {
                    Ok(c) => c,
                    Err(_) => break 'outer,
                }
            } else {
                match ctl_rx.try_recv() {
                    Ok(c) => c,
                    Err(crossbeam::channel::TryRecvError::Empty) => break,
                    Err(crossbeam::channel::TryRecvError::Disconnected) => break 'outer,
                }
            };
            match ctl {
                Ctl::Admit {
                    slot,
                    gen,
                    fact_pred,
                    output,
                } => {
                    if out.send(Msg::Admitted(slot, output)).is_err() {
                        break 'outer;
                    }
                    if pages == 0 {
                        // Empty fact table: the query completes instantly.
                        if out.send(Msg::QueryDone(slot)).is_err() {
                            break 'outer;
                        }
                    } else {
                        active.push(ActiveQuery {
                            slot,
                            gen,
                            fact_pred,
                            remaining_pages: pages,
                        });
                        snapshot = None;
                    }
                }
                Ctl::Remove { slot, gen } => {
                    // Only forward QueryDone if the query is still active;
                    // a natural completion may have raced the removal (in
                    // which case its QueryDone is already in flight and
                    // the slot must not be double-freed). A gen-checked
                    // removal additionally requires the occupant to be the
                    // admission that requested it — a stale cancel must
                    // not kill a successor query that reused the slot.
                    let before = active.len();
                    active.retain(|q| q.slot != slot || gen.is_some_and(|g| g != q.gen));
                    if active.len() < before {
                        snapshot = None;
                        if out.send(Msg::QueryDone(slot)).is_err() {
                            break 'outer;
                        }
                    }
                }
                Ctl::Shutdown => break 'outer,
            }
        }

        if active.is_empty() {
            continue;
        }

        // One page of the circular fact scan. A failed read poisons every
        // query whose revolution spans this page — i.e. all currently
        // active ones — but not the pipeline: their outputs are aborted
        // with the typed cause and the scan moves on for future admits.
        let page = match ctx.pool.get(&fact, pos) {
            Ok(p) => p,
            Err(e) => {
                let msg = format!("fact page {pos} unreadable: {e}");
                for q in active.drain(..) {
                    if out.send(Msg::QueryAborted(q.slot, msg.clone())).is_err() {
                        break 'outer;
                    }
                }
                snapshot = None;
                pos = (pos + 1) % pages;
                continue;
            }
        };
        fact.advance_clock(pos);
        pos = (pos + 1) % pages;
        metrics.fact_pages.fetch_add(1, Ordering::Relaxed);

        // Evaluate every active query's fact predicate on every row —
        // page-at-a-time over one shared column batch, chunked across the
        // preprocessor worker pool when the page and query count justify
        // the fan-out. Predicates were compiled at admission and the
        // snapshot survives until the active set changes, so the per-page
        // cost is two `Arc` bumps.
        let (preds, cols) = snapshot
            .get_or_insert_with(|| {
                let preds: Arc<Vec<(u32, Option<Arc<CompiledPred>>)>> = Arc::new(
                    active
                        .iter()
                        .map(|q| (q.slot, q.fact_pred.clone()))
                        .collect(),
                );
                let mut cols: Vec<usize> = preds
                    .iter()
                    .filter_map(|(_, p)| p.as_ref())
                    .flat_map(|p| p.columns().iter().copied())
                    .collect();
                cols.sort_unstable();
                cols.dedup();
                (preds, Arc::new(cols))
            })
            .clone();
        let n_rows = page.rows();
        let parallel = ctx.workers.workers() > 1 && n_rows * active.len() >= 512;
        let mut page_poisoned = false;
        let mut poisoned_slots: Vec<u32> = Vec::new();
        let (mut rows, mut bitmaps) = if parallel {
            // Chunked across the shared morsel pool: one task per chunk,
            // each with its own reused scratch and result slot. The pool
            // contains per-task panics (a panic outside any predicate,
            // e.g. in the shared batch decode) and reports them as an
            // `Err` after every sibling finished — the whole-page poison
            // signal that used to be a missing reply.
            let chunks = 4usize;
            let step = n_rows.div_ceil(chunks).max(1);
            let starts: Vec<usize> = (0..n_rows).step_by(step).collect();
            if chunk_scratch.len() < starts.len() {
                chunk_scratch.resize_with(starts.len(), ChunkScratch::default);
            }
            chunk_out.clear();
            chunk_out.resize_with(starts.len(), || None);
            let run = ctx.governor.run(|| {
                let mut tasks: Vec<qs_engine::pool::Task> =
                    Vec::with_capacity(starts.len());
                for ((slot_out, scratch), &start) in chunk_out
                    .iter_mut()
                    .zip(chunk_scratch.iter_mut())
                    .zip(&starts)
                {
                    let job = ChunkJob {
                        page: page.clone(),
                        range: start..(start + step).min(n_rows),
                        preds: preds.clone(),
                        cols: cols.clone(),
                        max_queries,
                    };
                    tasks.push(Box::new(move || {
                        *slot_out = Some(eval_chunk(&job, scratch));
                    }));
                }
                ctx.workers.run(tasks)
            });
            match run {
                Ok(()) => {
                    let mut rows = Vec::with_capacity(n_rows);
                    let mut bitmaps = Vec::with_capacity(n_rows);
                    for part in chunk_out.iter_mut() {
                        let (r, b, mut p) =
                            part.take().expect("clean pool run fills every chunk");
                        rows.extend(r);
                        bitmaps.extend(b);
                        poisoned_slots.append(&mut p);
                    }
                    (rows, bitmaps)
                }
                Err(_) => {
                    // A task panicked (or hit the pool failpoint) —
                    // scratches may hold mid-unwind state; rebuild them.
                    chunk_scratch.clear();
                    page_poisoned = true;
                    (Vec::new(), Vec::new())
                }
            }
        } else {
            let inline = catch_unwind(AssertUnwindSafe(|| {
                ctx.governor.run(|| {
                    eval_chunk(
                        &ChunkJob {
                            page: page.clone(),
                            range: 0..n_rows,
                            preds: preds.clone(),
                            cols: cols.clone(),
                            max_queries,
                        },
                        &mut inline_scratch,
                    )
                })
            }));
            match inline {
                Ok((rows, bitmaps, poisoned)) => {
                    poisoned_slots = poisoned;
                    (rows, bitmaps)
                }
                Err(_) => {
                    ctx.metrics.panics_contained.fetch_add(1, Ordering::Relaxed);
                    inline_scratch = ChunkScratch::default();
                    page_poisoned = true;
                    (Vec::new(), Vec::new())
                }
            }
        };
        if page_poisoned {
            // A chunk evaluated by no surviving reply: any batch built
            // from the remaining chunks would silently drop rows for
            // *every* active query. Abort them all; the pipeline lives.
            let msg = format!("fact page {} evaluation panicked", (pos + pages - 1) % pages);
            for q in active.drain(..) {
                if out.send(Msg::QueryAborted(q.slot, msg.clone())).is_err() {
                    break 'outer;
                }
            }
            snapshot = None;
            continue;
        }
        rows.shrink_to_fit();
        bitmaps.shrink_to_fit();
        // Failpoint on the stage channel: an injected send failure is a
        // lost batch — like a poisoned page, it must abort every query
        // whose revolution spans it, never silently drop their rows.
        if let Err(cause) = chan_fault() {
            let msg = format!("stage channel fault: {cause}");
            for q in active.drain(..) {
                if out.send(Msg::QueryAborted(q.slot, msg.clone())).is_err() {
                    break 'outer;
                }
            }
            snapshot = None;
            continue;
        }
        metrics
            .tuples_in
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        if out
            .send(Msg::Batch(Batch {
                fact: FactBatch::new(page, rows, bitmaps),
                dim_hits: Vec::new(),
            }))
            .is_err()
        {
            break;
        }
        // Queries whose predicate panicked on this page: contained per
        // query — abort them (after the batch, so the abort supersedes
        // any of their bits already in flight) and keep the co-runners.
        if !poisoned_slots.is_empty() {
            poisoned_slots.sort_unstable();
            poisoned_slots.dedup();
            for slot in poisoned_slots {
                let before = active.len();
                active.retain(|q| q.slot != slot);
                if active.len() < before {
                    snapshot = None;
                    ctx.metrics.panics_contained.fetch_add(1, Ordering::Relaxed);
                    let msg = "fact predicate panicked".to_string();
                    if out.send(Msg::QueryAborted(slot, msg)).is_err() {
                        break 'outer;
                    }
                }
            }
        }

        // Retire queries whose revolution completed.
        let mut done: Vec<u32> = Vec::new();
        active.retain_mut(|q| {
            q.remaining_pages -= 1;
            if q.remaining_pages == 0 {
                done.push(q.slot);
                false
            } else {
                true
            }
        });
        if !done.is_empty() {
            snapshot = None;
        }
        for slot in done {
            if out.send(Msg::QueryDone(slot)).is_err() {
                break 'outer;
            }
        }
    }
    // Channel closes on drop; downstream stages drain and exit.
}

/// Fan-out stage: broadcasts batches to every distributor shard and
/// routes per-query control messages to the owning shard.
fn fanout_loop(in_rx: Receiver<Msg>, shard_txs: Vec<Sender<DistMsg>>, ctl_tx: Sender<Ctl>) {
    while let Ok(msg) = in_rx.recv() {
        match msg {
            Msg::Batch(mut b) => {
                // Failpoint on the broadcast: a batch lost here drops rows
                // for exactly the queries with bits in it — abort their
                // streams (non-terminal; the preprocessor still owes the
                // releasing message) and keep broadcasting for co-runners.
                if let Err(cause) =
                    chan_fault_at("cjoin.fanout.chan.delay", "cjoin.fanout.chan.abort")
                {
                    let msg = format!("fan-out channel fault: {cause}");
                    for slot in affected_slots(&b) {
                        let shard = slot as usize % shard_txs.len();
                        if shard_txs[shard]
                            .send(DistMsg::StreamAborted(slot, msg.clone()))
                            .is_err()
                        {
                            return;
                        }
                        let _ = ctl_tx.try_send(Ctl::Remove { slot, gen: None });
                    }
                    continue;
                }
                b.fact.materialize_rows();
                let slots = affected_slots(&b);
                let b = Arc::new(b);
                for (shard, tx) in shard_txs.iter().enumerate() {
                    // Per-shard failpoint on the distributor channels: a
                    // batch lost on shard `i`'s channel drops rows for
                    // exactly that shard's queries. Abort their streams
                    // (mid-chain `StreamAborted` — the slot release stays
                    // with the preprocessor's terminal message, requested
                    // early via `Ctl::Remove`) and keep delivering to the
                    // other shards.
                    if let Err(cause) =
                        chan_fault_at("cjoin.shard.chan.delay", "cjoin.shard.chan.abort")
                    {
                        let msg = format!("distributor shard {shard} channel fault: {cause}");
                        for &slot in slots.iter().filter(|&&s| s as usize % shard_txs.len() == shard)
                        {
                            if tx.send(DistMsg::StreamAborted(slot, msg.clone())).is_err() {
                                return;
                            }
                            let _ = ctl_tx.try_send(Ctl::Remove { slot, gen: None });
                        }
                        continue;
                    }
                    if tx.send(DistMsg::Batch(b.clone())).is_err() {
                        return;
                    }
                }
            }
            Msg::Admitted(slot, out) => {
                let shard = slot as usize % shard_txs.len();
                if shard_txs[shard].send(DistMsg::Admitted(slot, out)).is_err() {
                    return;
                }
            }
            Msg::QueryDone(slot) => {
                let shard = slot as usize % shard_txs.len();
                if shard_txs[shard].send(DistMsg::QueryDone(slot)).is_err() {
                    return;
                }
            }
            Msg::QueryAborted(slot, cause) => {
                let shard = slot as usize % shard_txs.len();
                if shard_txs[shard]
                    .send(DistMsg::QueryAborted(slot, cause))
                    .is_err()
                {
                    return;
                }
            }
            Msg::StreamAborted(slot, cause) => {
                let shard = slot as usize % shard_txs.len();
                if shard_txs[shard]
                    .send(DistMsg::StreamAborted(slot, cause))
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

fn dim_stage_loop(
    dim_idx: usize,
    dims: Arc<Vec<DimData>>,
    ctx: Arc<ExecCtx>,
    metrics: Arc<CjoinMetrics>,
    in_rx: Receiver<Msg>,
    out: Sender<Msg>,
    ctl_tx: Sender<Ctl>,
) {
    let dim = &dims[dim_idx];
    // Join-key scratch, reused across batches: the key column of the
    // surviving tuples is gathered once per batch into a typed slice and
    // the hash map is probed in a tight loop — no per-tuple row views.
    let mut keys: Vec<i64> = Vec::new();
    while let Ok(msg) = in_rx.recv() {
        match msg {
            Msg::Batch(mut batch) => {
                // Failpoint on this stage's output channel: a lost batch
                // aborts exactly the queries with bits in it (mid-chain,
                // so via the non-terminal `StreamAborted` — the slot is
                // still released by the preprocessor's terminal message,
                // requested early via `Ctl::Remove`). Co-runners admitted
                // later and the pipeline itself continue undisturbed.
                if let Err(cause) =
                    chan_fault_at("cjoin.dim.chan.delay", "cjoin.dim.chan.abort")
                {
                    let msg = format!("dim stage {dim_idx} channel fault: {cause}");
                    for slot in affected_slots(&batch) {
                        if out.send(Msg::StreamAborted(slot, msg.clone())).is_err() {
                            return;
                        }
                        // Never block on the ctl channel from mid-chain
                        // (the preprocessor may be blocked sending to us);
                        // on a full channel the query simply rides out its
                        // revolution and QueryDone releases the slot.
                        let _ = ctl_tx.try_send(Ctl::Remove { slot, gen: None });
                    }
                    continue;
                }
                let before = batch.fact.len();
                let mut hits: Vec<u32> = vec![u32::MAX; before];
                let mut keep: Vec<bool> = vec![false; before];
                ctx.governor.run(|| {
                    batch.fact.gather_i64_into(dim.spec.fact_key, &mut keys);
                    let bitmaps = batch.fact.bitmaps_mut();
                    for (t, &key) in keys.iter().enumerate() {
                        match dim.by_key.get(key) {
                            Some(eidx) => {
                                let e = &dim.entries[eidx as usize];
                                e.bitmap.and_or_into(&dim.bypass, &mut bitmaps[t]);
                                hits[t] = eidx;
                            }
                            None => {
                                dim.bypass.and_into(&mut bitmaps[t]);
                            }
                        }
                        keep[t] = bitmaps[t].any();
                    }
                });
                // Compact the batch, dropping dead tuples.
                let survivors = keep.iter().filter(|&&k| k).count();
                if survivors < before {
                    metrics
                        .tuples_dropped
                        .fetch_add((before - survivors) as u64, Ordering::Relaxed);
                    batch.fact.retain(&keep);
                    for col in &mut batch.dim_hits {
                        let mut idx = 0usize;
                        col.retain(|_| {
                            let k = keep[idx];
                            idx += 1;
                            k
                        });
                    }
                    let mut idx = 0usize;
                    hits.retain(|_| {
                        let k = keep[idx];
                        idx += 1;
                        k
                    });
                }
                batch.dim_hits.push(hits);
                if !batch.fact.is_empty() && out.send(Msg::Batch(batch)).is_err() {
                    return;
                }
            }
            other => {
                if out.send(other).is_err() {
                    return;
                }
            }
        }
    }
}

fn distributor_loop(
    dims: Arc<Vec<DimData>>,
    ctx: Arc<ExecCtx>,
    metrics: Arc<CjoinMetrics>,
    free_slots: Arc<Mutex<Vec<u32>>>,
    pred_cache: Arc<PredCache>,
    in_rx: Receiver<DistMsg>,
) {
    let mut outputs: HashMap<u32, Box<QueryOutput>> = HashMap::new();
    let mut rowbuf: Vec<u8> = Vec::new();
    while let Ok(msg) = in_rx.recv() {
        // Per-message panic belt. A panic mid-batch leaves this shard's
        // materialization state ambiguous (which query got which rows),
        // so every open output on the shard is aborted — but their slots
        // are NOT freed here: the preprocessor still scans for them and
        // their eventual QueryDone/QueryAborted performs the (single)
        // slot release. The shard itself keeps serving future queries.
        let step = catch_unwind(AssertUnwindSafe(|| {
            distributor_step(
                msg,
                &dims,
                &ctx,
                &metrics,
                &free_slots,
                &pred_cache,
                &mut outputs,
                &mut rowbuf,
            )
        }));
        if step.is_err() {
            ctx.metrics.panics_contained.fetch_add(1, Ordering::Relaxed);
            for (_, out) in outputs.drain() {
                out.hub.abort("panic in cjoin distributor");
            }
            rowbuf = Vec::new();
        }
    }
    // Pipeline shutting down: abort any query still open.
    for (_, out) in outputs.drain() {
        out.hub.abort("cjoin pipeline shut down");
    }
}

#[allow(clippy::too_many_arguments)]
fn distributor_step(
    msg: DistMsg,
    dims: &Arc<Vec<DimData>>,
    ctx: &Arc<ExecCtx>,
    metrics: &Arc<CjoinMetrics>,
    free_slots: &Arc<Mutex<Vec<u32>>>,
    pred_cache: &Arc<PredCache>,
    outputs: &mut HashMap<u32, Box<QueryOutput>>,
    rowbuf: &mut Vec<u8>,
) {
    // Frees the slot of a terminated query: its predicate-cache entries
    // die with it and the slot returns to the pool. Runs even when the
    // output was already dropped by the shard-level panic belt — the
    // release must happen exactly once, and it is this (terminal) message
    // that performs it. It runs, along with the counter ticks, BEFORE the
    // query's stream is closed: the moment finish/abort lands, a blocked
    // consumer can wake, read stats, and re-admit — every externally
    // observable effect of the termination must already be in place.
    // (Slot reuse cannot race this shard: a re-admission's `Admitted`
    // travels the same preprocessor → fan-out → shard channels behind
    // this message.)
    let release = |slot: u32| {
        {
            let mut cache = pred_cache.lock();
            for per_dim in cache.iter_mut() {
                per_dim.retain(|_, (_, s)| *s != slot);
            }
        }
        free_slots.lock().push(slot);
    };
    match msg {
        DistMsg::Admitted(slot, output) => {
            outputs.insert(slot, output);
        }
        DistMsg::QueryDone(slot) => {
            if let Some(mut out) = outputs.remove(&slot) {
                // A push failure on the final flush must abort, not
                // finish: finishing would hand the consumer a silently
                // truncated stream as a successful result.
                let mut flushed = Ok(());
                if !out.builder.is_empty() {
                    let page = out.builder.finish_and_reset();
                    flushed = out.hub.push_page(Arc::new(page));
                }
                match flushed {
                    Ok(()) => {
                        metrics.completions.fetch_add(1, Ordering::Relaxed);
                        release(slot);
                        out.hub.finish();
                    }
                    Err(e) => {
                        metrics.aborts.fetch_add(1, Ordering::Relaxed);
                        release(slot);
                        out.hub.abort(format!("cjoin output flush failed: {e}"));
                    }
                }
            } else {
                release(slot);
            }
        }
        DistMsg::QueryAborted(slot, cause) => {
            if let Some(out) = outputs.remove(&slot) {
                metrics.aborts.fetch_add(1, Ordering::Relaxed);
                release(slot);
                out.hub.abort(cause);
            } else {
                release(slot);
            }
        }
        DistMsg::StreamAborted(slot, cause) => {
            // Mid-chain abort: close the stream, but the slot stays owned
            // — the preprocessor's terminal message (ordered behind this
            // one on the same channels) performs the single release. With
            // no open output this is a no-op: the terminal message won the
            // race, and re-issuing a release here would double-free a
            // possibly re-admitted slot.
            if let Some(out) = outputs.remove(&slot) {
                metrics.aborts.fetch_add(1, Ordering::Relaxed);
                out.hub.abort(cause);
            }
        }
        DistMsg::Batch(batch) => {
            if outputs.is_empty() {
                return; // none of this shard's queries are active
            }
            let mut flushes: Vec<(u32, Arc<Page>)> = Vec::new();
            ctx.governor.run(|| {
                for (t, bm) in batch.fact.bitmaps().iter().enumerate() {
                    // Fact bytes were gathered once per batch at
                    // fan-out; the per-(tuple × query) loop only
                    // concatenates slices.
                    let fact_bytes = batch.fact.row_bytes(t);
                    for q in bm.iter_ones() {
                        let Some(out) = outputs.get_mut(&(q as u32)) else {
                            continue;
                        };
                        rowbuf.clear();
                        rowbuf.extend_from_slice(fact_bytes);
                        for &d in &out.dim_order {
                            let eidx = batch.dim_hits[d as usize][t];
                            debug_assert_ne!(
                                eidx,
                                u32::MAX,
                                "query joined this dim, so it must have matched"
                            );
                            rowbuf.extend_from_slice(
                                &dims[d as usize].entries[eidx as usize].row,
                            );
                        }
                        debug_assert_eq!(rowbuf.len(), out.out_schema.row_size());
                        if !out.builder.push_encoded(rowbuf) {
                            let page = out.builder.finish_and_reset();
                            flushes.push((q as u32, Arc::new(page)));
                            let ok = out.builder.push_encoded(rowbuf);
                            debug_assert!(ok);
                        }
                        metrics.rows_out.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            for (q, page) in flushes {
                if let Some(out) = outputs.get(&q) {
                    // A dropped push reader surfaces as `Cancelled` and is
                    // pruned inside the hub (push_many returns Ok), so an
                    // Err here is a real delivery failure (e.g. an injected
                    // channel abort): close this query's output as aborted
                    // now — the later terminal message would otherwise
                    // `finish` a truncated stream as a success. The slot is
                    // NOT freed here; the terminal message still does that.
                    if let Err(e) = out.hub.push_page(page) {
                        let out = outputs.remove(&q).expect("output just seen");
                        metrics.aborts.fetch_add(1, Ordering::Relaxed);
                        out.hub.abort(format!("cjoin output delivery failed: {e}"));
                    }
                }
            }
        }
    }
}
