//! SharedAggregator ↔ reference equivalence across the GroupTable swap.
//!
//! PR 5 replaced the class-level byte-key registries inside
//! [`SharedAggregator`] with the tiered `qs_engine::group::GroupTable`.
//! These tests pin the observable contract the swap must preserve —
//! byte-identical per-query results (values *and* row order) for queries
//! sharing a grouping class, under the PR 3 batch-routing semantics:
//! per-tuple bitmap routing, class-shared key resolution, per-query
//! first-touch output order, mid-stream finishes.
//!
//! The oracle is a deliberately naive per-query fold: walk the annotated
//! tuple stream row-at-a-time through `qs_engine::agg`'s accumulators
//! (the same oracle the kernel proptests pin against), with a private
//! byte-key first-touch registry per query.

use qs_cjoin::bitmap::Bitmap;
use qs_cjoin::{AggPlan, SharedAggregator};
use qs_engine::agg::{finalize_acc, make_acc, update_acc, Acc};
use qs_engine::group::{GroupTable, GroupTier};
use qs_plan::{AggFunc, AggSpec};
use qs_storage::{DataType, FactBatch, Page, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::from_pairs(&[
        ("g1", DataType::Int),     // dense-int class key
        ("g2", DataType::Int),     // with g1: packed 16-byte class key
        ("d", DataType::Date),
        ("wide", DataType::Char(20)), // byte-key class key
        ("v", DataType::Int),
        ("f", DataType::Float),
    ])
}

/// Deterministic page: small key domains so groups repeat across pages.
fn page(seed: i64, rows: usize) -> Arc<Page> {
    let s = schema();
    let vals: Vec<Vec<Value>> = (0..rows as i64)
        .map(|i| {
            let x = seed * 37 + i;
            vec![
                Value::Int(x % 5),
                Value::Int((x * 7) % 3),
                Value::Date(20260101 + (x % 4) as u32),
                Value::Str(format!("wide-group-key-{:02}", x % 6)),
                Value::Int(x * 11 % 101 - 50),
                Value::Float((x % 13) as f64 * 0.25 - 1.0),
            ]
        })
        .collect();
    Arc::new(Page::from_values(&s, &vals).unwrap())
}

/// Bitmap stream: row `i` of page `p` is relevant to query slot `q` iff
/// the (p, i, q) pattern fires — deterministic, mixes dead rows, rows
/// shared by all queries, and rows private to one.
fn bitmaps(p: usize, rows: usize, slots: &[u32]) -> Vec<Bitmap> {
    (0..rows)
        .map(|i| {
            let mut bm = Bitmap::zeros(128);
            for (k, &q) in slots.iter().enumerate() {
                if !(p + i + k).is_multiple_of(3) {
                    bm.set(q as usize);
                }
            }
            bm
        })
        .collect()
}

/// Per-query reference fold: row-at-a-time accumulators + private
/// byte-key first-touch registry.
struct RefQuery {
    slot: u32,
    plan: AggPlan,
    lookup: HashMap<Vec<u8>, usize>,
    order: Vec<Vec<u8>>,
    accs: Vec<Vec<Acc>>, // group → per-agg accumulator
}

impl RefQuery {
    fn new(slot: u32, plan: AggPlan, schema: &Schema) -> RefQuery {
        let mut r = RefQuery {
            slot,
            plan,
            lookup: HashMap::new(),
            order: Vec::new(),
            accs: Vec::new(),
        };
        if r.plan.group_by.is_empty() {
            r.order.push(Vec::new());
            r.accs.push(
                r.plan.aggs.iter().map(|a| make_acc(&a.func, schema)).collect(),
            );
        }
        r
    }

    fn push(&mut self, page: &Page, bms: &[Bitmap]) {
        let s = page.schema().clone();
        for (i, bm) in bms.iter().enumerate() {
            if !bm.get(self.slot as usize) {
                continue;
            }
            let row = page.row(i);
            let mut key = Vec::new();
            for &c in &self.plan.group_by {
                let off = s.offset(c);
                let w = s.dtype(c).width();
                key.extend_from_slice(&row.bytes()[off..off + w]);
            }
            let g = if self.plan.group_by.is_empty() {
                0
            } else {
                match self.lookup.get(&key) {
                    Some(&g) => g,
                    None => {
                        let g = self.order.len();
                        self.order.push(key.clone());
                        self.lookup.insert(key, g);
                        self.accs.push(
                            self.plan
                                .aggs
                                .iter()
                                .map(|a| make_acc(&a.func, &s))
                                .collect(),
                        );
                        g
                    }
                }
            };
            for (acc, spec) in self.accs[g].iter_mut().zip(&self.plan.aggs) {
                update_acc(acc, &spec.func, &row);
            }
        }
    }

    fn finish(&self, schema: &Schema) -> Vec<Vec<Value>> {
        self.order
            .iter()
            .enumerate()
            .map(|(g, key)| {
                let mut row = Vec::new();
                let mut off = 0usize;
                for &c in &self.plan.group_by {
                    let w = schema.dtype(c).width();
                    row.push(decode(&key[off..off + w], schema.dtype(c)));
                    off += w;
                }
                for acc in &self.accs[g] {
                    row.push(finalize_acc(acc));
                }
                row
            })
            .collect()
    }
}

fn decode(bytes: &[u8], dtype: DataType) -> Value {
    match dtype {
        DataType::Int => Value::Int(i64::from_le_bytes(bytes.try_into().unwrap())),
        DataType::Float => Value::Float(f64::from_le_bytes(bytes.try_into().unwrap())),
        DataType::Date => Value::Date(u32::from_le_bytes(bytes.try_into().unwrap())),
        DataType::Char(_) => Value::Str(
            std::str::from_utf8(bytes)
                .unwrap_or("")
                .trim_end_matches(' ')
                .to_string(),
        ),
    }
}

/// The five queries of the scenario: two sharing the dense-int class,
/// two sharing the packed class (different aggregates — the class
/// registry is shared, the accumulators are not), one alone on the
/// byte-key class. Every GroupTable tier is exercised in one aggregator.
fn plans() -> Vec<(u32, AggPlan)> {
    vec![
        (
            0,
            AggPlan {
                group_by: vec![0],
                aggs: vec![
                    AggSpec::new(AggFunc::Sum(4), "s"),
                    AggSpec::new(AggFunc::Count, "n"),
                ],
            },
        ),
        (
            1,
            AggPlan {
                group_by: vec![0],
                aggs: vec![AggSpec::new(AggFunc::Avg(5), "a")],
            },
        ),
        (
            2,
            AggPlan {
                group_by: vec![0, 1],
                aggs: vec![AggSpec::new(AggFunc::Max(4), "m")],
            },
        ),
        (
            70, // beyond one mask word: widening must survive the swap
            AggPlan {
                group_by: vec![0, 1],
                aggs: vec![
                    AggSpec::new(AggFunc::Min(2), "d"),
                    AggSpec::new(AggFunc::SumProd(4, 4), "p"),
                ],
            },
        ),
        (
            3,
            AggPlan {
                group_by: vec![3],
                aggs: vec![AggSpec::new(AggFunc::Count, "n")],
            },
        ),
    ]
}

#[test]
fn class_sharing_results_match_reference_fold() {
    let s = schema();
    // The scenario's class shapes really land on the three tiers.
    assert_eq!(GroupTable::tier_for(&[0], &s), GroupTier::DenseInt);
    assert_eq!(GroupTable::tier_for(&[0, 1], &s), GroupTier::Packed);
    assert_eq!(GroupTable::tier_for(&[3], &s), GroupTier::ByteKey);

    let mut agg = SharedAggregator::new(s.clone());
    let mut refs: Vec<RefQuery> = Vec::new();
    let mut slots = Vec::new();
    for (slot, plan) in plans() {
        agg.register(slot, plan.clone());
        refs.push(RefQuery::new(slot, plan, &s));
        slots.push(slot);
    }
    // 5 queries, 3 grouping classes: [0] shared, [0,1] shared, [3] solo.
    assert_eq!(agg.class_count(), 3);

    for p in 0..6usize {
        let page = page(p as i64, 48);
        let bms = bitmaps(p, 48, &slots);
        agg.push_page(&page, &bms);
        for r in &mut refs {
            r.push(&page, &bms);
        }
    }

    for r in &refs {
        let got = agg.finish(r.slot).expect("registered slot");
        let want = r.finish(&s);
        assert_eq!(got, want, "slot {} diverged from the reference fold", r.slot);
        assert!(!want.is_empty(), "degenerate scenario: slot {} saw no tuples", r.slot);
    }
}

#[test]
fn push_batch_and_mid_stream_finish_survive_swap() {
    let s = schema();
    let mut agg = SharedAggregator::new(s.clone());
    let mut refs: Vec<RefQuery> = Vec::new();
    let mut slots = Vec::new();
    for (slot, plan) in plans() {
        agg.register(slot, plan.clone());
        refs.push(RefQuery::new(slot, plan, &s));
        slots.push(slot);
    }

    // First half of the stream arrives as FactBatches (the pipeline's
    // own currency): dead rows pre-dropped, bitmaps parallel to sel.
    for p in 0..3usize {
        let page = page(p as i64, 48);
        let bms = bitmaps(p, 48, &slots);
        let sel: Vec<u32> =
            (0..48u32).filter(|&i| bms[i as usize].any()).collect();
        let kept: Vec<Bitmap> =
            sel.iter().map(|&i| bms[i as usize].clone()).collect();
        let fb = FactBatch::new(page.clone(), sel, kept);
        agg.push_batch(&fb);
        for r in &mut refs {
            r.push(&page, &bms);
        }
    }

    // Mid-stream finish of one member of each shared class: the class
    // registry lives on for the surviving member.
    for finish_slot in [0u32, 2] {
        let r = refs.iter().position(|r| r.slot == finish_slot).unwrap();
        let got = agg.finish(finish_slot).expect("registered");
        assert_eq!(got, refs[r].finish(&s), "mid-stream finish slot {finish_slot}");
        refs.remove(r);
    }

    // Rest of the stream still routes correctly to the survivors —
    // including tuples still carrying the finished slots' bits.
    for p in 3..6usize {
        let page = page(p as i64, 48);
        let bms = bitmaps(p, 48, &slots);
        agg.push_page(&page, &bms);
        for r in &mut refs {
            r.push(&page, &bms);
        }
    }
    for r in &refs {
        let got = agg.finish(r.slot).expect("registered");
        assert_eq!(got, r.finish(&s), "slot {} after mid-stream finishes", r.slot);
    }
}
