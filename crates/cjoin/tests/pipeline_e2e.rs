//! End-to-end CJOIN tests: for every admitted star query, the pipeline's
//! output must equal the query-centric join (the oracle), under online
//! admission, predicate variety, bypassed dimensions, saturation and slot
//! reuse.

use qs_cjoin::{CjoinError, CjoinPipeline, DimSpec, PipelineSpec};
use qs_engine::reference::{assert_rows_match, eval};
use qs_engine::{BatchSource, CoreGovernor, ExecCtx, Metrics};
use qs_plan::{Expr, LogicalPlan, PlanBuilder, StarQuery};
use qs_storage::{
    BufferPool, BufferPoolConfig, Catalog, DataType, DiskConfig, DiskModel, Schema, TableBuilder,
    Value,
};
use std::sync::Arc;

/// Tiny star schema: fact(f_d1, f_d2, val) with dims d1(k, a), d2(k, a).
fn catalog() -> Arc<Catalog> {
    let cat = Catalog::new();
    for (name, rows) in [("d1", 8i64), ("d2", 5i64)] {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("a", DataType::Int)]);
        let mut b = TableBuilder::with_page_bytes(name, schema, 64);
        for k in 0..rows {
            b.push_values(&[Value::Int(k), Value::Int(k % 3)]).unwrap();
        }
        cat.register(b);
    }
    let fact = Schema::from_pairs(&[
        ("f_d1", DataType::Int),
        ("f_d2", DataType::Int),
        ("val", DataType::Int),
    ]);
    let mut b = TableBuilder::with_page_bytes("fact", fact, 128); // 5 rows/page
    for i in 0..200i64 {
        // some keys fall outside the dim domains -> dangling FKs dropped
        b.push_values(&[Value::Int(i % 10), Value::Int(i % 7), Value::Int(i)])
            .unwrap();
    }
    cat.register(b);
    cat
}

fn ctx() -> Arc<ExecCtx> {
    let metrics = Metrics::new();
    Arc::new(ExecCtx {
        pool: Arc::new(BufferPool::new(
            BufferPoolConfig::unbounded(),
            Arc::new(DiskModel::new(DiskConfig::memory_resident())),
        )),
        governor: CoreGovernor::new(0, metrics.clone()),
        workers: qs_engine::WorkerPool::new(1, metrics.clone()),
        metrics,
        out_page_bytes: 256,
    })
}

fn spec() -> PipelineSpec {
    PipelineSpec {
        max_queries: 4,
        channel_depth: 2,
        out_page_bytes: 256,
        ..PipelineSpec::new(
            "fact",
            vec![
                DimSpec {
                    table: "d1".into(),
                    fact_key: 0,
                    dim_key: 0,
                },
                DimSpec {
                    table: "d2".into(),
                    fact_key: 1,
                    dim_key: 0,
                },
            ],
        )
    }
}

/// Star plan: fact ⋈ d1[k, pred1] (⋈ d2[pred2] if both).
fn star_plan(cat: &Catalog, p1: Option<Expr>, p2: Option<Option<Expr>>) -> LogicalPlan {
    let mut b = PlanBuilder::scan(cat, "fact")
        .unwrap()
        .join_dim("d1", "f_d1", "k", p1)
        .unwrap();
    if let Some(p2) = p2 {
        b = b.join_dim("d2", "f_d2", "k", p2).unwrap();
    }
    b.build().unwrap()
}

fn drain(mut r: Box<dyn BatchSource>) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    while let Some(b) = r.next_batch().unwrap() {
        for t in 0..b.len() {
            out.push(b.page().row(b.sel()[t] as usize).values());
        }
    }
    out
}

#[test]
fn single_query_matches_query_centric_join() {
    let cat = catalog();
    let pipe = CjoinPipeline::new(ctx(), &cat, &spec()).unwrap();
    let plan = star_plan(&cat, Some(Expr::eq(1, 1i64)), Some(None));
    let star = StarQuery::detect(&plan, &cat).unwrap();
    let q = pipe.admit(&star).unwrap();
    assert_eq!(q.schema.len(), 7); // 3 fact + 2 + 2 dim cols
    let got = drain(q.reader);
    let expected = eval(&plan, &cat).unwrap();
    assert!(!expected.is_empty());
    assert_rows_match(got, expected, 0.0);
    let stats = pipe.stats();
    assert_eq!(stats.admissions, 1);
    assert_eq!(stats.completions, 1);
    assert!(stats.rows_out > 0);
}

#[test]
fn query_bypassing_a_dimension() {
    let cat = catalog();
    let pipe = CjoinPipeline::new(ctx(), &cat, &spec()).unwrap();
    // Only joins d1; d2 is bypassed for this query.
    let plan = star_plan(&cat, Some(Expr::between(1, 0i64, 1i64)), None);
    let star = StarQuery::detect(&plan, &cat).unwrap();
    let q = pipe.admit(&star).unwrap();
    assert_eq!(q.schema.len(), 5);
    let got = drain(q.reader);
    let expected = eval(&plan, &cat).unwrap();
    assert_rows_match(got, expected, 0.0);
}

#[test]
fn concurrent_queries_with_different_predicates() {
    let cat = catalog();
    let pipe = CjoinPipeline::new(ctx(), &cat, &spec()).unwrap();
    let plans: Vec<LogicalPlan> = vec![
        star_plan(&cat, Some(Expr::eq(1, 0i64)), Some(None)),
        star_plan(&cat, Some(Expr::eq(1, 2i64)), Some(Some(Expr::eq(1, 1i64)))),
        star_plan(&cat, None, Some(None)),
        star_plan(&cat, Some(Expr::lt(0, 3i64)), None),
    ];
    let queries: Vec<_> = plans
        .iter()
        .map(|p| pipe.admit(&StarQuery::detect(p, &cat).unwrap()).unwrap())
        .collect();
    let results: Vec<_> = queries.into_iter().map(|q| drain(q.reader)).collect();
    for (plan, got) in plans.iter().zip(results) {
        let expected = eval(plan, &cat).unwrap();
        assert_rows_match(got, expected, 0.0);
    }
    assert_eq!(pipe.stats().completions, 4);
    assert_eq!(pipe.free_slots(), 4, "all slots returned");
}

#[test]
fn fact_predicate_is_applied_by_preprocessor() {
    let cat = catalog();
    let pipe = CjoinPipeline::new(ctx(), &cat, &spec()).unwrap();
    let plan = {
        let b = PlanBuilder::scan(&cat, "fact")
            .unwrap()
            .filter(Expr::ge(2, 100i64)) // val >= 100, pushed into the scan
            .unwrap()
            .join_dim("d1", "f_d1", "k", None)
            .unwrap();
        b.build().unwrap()
    };
    let star = StarQuery::detect(&plan, &cat).unwrap();
    assert!(star.fact_predicate.is_some());
    let q = pipe.admit(&star).unwrap();
    let got = drain(q.reader);
    let expected = eval(&plan, &cat).unwrap();
    assert_rows_match(got, expected, 0.0);
    // dropped tuples were counted
    assert!(pipe.stats().tuples_in < 200);
}

#[test]
fn online_admission_while_another_runs() {
    let cat = catalog();
    let pipe = Arc::new(CjoinPipeline::new(ctx(), &cat, &spec()).unwrap());
    let plan1 = star_plan(&cat, None, Some(None));
    let plan2 = star_plan(&cat, Some(Expr::eq(1, 1i64)), Some(None));
    let q1 = pipe.admit(&StarQuery::detect(&plan1, &cat).unwrap()).unwrap();
    // Admit the second while the first revolution is (likely) in flight.
    let q2 = pipe.admit(&StarQuery::detect(&plan2, &cat).unwrap()).unwrap();
    let h1 = std::thread::spawn(move || drain(q1.reader));
    let h2 = std::thread::spawn(move || drain(q2.reader));
    assert_rows_match(h1.join().unwrap(), eval(&plan1, &cat).unwrap(), 0.0);
    assert_rows_match(h2.join().unwrap(), eval(&plan2, &cat).unwrap(), 0.0);
}

#[test]
fn saturation_and_slot_reuse() {
    let cat = catalog();
    let pipe = CjoinPipeline::new(ctx(), &cat, &spec()).unwrap();
    let plan = star_plan(&cat, None, None);
    let star = StarQuery::detect(&plan, &cat).unwrap();
    let held: Vec<_> = (0..4).map(|_| pipe.admit(&star).unwrap()).collect();
    assert!(matches!(pipe.admit(&star), Err(CjoinError::Saturated)));
    // Drain all four; slots come back and a new admission succeeds.
    let expected = eval(&plan, &cat).unwrap();
    for q in held {
        assert_rows_match(drain(q.reader), expected.clone(), 0.0);
    }
    let q = pipe.admit(&star).expect("slot reused after completion");
    assert_rows_match(drain(q.reader), expected, 0.0);
    assert_eq!(pipe.stats().admissions, 5);
}

#[test]
fn incompatible_queries_rejected() {
    let cat = catalog();
    let pipe = CjoinPipeline::new(ctx(), &cat, &spec()).unwrap();
    // wrong fact table
    let bogus = StarQuery {
        fact_table: "d1".into(),
        fact_predicate: None,
        dims: vec![],
        above: vec![],
    };
    assert!(matches!(
        pipe.admit(&bogus),
        Err(CjoinError::Incompatible(_))
    ));
    // unknown join pair
    let plan = star_plan(&cat, None, None);
    let mut star = StarQuery::detect(&plan, &cat).unwrap();
    star.dims[0].fact_key = 2; // fact.val is not a pipeline key
    assert!(matches!(
        pipe.admit(&star),
        Err(CjoinError::Incompatible(_))
    ));
}

#[test]
fn dim_order_of_query_is_respected() {
    // A query joining d2 before d1 must get columns in *its* order.
    let cat = catalog();
    let pipe = CjoinPipeline::new(ctx(), &cat, &spec()).unwrap();
    let plan = {
        let b = PlanBuilder::scan(&cat, "fact")
            .unwrap()
            .join_dim("d2", "f_d2", "k", None)
            .unwrap()
            .join_dim("d1", "f_d1", "k", None)
            .unwrap();
        b.build().unwrap()
    };
    let star = StarQuery::detect(&plan, &cat).unwrap();
    assert_eq!(star.dims[0].table, "d2");
    let q = pipe.admit(&star).unwrap();
    let got = drain(q.reader);
    let expected = eval(&plan, &cat).unwrap();
    assert_rows_match(got, expected, 0.0);
}

#[test]
fn pipeline_shutdown_aborts_open_queries() {
    let cat = catalog();
    let pipe = CjoinPipeline::new(ctx(), &cat, &spec()).unwrap();
    let plan = star_plan(&cat, None, None);
    let star = StarQuery::detect(&plan, &cat).unwrap();
    let q = pipe.admit(&star).unwrap();
    drop(pipe); // shut down before draining
    let mut r = q.reader;
    // Either we get pages that were already produced, then an abort/EOS.
    loop {
        match r.next_batch() {
            Ok(Some(_)) => continue,
            Ok(None) => break,                    // finished before shutdown
            Err(qs_engine::EngineError::Aborted(_)) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

/// Removals are generation-checked: a cancel handle that outlives its
/// query's natural completion must not kill the admission that reused the
/// slot. (Regression test — GQP+SP admission leases release their cancel
/// on every completion, so stale cancels are the common case, not the
/// exception.)
#[test]
fn stale_cancel_after_slot_reuse_is_a_noop() {
    let cat = catalog();
    let pipe = CjoinPipeline::new(ctx(), &cat, &spec()).unwrap();
    let plan = star_plan(&cat, None, None);
    let star = StarQuery::detect(&plan, &cat).unwrap();
    let expected = eval(&plan, &cat).unwrap();

    let q1 = pipe.admit(&star).unwrap();
    let stale = q1.cancel.clone();
    let slot1 = q1.slot;
    assert_rows_match(drain(q1.reader), expected.clone(), 0.0);

    // The freed slot is reused by the next admission (free list is a
    // stack, so this is deterministic), then the dead query's cancel
    // fires while the successor's revolution is in flight.
    let q2 = pipe.admit(&star).expect("slot reused after completion");
    assert_eq!(q2.slot, slot1, "successor reuses the freed slot");
    stale.cancel();
    assert_rows_match(drain(q2.reader), expected, 0.0);

    // The successor's own cancel (right generation) still works: admit a
    // third query and remove it early; its stream ends without error.
    let q3 = pipe.admit(&star).unwrap();
    q3.cancel.cancel();
    drain(q3.reader); // finishes at a page boundary, possibly truncated
}

#[test]
fn admission_predicate_dedup_copies_bits() {
    let cat = catalog();
    let pipe = CjoinPipeline::new(ctx(), &cat, &spec()).unwrap();
    let plan = star_plan(&cat, Some(Expr::eq(1, 1i64)), Some(None));
    let star = StarQuery::detect(&plan, &cat).unwrap();
    let q1 = pipe.admit(&star).unwrap();
    let evals_after_first = pipe.stats().admission_evals;
    assert!(evals_after_first > 0);
    // Identical predicates on both dims: the second admission copies bits.
    let q2 = pipe.admit(&star).unwrap();
    let s = pipe.stats();
    assert_eq!(
        s.admission_evals, evals_after_first,
        "no re-evaluation for identical predicates"
    );
    assert_eq!(s.admission_dedup_hits, 2, "one hit per joined dimension");
    // Both queries still compute the right answer.
    let expected = eval(&plan, &cat).unwrap();
    assert_rows_match(drain(q1.reader), expected.clone(), 0.0);
    assert_rows_match(drain(q2.reader), expected.clone(), 0.0);
    // After completion the cache is invalidated: a third admission
    // re-evaluates.
    let q3 = pipe.admit(&star).unwrap();
    assert!(pipe.stats().admission_evals > evals_after_first);
    assert_rows_match(drain(q3.reader), expected, 0.0);
}

#[test]
fn dedup_does_not_alias_different_predicates() {
    let cat = catalog();
    let pipe = CjoinPipeline::new(ctx(), &cat, &spec()).unwrap();
    let p1 = star_plan(&cat, Some(Expr::eq(1, 1i64)), Some(None));
    let p2 = star_plan(&cat, Some(Expr::eq(1, 2i64)), Some(None));
    let q1 = pipe.admit(&StarQuery::detect(&p1, &cat).unwrap()).unwrap();
    let q2 = pipe.admit(&StarQuery::detect(&p2, &cat).unwrap()).unwrap();
    assert_eq!(pipe.stats().admission_dedup_hits, 1, "only the d2 no-predicate dim dedups");
    assert_rows_match(drain(q1.reader), eval(&p1, &cat).unwrap(), 0.0);
    assert_rows_match(drain(q2.reader), eval(&p2, &cat).unwrap(), 0.0);
}

#[test]
fn early_cancellation_frees_the_slot_and_finishes_the_stream() {
    let cat = catalog();
    let pipe = CjoinPipeline::new(ctx(), &cat, &spec()).unwrap();
    let plan = star_plan(&cat, None, Some(None));
    let star = StarQuery::detect(&plan, &cat).unwrap();
    let q = pipe.admit(&star).unwrap();
    q.cancel.cancel();
    // Stream ends cleanly (possibly after some already-produced pages).
    let _partial = drain(q.reader);
    // The slot comes back without a full revolution.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while pipe.free_slots() != 4 {
        assert!(std::time::Instant::now() < deadline, "slot never freed");
        std::thread::yield_now();
    }
    // Cancelling again is a no-op; the pipeline still admits new queries.
    q.cancel.cancel();
    let q2 = pipe.admit(&star).unwrap();
    assert_rows_match(drain(q2.reader), eval(&plan, &cat).unwrap(), 0.0);
}
