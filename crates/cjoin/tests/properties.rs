//! Property-based tests for CJOIN: for random mini star schemas, random
//! predicates and random admission interleavings, every query's GQP output
//! equals its query-centric evaluation — the fundamental transparency
//! invariant of proactive sharing.

use proptest::prelude::*;
use qs_cjoin::{Bitmap, CjoinPipeline, DimSpec, PipelineSpec};
use qs_engine::reference::{assert_rows_match, eval};
use qs_engine::{BatchSource, CoreGovernor, ExecCtx, Metrics};
use qs_plan::{CmpOp, Expr, LogicalPlan, StarQuery};
use qs_storage::{
    BufferPool, BufferPoolConfig, Catalog, DataType, DiskConfig, DiskModel, Schema, TableBuilder,
    Value,
};
use std::sync::Arc;

fn ctx() -> Arc<ExecCtx> {
    let metrics = Metrics::new();
    Arc::new(ExecCtx {
        pool: Arc::new(BufferPool::new(
            BufferPoolConfig::unbounded(),
            Arc::new(DiskModel::new(DiskConfig::memory_resident())),
        )),
        governor: CoreGovernor::new(0, metrics.clone()),
        workers: qs_engine::WorkerPool::new(1, metrics.clone()),
        metrics,
        out_page_bytes: 256,
    })
}

/// A generated mini star schema: fact with `n_dims` FK columns + value,
/// dims with key + attribute.
#[derive(Debug, Clone)]
struct MiniStar {
    dim_sizes: Vec<i64>,
    fact_rows: Vec<Vec<i64>>, // fk per dim + value
}

fn mini_star() -> impl Strategy<Value = MiniStar> {
    (1usize..=3)
        .prop_flat_map(|n_dims| {
            let dims = prop::collection::vec(2i64..12, n_dims);
            dims.prop_flat_map(move |dim_sizes| {
                let sizes = dim_sizes.clone();
                let fact_row = sizes
                    .iter()
                    // key domain slightly larger than the dim: dangling FKs
                    .map(|&s| 0i64..s + 2)
                    .chain(std::iter::once(0i64..100))
                    .collect::<Vec<_>>();
                prop::collection::vec(fact_row, 1..120).prop_map(move |fact_rows| MiniStar {
                    dim_sizes: dim_sizes.clone(),
                    fact_rows,
                })
            })
        })
}

fn build_catalog(star: &MiniStar) -> Arc<Catalog> {
    let cat = Catalog::new();
    for (d, &size) in star.dim_sizes.iter().enumerate() {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("a", DataType::Int)]);
        let mut b = TableBuilder::with_page_bytes(format!("d{d}"), schema, 64);
        for k in 0..size {
            b.push_values(&[Value::Int(k), Value::Int(k % 4)]).unwrap();
        }
        cat.register(b);
    }
    let mut cols: Vec<(String, DataType)> = (0..star.dim_sizes.len())
        .map(|d| (format!("fk{d}"), DataType::Int))
        .collect();
    cols.push(("val".to_string(), DataType::Int));
    let schema = Schema::new(
        cols.into_iter()
            .map(|(n, t)| qs_storage::Column::new(n, t))
            .collect(),
    );
    let mut b = TableBuilder::with_page_bytes("fact", schema, 128);
    for row in &star.fact_rows {
        let vals: Vec<Value> = row.iter().map(|&v| Value::Int(v)).collect();
        b.push_values(&vals).unwrap();
    }
    cat.register(b);
    cat
}

fn pipeline_spec(star: &MiniStar) -> PipelineSpec {
    PipelineSpec {
        max_queries: 8,
        channel_depth: 2,
        out_page_bytes: 256,
        ..PipelineSpec::new(
            "fact",
            (0..star.dim_sizes.len())
                .map(|d| DimSpec {
                    table: format!("d{d}"),
                    fact_key: d,
                    dim_key: 0,
                })
                .collect(),
        )
    }
}

/// A random star query over the mini schema: subset of dims (at least
/// one), random attribute predicates, optional fact predicate.
fn star_plan(star: &MiniStar, choice: &[Option<(CmpOp, i64)>], fact_pred: Option<i64>) -> LogicalPlan {
    let n_dims = star.dim_sizes.len();
    let mut cur = LogicalPlan::Scan {
        table: "fact".into(),
        predicate: fact_pred.map(|v| Expr::Cmp {
            col: n_dims, // val
            op: CmpOp::Ge,
            lit: Value::Int(v),
        }),
        projection: None,
    };
    for (d, sel) in choice.iter().enumerate() {
        let Some((op, lit)) = sel else { continue };
        cur = LogicalPlan::HashJoin {
            build: Box::new(LogicalPlan::Scan {
                table: format!("d{d}"),
                predicate: Some(Expr::Cmp {
                    col: 1,
                    op: *op,
                    lit: Value::Int(*lit),
                }),
                projection: None,
            }),
            probe: Box::new(cur),
            build_key: 0,
            probe_key: d,
        };
    }
    cur
}

fn drain(mut r: Box<dyn BatchSource>) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    while let Some(b) = r.next_batch().unwrap() {
        for t in 0..b.len() {
            out.push(b.page().row(b.sel()[t] as usize).values());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gqp_equals_query_centric_for_random_stars(
        star in mini_star(),
        // up to 4 concurrent queries, each choosing dims and predicates
        specs in prop::collection::vec(
            (
                prop::collection::vec(
                    prop::option::of((
                        prop_oneof![Just(CmpOp::Eq), Just(CmpOp::Le), Just(CmpOp::Ne)],
                        0i64..4,
                    )),
                    3,
                ),
                prop::option::of(0i64..100),
            ),
            1..4,
        ),
    ) {
        let cat = build_catalog(&star);
        let pipe = CjoinPipeline::new(ctx(), &cat, &pipeline_spec(&star)).unwrap();
        let n_dims = star.dim_sizes.len();

        let mut plans = Vec::new();
        for (choice, fact_pred) in &specs {
            let mut choice = choice[..n_dims].to_vec();
            // ensure at least one dim joined (star queries need a join)
            if choice.iter().all(|c| c.is_none()) {
                choice[0] = Some((CmpOp::Le, 3));
            }
            plans.push(star_plan(&star, &choice, *fact_pred));
        }

        // Admit all queries (interleaved with the pipeline running), then
        // drain them concurrently.
        let queries: Vec<_> = plans
            .iter()
            .map(|p| {
                let sq = StarQuery::detect(p, &cat).expect("star");
                pipe.admit(&sq).expect("admit")
            })
            .collect();
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = queries
                .into_iter()
                .map(|q| s.spawn(move || drain(q.reader)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (plan, got) in plans.iter().zip(results) {
            let expected = eval(plan, &cat).unwrap();
            assert_rows_match(got, expected, 0.0);
        }
    }

    /// Bitmap algebra: and_or_assign(self, dim, mask) == self & (dim|mask)
    /// computed bit by bit.
    #[test]
    fn bitmap_and_or_matches_bitwise_model(
        a in prop::collection::vec(any::<bool>(), 130),
        b in prop::collection::vec(any::<bool>(), 130),
        m in prop::collection::vec(any::<bool>(), 130),
    ) {
        let mk = |bits: &[bool]| {
            let mut bm = Bitmap::zeros(130);
            for (i, &x) in bits.iter().enumerate() {
                if x {
                    bm.set(i);
                }
            }
            bm
        };
        let mut x = mk(&a);
        x.and_or_assign(&mk(&b), &mk(&m));
        for i in 0..130 {
            prop_assert_eq!(x.get(i), a[i] && (b[i] || m[i]), "bit {}", i);
        }
        prop_assert_eq!(x.count_ones(), x.iter_ones().count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The open-addressing dimension key table (`qs_cjoin::FlatMap`, the
    /// probe table of `dim_stage_loop`) behaves exactly like the
    /// `HashMap<i64, u32>` it replaced: same last-wins insert semantics,
    /// same lookups for present and absent keys, same length — on
    /// arbitrary insert sequences with duplicate and adversarial keys.
    #[test]
    fn flat_map_matches_hashmap_oracle(
        inserts in prop::collection::vec((any::<i64>(), 0u32..1_000_000), 0..500),
        probes in prop::collection::vec(any::<i64>(), 0..100),
        cap_hint in 0usize..64,
    ) {
        let mut flat = qs_cjoin::FlatMap::with_capacity(cap_hint);
        let mut oracle: std::collections::HashMap<i64, u32> =
            std::collections::HashMap::new();
        for &(k, v) in &inserts {
            flat.insert(k, v);
            oracle.insert(k, v);
            // interleaved read-back: the entry just written is visible
            prop_assert_eq!(flat.get(k), Some(v));
        }
        prop_assert_eq!(flat.len(), oracle.len());
        prop_assert_eq!(flat.is_empty(), oracle.is_empty());
        // every oracle entry present with the same value
        for (&k, &v) in &oracle {
            prop_assert_eq!(flat.get(k), Some(v), "key {}", k);
        }
        // random probes (mostly absent keys) agree too
        for &k in &probes {
            prop_assert_eq!(flat.get(k), oracle.get(&k).copied(), "probe {}", k);
        }
    }

    /// Clustered keys (the SSB case: dense surrogate ints) and colliding
    /// hash slots still resolve identically to the oracle.
    #[test]
    fn flat_map_dense_surrogate_keys(
        n in 1usize..2000,
        stride in prop_oneof![Just(1i64), Just(2), Just(64), Just(4096)],
        base in -1000i64..1000,
    ) {
        let mut flat = qs_cjoin::FlatMap::with_capacity(n);
        for i in 0..n {
            flat.insert(base + i as i64 * stride, i as u32);
        }
        prop_assert_eq!(flat.len(), n);
        for i in 0..n {
            prop_assert_eq!(flat.get(base + i as i64 * stride), Some(i as u32));
        }
        prop_assert_eq!(flat.get(base - stride), None);
        prop_assert_eq!(flat.get(base + n as i64 * stride), None);
    }
}
